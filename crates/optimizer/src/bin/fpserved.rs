//! `fpserved` — concurrent JSON-lines batch server for floorplan
//! optimization.
//!
//! ```sh
//! fpserved --workers 4 < requests.jsonl > responses.jsonl
//! fpserved --tcp 127.0.0.1:7878 --cache-bytes 134217728
//! ```
//!
//! One request per line, one response per line (see
//! `fp_optimizer::serve` for the protocol). All requests — across
//! stdin and every TCP connection — share one content-addressed block
//! cache, so repeated or incrementally edited instances are optimized
//! from warm subtrees. Responses may arrive out of request order; they
//! carry the echoed `id` and the request's `line` for correlation.
//!
//! Per-request `deadline_ms` is enforced twice: the optimizer's
//! governor checks the wall clock itself, and a watchdog thread
//! additionally fires the request's `CancelToken` so even a stage that
//! misses a poll window is interrupted. Either way the response status
//! is 5 and the server keeps running.
//!
//! A `{"method": "shutdown"}` request (or stdin EOF) drains: no new
//! work is accepted, in-flight requests finish and their responses are
//! written, then the process exits 0.
//!
//! The TCP port doubles as a Prometheus scrape target: a connection
//! whose first line is `GET /metrics ...` receives a one-shot HTTP
//! response with the text exposition of the server's counters (the
//! same numbers as the JSON `{"method": "metrics"}` request) and is
//! then closed.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use fp_optimizer::serve::{
    error_reply, execute, idle_timeout_reply, parse_request, shed_reply, Method, Request,
    ServeState,
};
use fp_optimizer::{cache::SharedBlockCache, CancelToken};

const USAGE: &str = "\
usage: fpserved [options]

  --tcp <addr>           serve JSON-lines over TCP (e.g. 127.0.0.1:7878);
                         without it, requests are read from stdin and
                         responses written to stdout
  --workers <n>          worker threads (default 4): concurrent requests
  --threads <n>          per-request tree-parallelism default (0 = all
                         cores; default $FP_THREADS or 1); a request's own
                         `threads` field overrides it. Composes with
                         --workers: up to workers x threads OS threads
  --cache-bytes <n>      block-cache byte budget (default 67108864)
  --cache-file <dir>     persist the block cache to an append-only
                         segment store in <dir>; replayed on startup
                         (warm restarts), flushed on drain
  --max-inflight <n>     admission limit: optimize requests beyond <n>
                         queued + executing are shed with status 7
                         (default 0 = unlimited)
  --queue-deadline-ms <n>  shed queued optimize requests older than this
                         at dequeue instead of running them late
                         (default 0 = off)
  --idle-timeout-ms <n>  close TCP connections idle past this, after a
                         clean `timeout` status line (default 60000;
                         0 = off)
  --max-conns <n>        bound concurrent TCP connections; excess
                         connections get one status-7 line and are
                         closed (default 0 = unlimited)

protocol: one JSON request per line; see the README's fpserved section.
observability: `{\"method\": \"metrics\"}` returns the server counters;
with --tcp, an HTTP `GET /metrics` on the same port returns the
Prometheus text exposition (cache, persistence, and overload gauges
included).
statuses reuse the fpopt exit-code contract:
  0 success             4  budget exhausted / injected fault
  1 internal error      5  deadline exceeded or cancelled
  2 malformed request   6  no implementation fits the outline
  3 bad instance        7  overloaded: shed before execution, retry ok
";

const DEFAULT_CACHE_BYTES: usize = 64 << 20;
const DEFAULT_IDLE_TIMEOUT_MS: u64 = 60_000;

/// Fixed salt for the server's persistent store. Block fingerprints
/// already mix in the per-request [`fp_optimizer::policy_fingerprint`],
/// so one store safely serves requests with different policies; the
/// salt only isolates fpserved stores from other tools' stores.
const STORE_SALT: u128 = 0x6670_7365_7276_6564_2f73_746f_7265_2f31; // "fpserved/store/1"

struct Args {
    tcp: Option<String>,
    workers: usize,
    threads: Option<usize>,
    cache_bytes: usize,
    cache_file: Option<PathBuf>,
    max_inflight: u64,
    queue_deadline: Option<Duration>,
    idle_timeout_ms: u64,
    max_conns: usize,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        tcp: None,
        workers: 4,
        threads: None,
        cache_bytes: DEFAULT_CACHE_BYTES,
        cache_file: None,
        max_inflight: 0,
        queue_deadline: None,
        idle_timeout_ms: DEFAULT_IDLE_TIMEOUT_MS,
        max_conns: 0,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--tcp" => args.tcp = Some(value("--tcp")?),
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
                if args.workers == 0 {
                    return Err("--workers must be at least 1".to_owned());
                }
            }
            "--threads" => {
                args.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                );
            }
            "--cache-bytes" => {
                args.cache_bytes = value("--cache-bytes")?
                    .parse()
                    .map_err(|e| format!("--cache-bytes: {e}"))?;
            }
            "--cache-file" => {
                args.cache_file = Some(PathBuf::from(value("--cache-file")?));
            }
            "--max-inflight" => {
                args.max_inflight = value("--max-inflight")?
                    .parse()
                    .map_err(|e| format!("--max-inflight: {e}"))?;
            }
            "--queue-deadline-ms" => {
                let ms: u64 = value("--queue-deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--queue-deadline-ms: {e}"))?;
                args.queue_deadline = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--idle-timeout-ms" => {
                args.idle_timeout_ms = value("--idle-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--idle-timeout-ms: {e}"))?;
            }
            "--max-conns" => {
                args.max_conns = value("--max-conns")?
                    .parse()
                    .map_err(|e| format!("--max-conns: {e}"))?;
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(args)
}

/// A pending request handed to the worker pool.
struct Job {
    line: String,
    line_no: u64,
    out: Arc<Mutex<dyn Write + Send>>,
    /// When the job entered the queue (for the queue deadline).
    enqueued: Instant,
    /// `true` when this job holds an in-flight admission slot the
    /// worker must release with `ServeState::finish_job`.
    admitted: bool,
}

/// Cancels registered tokens once their deadline passes. Entries are
/// registered by workers before a run starts and swept by a single
/// polling thread; passed entries are dropped, so the list stays small.
#[derive(Clone, Default)]
struct Watchdog {
    entries: Arc<Mutex<Vec<(Instant, CancelToken)>>>,
}

impl Watchdog {
    fn register(&self, deadline: Instant, token: CancelToken) {
        if let Ok(mut entries) = self.entries.lock() {
            entries.push((deadline, token));
        }
    }

    fn spawn(&self, shutdown: Arc<AtomicBool>) {
        let entries = Arc::clone(&self.entries);
        std::thread::spawn(move || loop {
            if shutdown.load(Ordering::Relaxed) {
                // Drain mode: fire everything still registered so
                // in-flight runs wind down promptly, then exit.
                if let Ok(mut entries) = entries.lock() {
                    for (_, token) in entries.drain(..) {
                        token.cancel();
                    }
                }
                return;
            }
            let now = Instant::now();
            if let Ok(mut entries) = entries.lock() {
                entries.retain(|(deadline, token)| {
                    if *deadline <= now {
                        token.cancel();
                        false
                    } else {
                        true
                    }
                });
            }
            std::thread::sleep(Duration::from_millis(2));
        });
    }
}

/// Answers a plain HTTP `GET` probe on the JSON-lines TCP port: the
/// `/metrics` target gets the Prometheus text exposition, anything
/// else a 404. One response per connection, then close.
fn respond_http(out: &Arc<Mutex<dyn Write + Send>>, state: &ServeState, request_line: &str) {
    let target = request_line.split_whitespace().nth(1).unwrap_or("");
    let (status, body) = if target == "/metrics" {
        ("200 OK", state.render_prometheus())
    } else {
        ("404 Not Found", "only /metrics is served here\n".to_owned())
    };
    let reply = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    if let Ok(mut out) = out.lock() {
        let _ = out.write_all(reply.as_bytes());
        let _ = out.flush();
    }
}

fn write_line(out: &Arc<Mutex<dyn Write + Send>>, line: &str) {
    if let Ok(mut out) = out.lock() {
        let _ = out.write_all(line.as_bytes());
        let _ = out.write_all(b"\n");
        let _ = out.flush();
    }
}

fn run_job(
    job: &Job,
    state: &ServeState,
    watchdog: &Watchdog,
    shutdown: &AtomicBool,
    queue_deadline: Option<Duration>,
) {
    // Queue-deadline shedding: a job that waited longer than the client
    // plausibly still cares about is answered with status 7 at dequeue
    // instead of burning a worker on a stale request.
    if job.admitted {
        if let Some(deadline) = queue_deadline {
            if job.enqueued.elapsed() > deadline {
                state.note_shed();
                state.finish_job();
                write_line(
                    &job.out,
                    &shed_reply(&job.line, job.line_no, "queue_deadline").json,
                );
                return;
            }
        }
    }
    let reply = match parse_request(&job.line) {
        Err(e) => error_reply(job.line_no, &e),
        Ok(request) => {
            let token = token_for(&request, watchdog);
            execute(&request, job.line_no, state, Some(token))
        }
    };
    if job.admitted {
        state.finish_job();
    }
    write_line(&job.out, &reply.json);
    if reply.shutdown {
        shutdown.store(true, Ordering::SeqCst);
    }
}

/// Admission + enqueue for one raw request line. Control methods
/// (ping/stats/metrics/shutdown) always pass — they are cheap, and a
/// drain request must get through even under flood; only `optimize`
/// and `pareto` lines consume admission slots. Returns `false` when
/// the worker queue is closed.
fn submit_line(
    line: String,
    line_no: u64,
    out: &Arc<Mutex<dyn Write + Send>>,
    state: &ServeState,
    tx: &mpsc::Sender<Job>,
) -> bool {
    let heavy = matches!(
        parse_request(&line),
        Ok(Request {
            method: Method::Optimize(_) | Method::Pareto(_),
            ..
        })
    );
    if heavy && !state.try_admit() {
        state.note_shed();
        write_line(out, &shed_reply(&line, line_no, "queue_full").json);
        return true; // shed is a handled outcome, not a closed queue
    }
    let job = Job {
        line,
        line_no,
        out: Arc::clone(out),
        enqueued: Instant::now(),
        admitted: heavy,
    };
    tx.send(job).is_ok()
}

/// A fresh per-request token; when the request carries `deadline_ms`
/// the watchdog is armed to fire it.
fn token_for(request: &Request, watchdog: &Watchdog) -> CancelToken {
    let token = CancelToken::new();
    if let Method::Optimize(req) | Method::Pareto(req) = &request.method {
        if let Some(ms) = req.deadline_ms {
            watchdog.register(Instant::now() + Duration::from_millis(ms), token.clone());
        }
    }
    token
}

/// Spawns the shared worker pool reading jobs from `rx`.
fn spawn_workers(
    workers: usize,
    rx: mpsc::Receiver<Job>,
    state: &Arc<ServeState>,
    watchdog: &Watchdog,
    shutdown: &Arc<AtomicBool>,
    queue_deadline: Option<Duration>,
) -> Vec<std::thread::JoinHandle<()>> {
    let rx = Arc::new(Mutex::new(rx));
    let mut pool = Vec::new();
    for _ in 0..workers {
        let rx = Arc::clone(&rx);
        let state = Arc::clone(state);
        let watchdog = watchdog.clone();
        let shutdown = Arc::clone(shutdown);
        pool.push(std::thread::spawn(move || loop {
            let job = match rx.lock() {
                Ok(rx) => rx.recv(),
                Err(_) => return,
            };
            match job {
                Ok(job) => run_job(&job, &state, &watchdog, &shutdown, queue_deadline),
                Err(_) => return, // channel closed and drained
            }
        }));
    }
    pool
}

fn serve_stdin(
    state: Arc<ServeState>,
    watchdog: Watchdog,
    shutdown: Arc<AtomicBool>,
    workers: usize,
    queue_deadline: Option<Duration>,
) {
    let (tx, rx) = mpsc::channel::<Job>();
    let pool = spawn_workers(workers, rx, &state, &watchdog, &shutdown, queue_deadline);

    let out: Arc<Mutex<dyn Write + Send>> = Arc::new(Mutex::new(std::io::stdout()));
    // stdin is read on its own thread: the blocking `lines()` iterator
    // cannot observe the shutdown flag, so a worker handling a
    // `shutdown` request would otherwise only take effect at the next
    // input line (or EOF). The main thread multiplexes incoming lines
    // and the flag via a channel timeout. The reader thread is left
    // blocked on stdin at exit; process teardown reaps it.
    let (line_tx, line_rx) = mpsc::channel::<(u64, String)>();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        for (index, line) in stdin.lock().lines().enumerate() {
            let Ok(line) = line else { break };
            if line_tx.send((index as u64 + 1, line)).is_err() {
                break;
            }
        }
    });
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match line_rx.recv_timeout(Duration::from_millis(50)) {
            Ok((line_no, line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                if !submit_line(line, line_no, &out, &state, &tx) {
                    break;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break, // EOF
        }
    }
    // Graceful drain: close the queue, let every in-flight and queued
    // request finish and flush its response, then stop the watchdog.
    drop(tx);
    for worker in pool {
        let _ = worker.join();
    }
    shutdown.store(true, Ordering::SeqCst);
}

/// The overload knobs a TCP listener threads through to its readers.
#[derive(Clone, Copy)]
struct TcpPolicy {
    queue_deadline: Option<Duration>,
    idle_timeout_ms: u64,
    max_conns: usize,
}

fn serve_tcp(
    addr: &str,
    state: Arc<ServeState>,
    watchdog: Watchdog,
    shutdown: Arc<AtomicBool>,
    workers: usize,
    policy: TcpPolicy,
) -> Result<(), String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot set nonblocking: {e}"))?;
    if let Ok(local) = listener.local_addr() {
        // Announced on stderr so test harnesses with `--tcp addr:0` can
        // discover the bound port.
        eprintln!("fpserved: listening on {local}");
    }

    let (tx, rx) = mpsc::channel::<Job>();
    let pool = spawn_workers(
        workers,
        rx,
        &state,
        &watchdog,
        &shutdown,
        policy.queue_deadline,
    );

    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Reap finished reader threads so the backlog bound
                // tracks *live* connections, not historical ones.
                connections.retain(|handle| !handle.is_finished());
                if policy.max_conns > 0 && connections.len() >= policy.max_conns {
                    // Bounded backlog: one structured status-7 line,
                    // then close; the client may retry after backoff.
                    state.note_shed();
                    let mut stream = stream;
                    let reply = shed_reply("", 0, "too_many_connections");
                    let _ = stream.write_all(reply.json.as_bytes());
                    let _ = stream.write_all(b"\n");
                    continue;
                }
                let tx = tx.clone();
                let shutdown = Arc::clone(&shutdown);
                let state = Arc::clone(&state);
                connections.push(std::thread::spawn(move || {
                    // A short read timeout lets the reader notice a
                    // drain request between lines.
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
                    let Ok(writer) = stream.try_clone() else {
                        return;
                    };
                    let out: Arc<Mutex<dyn Write + Send>> = Arc::new(Mutex::new(writer));
                    let mut reader = BufReader::new(stream);
                    // `line` accumulates across read timeouts: a timeout
                    // mid-line leaves the bytes read so far in place, and
                    // only a completed line resets it.
                    let mut line = String::new();
                    // 1-based request line within THIS connection's
                    // stream, as the protocol docs define it.
                    let mut line_no: u64 = 0;
                    let submit = |line: &str, line_no: u64| {
                        if line.trim().is_empty() {
                            return true;
                        }
                        submit_line(
                            line.trim_end_matches(['\n', '\r']).to_owned(),
                            line_no,
                            &out,
                            &state,
                            &tx,
                        )
                    };
                    // Read-idle deadline: `last_activity` advances on
                    // every byte of progress, including partial lines
                    // accumulating across read timeouts (tracked via
                    // the buffer length), so slow-but-live peers
                    // sending fragmented requests are never cut off.
                    let mut last_activity = Instant::now();
                    let mut seen_len = 0usize;
                    loop {
                        if shutdown.load(Ordering::SeqCst) {
                            return;
                        }
                        match reader.read_line(&mut line) {
                            Ok(0) => {
                                // Client closed; a trailing unterminated
                                // line still counts as a request.
                                if !line.is_empty() {
                                    line_no += 1;
                                    submit(&line, line_no);
                                }
                                return;
                            }
                            Ok(_) => {
                                // A first line spelling an HTTP request
                                // marks a scrape probe, not a JSON peer.
                                if line_no == 0 && line.trim_start().starts_with("GET ") {
                                    respond_http(&out, &state, &line);
                                    return;
                                }
                                line_no += 1;
                                if !submit(&line, line_no) {
                                    return;
                                }
                                line.clear();
                                last_activity = Instant::now();
                                seen_len = 0;
                            }
                            Err(e)
                                if e.kind() == std::io::ErrorKind::WouldBlock
                                    || e.kind() == std::io::ErrorKind::TimedOut =>
                            {
                                // Partial bytes read before the timeout
                                // stay in `line`; keep reading.
                                if line.len() != seen_len {
                                    seen_len = line.len();
                                    last_activity = Instant::now();
                                } else if policy.idle_timeout_ms > 0
                                    && last_activity.elapsed()
                                        >= Duration::from_millis(policy.idle_timeout_ms)
                                {
                                    // Truly idle: say why, then close.
                                    write_line(
                                        &out,
                                        &idle_timeout_reply(policy.idle_timeout_ms).json,
                                    );
                                    return;
                                }
                                continue;
                            }
                            Err(_) => return,
                        }
                    }
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => break,
        }
    }

    // Drain: stop accepting, wait for readers, close the queue, let the
    // workers finish every queued request.
    for conn in connections {
        let _ = conn.join();
    }
    drop(tx);
    for worker in pool {
        let _ = worker.join();
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("fpserved: {msg}\n");
            }
            eprint!("{USAGE}");
            return if msg.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            };
        }
    };

    let cache = match &args.cache_file {
        None => SharedBlockCache::new(args.cache_bytes),
        Some(dir) => match SharedBlockCache::open_persistent(dir, args.cache_bytes, STORE_SALT) {
            Ok(cache) => {
                let recovery = cache.recovery();
                eprintln!(
                    "fpserved: cache store {} replayed {} entries ({} bytes){}",
                    dir.display(),
                    recovery.recovered_entries,
                    recovery.recovered_bytes,
                    if recovery.truncated_segments > 0 {
                        " after truncating a torn tail"
                    } else {
                        ""
                    }
                );
                cache
            }
            Err(e) => {
                eprintln!("fpserved: cannot open cache store: {e}");
                return ExitCode::from(1);
            }
        },
    };
    let mut state = ServeState::with_cache(cache).with_max_inflight(args.max_inflight);
    if let Some(threads) = args.threads {
        state = state.with_threads(threads);
    }
    let state = Arc::new(state);
    let shutdown = Arc::new(AtomicBool::new(false));
    let watchdog = Watchdog::default();
    watchdog.spawn(Arc::clone(&shutdown));

    match &args.tcp {
        Some(addr) => {
            let policy = TcpPolicy {
                queue_deadline: args.queue_deadline,
                idle_timeout_ms: args.idle_timeout_ms,
                max_conns: args.max_conns,
            };
            if let Err(msg) = serve_tcp(
                addr,
                Arc::clone(&state),
                watchdog,
                shutdown,
                args.workers,
                policy,
            ) {
                eprintln!("fpserved: {msg}");
                return ExitCode::from(1);
            }
        }
        None => serve_stdin(
            Arc::clone(&state),
            watchdog,
            shutdown,
            args.workers,
            args.queue_deadline,
        ),
    }

    // Graceful drain: every worker has finished and flushed its
    // response; now make the persistent store durable before exit.
    // Stderr may already be gone (the supervisor stopped listening),
    // so report via a non-panicking write.
    if state.cache().is_persistent() {
        use std::io::Write as _;
        let mut stderr = std::io::stderr();
        match state.cache().flush() {
            Ok(()) => {
                let _ = writeln!(stderr, "fpserved: cache store flushed clean");
            }
            Err(e) => {
                let _ = writeln!(stderr, "fpserved: cache flush failed: {e}");
            }
        }
    }
    ExitCode::SUCCESS
}
