//! `fpcompress` — compress the module shape lists of a floorplan instance
//! with `R_Selection`.
//!
//! ```sh
//! fpcompress design.fpt --k 8 -o compact.fpt
//! fpcompress design.fpt --max-error 50 -o compact.fpt
//! ```
//!
//! This is the paper's §6 "continuous shape curve" application in tool
//! form: module generators often emit densely sampled shape curves;
//! compressing each module's list to `k` points (or to an error budget)
//! before floorplanning bounds the optimizer's input size with an
//! *optimal* per-module approximation.

use std::process::ExitCode;

use fp_select::curve::r_selection_within;
use fp_select::r_selection;
use fp_tree::format::{parse_instance, write_instance, FloorplanInstance};
use fp_tree::{Module, ModuleLibrary};

const USAGE: &str = "\
usage: fpcompress <design.fpt> (--k <count> | --max-error <area>) [-o <out.fpt>]

  --k <count>        keep at most <count> implementations per module
                     (optimal R_Selection; endpoints always survive)
  --max-error <a>    keep the smallest subset per module whose staircase
                     error is at most <a>
  -o <out.fpt>       output path (default: stdout)
";

enum Mode {
    FixedK(usize),
    MaxError(u128),
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut input: Option<String> = None;
    let mut output: Option<String> = None;
    let mut mode: Option<Mode> = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--k" => {
                let Some(v) = it.next() else {
                    eprintln!("fpcompress: --k needs a value");
                    return ExitCode::from(2);
                };
                match v.parse() {
                    Ok(k) if k >= 2 => mode = Some(Mode::FixedK(k)),
                    _ => {
                        eprintln!("fpcompress: --k must be an integer >= 2");
                        return ExitCode::from(2);
                    }
                }
            }
            "--max-error" => {
                let Some(v) = it.next() else {
                    eprintln!("fpcompress: --max-error needs a value");
                    return ExitCode::from(2);
                };
                match v.parse() {
                    Ok(e) => mode = Some(Mode::MaxError(e)),
                    Err(err) => {
                        eprintln!("fpcompress: --max-error: {err}");
                        return ExitCode::from(2);
                    }
                }
            }
            "-o" => output = it.next().cloned(),
            "--help" | "-h" => {
                eprint!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("fpcompress: unknown option {other}\n");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
            other => input = Some(other.to_owned()),
        }
    }
    let (Some(input), Some(mode)) = (input, mode) else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };

    let text = match std::fs::read_to_string(&input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("fpcompress: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let instance = match parse_instance(&text) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("fpcompress: {input}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut before = 0usize;
    let mut after = 0usize;
    let mut total_error: u128 = 0;
    let library: ModuleLibrary = instance
        .library
        .iter()
        .map(|module| {
            let list = module.implementations();
            before += list.len();
            let selection = match mode {
                Mode::FixedK(k) => r_selection(list, k),
                Mode::MaxError(e) => r_selection_within(list, e),
            }
            .expect("parsed modules have non-empty lists");
            after += selection.positions.len();
            total_error += selection.error;
            Module::new(module.name(), list.subset(&selection.positions).into_vec())
        })
        .collect();

    let compressed = FloorplanInstance {
        name: instance.name.clone(),
        tree: instance.tree.clone(),
        library,
    };
    let out_text = write_instance(&compressed);
    match &output {
        Some(path) => {
            if let Err(e) = std::fs::write(path, out_text) {
                eprintln!("fpcompress: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => print!("{out_text}"),
    }
    eprintln!(
        "fpcompress: {} -> {} implementations across {} modules (total staircase error {})",
        before,
        after,
        compressed.library.len(),
        total_error
    );
    ExitCode::SUCCESS
}
