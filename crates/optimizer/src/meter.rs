//! Implementation-count memory metering.
//!
//! The paper measures memory pressure as `M`, the maximum number of
//! implementations ever stored at once, and reports "[9] failed to run"
//! when the machine's memory was exhausted (Tables 3–4, the `> 8·10⁵`
//! rows). [`MemoryMeter`] reproduces both deterministically: it tracks the
//! live implementation count (committed block lists plus the candidates of
//! the block currently being generated) and trips an optional budget the
//! way `malloc` failure did on the 1991 SPARCstation.

use core::fmt;

/// Tracks live and peak implementation counts against an optional budget.
#[derive(Debug, Clone, Default)]
pub struct MemoryMeter {
    limit: Option<usize>,
    committed: usize,
    transient: usize,
    peak: usize,
    generated: u64,
}

/// Error raised when the implementation budget is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExhausted {
    /// Implementations live at the moment of exhaustion.
    pub live: usize,
    /// The configured budget.
    pub limit: usize,
}

impl fmt::Display for BudgetExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "implementation budget exhausted: {} live > {} allowed",
            self.live, self.limit
        )
    }
}

impl std::error::Error for BudgetExhausted {}

impl MemoryMeter {
    /// A meter with no budget (tracks peak only).
    #[must_use]
    pub fn unbounded() -> Self {
        MemoryMeter::default()
    }

    /// A meter that fails once more than `limit` implementations are live.
    #[must_use]
    pub fn with_limit(limit: usize) -> Self {
        MemoryMeter {
            limit: Some(limit),
            ..MemoryMeter::default()
        }
    }

    /// Records `n` freshly generated candidate implementations for the
    /// block under construction.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExhausted`] when the live count passes the budget.
    pub fn charge(&mut self, n: usize) -> Result<(), BudgetExhausted> {
        self.transient += n;
        self.generated += n as u64;
        let live = self.committed + self.transient;
        self.peak = self.peak.max(live);
        match self.limit {
            Some(limit) if live > limit => Err(BudgetExhausted { live, limit }),
            _ => Ok(()),
        }
    }

    /// Records that candidate implementations were pruned or selected away
    /// while still under construction.
    pub fn discard(&mut self, n: usize) {
        debug_assert!(n <= self.transient, "discarding more than was charged");
        self.transient -= n.min(self.transient);
    }

    /// Finalizes the block under construction: its surviving `n`
    /// implementations become committed storage (they remain live for the
    /// rest of the run — parents and the final traceback need them).
    pub fn commit(&mut self, n: usize) {
        debug_assert!(n <= self.transient, "committing more than is transient");
        self.transient = 0;
        self.committed += n;
        self.peak = self.peak.max(self.committed);
    }

    /// Implementations currently live.
    #[inline]
    #[must_use]
    pub fn live(&self) -> usize {
        self.committed + self.transient
    }

    /// The peak live count (`M` in the paper's tables).
    #[inline]
    #[must_use]
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Total implementations ever generated (pre-pruning).
    #[inline]
    #[must_use]
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// The configured budget, if any.
    #[inline]
    #[must_use]
    pub fn limit(&self) -> Option<usize> {
        self.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_peak_across_blocks() {
        let mut m = MemoryMeter::unbounded();
        m.charge(100).expect("unbounded");
        m.discard(40);
        m.commit(60);
        assert_eq!(m.live(), 60);
        assert_eq!(m.peak(), 100);
        m.charge(10).expect("unbounded");
        m.commit(10);
        assert_eq!(m.live(), 70);
        assert_eq!(m.peak(), 100);
        assert_eq!(m.generated(), 110);
    }

    #[test]
    fn budget_trips_mid_block() {
        let mut m = MemoryMeter::with_limit(50);
        m.charge(30).expect("within budget");
        m.commit(30);
        m.charge(15).expect("within budget");
        let err = m.charge(10).expect_err("over budget");
        assert_eq!(
            err,
            BudgetExhausted {
                live: 55,
                limit: 50
            }
        );
        assert!(err.to_string().contains("55 live > 50"));
        // Peak still recorded at the moment of failure.
        assert_eq!(m.peak(), 55);
    }

    #[test]
    fn discard_then_commit_reduces_live() {
        let mut m = MemoryMeter::with_limit(100);
        m.charge(80).expect("ok");
        m.discard(70);
        m.commit(10);
        assert_eq!(m.live(), 10);
        m.charge(80).expect("ok after reduction");
        assert_eq!(m.peak(), 90);
    }
}
