//! Implementation-count memory metering.
//!
//! The paper measures memory pressure as `M`, the maximum number of
//! implementations ever stored at once, and reports "[9] failed to run"
//! when the machine's memory was exhausted (Tables 3–4, the `> 8·10⁵`
//! rows). [`MemoryMeter`] reproduces both deterministically: it tracks the
//! live implementation count (committed block lists plus the candidates of
//! the block currently being generated) and trips an optional budget the
//! way `malloc` failure did on the 1991 SPARCstation.

use core::fmt;

/// Tracks live and peak implementation counts against an optional budget.
#[derive(Debug, Clone, Default)]
pub struct MemoryMeter {
    limit: Option<usize>,
    committed: usize,
    transient: usize,
    peak: usize,
    generated: u64,
}

/// Error raised when the implementation budget is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExhausted {
    /// Implementations live at the moment of exhaustion.
    pub live: usize,
    /// The configured budget.
    pub limit: usize,
}

impl fmt::Display for BudgetExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "implementation budget exhausted: {} live > {} allowed",
            self.live, self.limit
        )
    }
}

impl std::error::Error for BudgetExhausted {}

impl MemoryMeter {
    /// A meter with no budget (tracks peak only).
    #[must_use]
    pub fn unbounded() -> Self {
        MemoryMeter::default()
    }

    /// A meter that fails once more than `limit` implementations are live.
    #[must_use]
    pub fn with_limit(limit: usize) -> Self {
        MemoryMeter {
            limit: Some(limit),
            ..MemoryMeter::default()
        }
    }

    /// Records `n` freshly generated candidate implementations for the
    /// block under construction. `charge(0)` is a no-op: it never trips
    /// the budget, even when the meter already sits exactly at the limit.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExhausted`] when the live count exceeds the budget
    /// (a live count *equal* to the limit still fits — the budget models
    /// storage capacity, not a watermark).
    pub fn charge(&mut self, n: usize) -> Result<(), BudgetExhausted> {
        if n == 0 {
            return Ok(());
        }
        self.transient += n;
        self.generated += n as u64;
        let live = self.committed + self.transient;
        self.peak = self.peak.max(live);
        match self.limit {
            Some(limit) if live > limit => Err(BudgetExhausted { live, limit }),
            _ => Ok(()),
        }
    }

    /// Records that candidate implementations were pruned or selected away
    /// while still under construction. Saturates at zero: discarding more
    /// than was charged clamps the transient count instead of underflowing.
    pub fn discard(&mut self, n: usize) {
        self.transient = self.transient.saturating_sub(n);
    }

    /// Finalizes the block under construction: its surviving `n`
    /// implementations become committed storage (they remain live for the
    /// rest of the run — parents and the final traceback need them).
    /// `n` is clamped to the transient count, so a caller that over-reports
    /// survivors cannot inflate the committed total.
    pub fn commit(&mut self, n: usize) {
        self.committed += n.min(self.transient);
        self.transient = 0;
        self.peak = self.peak.max(self.committed);
    }

    /// Drops every transient candidate of the block under construction
    /// (the rescue ladder's rollback of an in-flight block), returning how
    /// many were dropped. Committed storage is untouched.
    pub fn abort_block(&mut self) -> usize {
        std::mem::take(&mut self.transient)
    }

    /// Shrinks committed storage by `n` (saturating): used when the rescue
    /// ladder re-selects an already committed block list down to a
    /// stricter limit.
    pub fn release(&mut self, n: usize) {
        self.committed = self.committed.saturating_sub(n);
    }

    /// Implementations currently live.
    #[inline]
    #[must_use]
    pub fn live(&self) -> usize {
        self.committed + self.transient
    }

    /// Transient candidates of the block under construction.
    #[inline]
    #[must_use]
    pub fn transient(&self) -> usize {
        self.transient
    }

    /// The peak live count (`M` in the paper's tables).
    #[inline]
    #[must_use]
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Total implementations ever generated (pre-pruning).
    #[inline]
    #[must_use]
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// The configured budget, if any.
    #[inline]
    #[must_use]
    pub fn limit(&self) -> Option<usize> {
        self.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_peak_across_blocks() {
        let mut m = MemoryMeter::unbounded();
        m.charge(100).expect("unbounded");
        m.discard(40);
        m.commit(60);
        assert_eq!(m.live(), 60);
        assert_eq!(m.peak(), 100);
        m.charge(10).expect("unbounded");
        m.commit(10);
        assert_eq!(m.live(), 70);
        assert_eq!(m.peak(), 100);
        assert_eq!(m.generated(), 110);
    }

    #[test]
    fn budget_trips_mid_block() {
        let mut m = MemoryMeter::with_limit(50);
        m.charge(30).expect("within budget");
        m.commit(30);
        m.charge(15).expect("within budget");
        let err = m.charge(10).expect_err("over budget");
        assert_eq!(
            err,
            BudgetExhausted {
                live: 55,
                limit: 50
            }
        );
        assert!(err.to_string().contains("55 live > 50"));
        // Peak still recorded at the moment of failure.
        assert_eq!(m.peak(), 55);
    }

    #[test]
    fn discard_then_commit_reduces_live() {
        let mut m = MemoryMeter::with_limit(100);
        m.charge(80).expect("ok");
        m.discard(70);
        m.commit(10);
        assert_eq!(m.live(), 10);
        m.charge(80).expect("ok after reduction");
        assert_eq!(m.peak(), 90);
    }

    #[test]
    fn charge_zero_is_a_noop_even_at_the_limit() {
        let mut m = MemoryMeter::with_limit(10);
        m.charge(10).expect("exactly at the limit fits");
        // Sitting exactly at the limit, a zero charge must not trip.
        m.charge(0).expect("charge(0) never trips");
        assert_eq!(m.live(), 10);
        assert_eq!(m.generated(), 10);
        assert_eq!(m.peak(), 10);
    }

    #[test]
    fn budget_trips_strictly_above_the_limit() {
        let mut m = MemoryMeter::with_limit(10);
        // live == limit is fine; live == limit + 1 trips.
        m.charge(10).expect("live == limit fits");
        assert_eq!(m.peak(), 10);
        let err = m.charge(1).expect_err("live > limit trips");
        assert_eq!(
            err,
            BudgetExhausted {
                live: 11,
                limit: 10
            }
        );
        // Peak records the overshoot even though the charge failed.
        assert_eq!(m.peak(), 11);
    }

    #[test]
    fn discard_saturates_instead_of_underflowing() {
        let mut m = MemoryMeter::unbounded();
        m.charge(5).expect("unbounded");
        m.discard(9); // more than was charged: clamps to zero
        assert_eq!(m.live(), 0);
        assert_eq!(m.transient(), 0);
        m.charge(3).expect("still usable afterwards");
        assert_eq!(m.live(), 3);
    }

    #[test]
    fn commit_clamps_to_transient() {
        let mut m = MemoryMeter::unbounded();
        m.charge(4).expect("unbounded");
        m.commit(100); // over-reported survivors cannot inflate storage
        assert_eq!(m.live(), 4);
        assert_eq!(m.transient(), 0);
    }

    #[test]
    fn abort_block_drops_only_transients() {
        let mut m = MemoryMeter::with_limit(50);
        m.charge(20).expect("ok");
        m.commit(20);
        m.charge(25).expect("ok");
        assert_eq!(m.abort_block(), 25);
        assert_eq!(m.live(), 20);
        assert_eq!(m.peak(), 45);
        // Released committed storage frees budget for a retry.
        m.release(10);
        assert_eq!(m.live(), 10);
        m.charge(40).expect("fits after release");
    }
}
