//! The global batch executor: one job-level work pool shared by the
//! batch server, the annealer, and the session layer.
//!
//! PR 8's measurements showed that for paper-sized trees (FP1–FP4)
//! intra-tree parallelism never pays — `auto_serial_for` keeps those
//! runs serial — so the axis that actually scales with cores is
//! *across* whole optimizations. This module provides that axis: whole
//! optimize jobs are scheduled onto one persistent worker pool, and a
//! tree only splits internally when `split_threshold` says it pays
//! *and* the pool has spare capacity to lease.
//!
//! Three kinds of work share the pool:
//!
//! * **`'static` jobs** ([`Executor::submit`]) — server requests and
//!   other self-contained closures, queued per [`JobClass`] and popped
//!   with round-robin class fairness so a burst of server traffic can
//!   never starve annealing (or vice versa);
//! * **borrowed batches** ([`Executor::run_batch`]) — anneal chains
//!   borrowing the caller's tree/library run on *scoped* threads leased
//!   from the pool's capacity, with idle helpers claim-stealing the
//!   next unstarted chain (the caller always helps, so a saturated pool
//!   degrades to caller-serial instead of deadlocking);
//! * **accounted scopes** ([`Executor::run_scoped`]) — session
//!   re-optimizations run on the calling thread but hold an execution
//!   slot, so they show up in the same queue-depth/active gauges and
//!   `job_start`/`job_done` trace stream as everything else.
//!
//! Determinism is inherited, not negotiated: every optimization is
//! byte-identical at any thread count (the serial-replay discipline of
//! the tree scheduler), so the executor may grant *any* number of
//! threads to any job — under load a job simply runs more serially,
//! never differently.
//!
//! Deadlines ride the existing [`CancelToken`] path: a job submitted
//! with a deadline is registered with the executor's watchdog, which
//! cancels the token when the deadline passes; the resource governor
//! inside the run polls the token and trips. Nothing in the engine
//! needed to change.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use fp_trace::{JobClass, TraceEvent, Tracer};

use crate::governor::CancelToken;
use crate::OptimizeConfig;

/// Watchdog sweep cadence: granularity of deadline-cancel enforcement.
const WATCHDOG_TICK: Duration = Duration::from_millis(2);

/// Idle workers re-check the queues at least this often even without a
/// wakeup, making the pool robust to (theoretical) lost notifications.
const IDLE_RECHECK: Duration = Duration::from_millis(50);

fn class_slot(class: JobClass) -> usize {
    match class {
        JobClass::Serve => 0,
        JobClass::Anneal => 1,
        JobClass::Session => 2,
    }
}

/// Locks a mutex, recovering the guard from a poisoned lock: pool state
/// stays usable even if a job panicked mid-update (job bodies are
/// additionally unwind-caught, so this is belt and braces).
fn lock_or_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

type Thunk = Box<dyn FnOnce() + Send + 'static>;

/// A `run_batch` slot holding the not-yet-claimed job closure; taken
/// exactly once by whichever participant claim-steals it.
type PendingJob<'env, T> = Mutex<Option<Box<dyn FnOnce() -> T + Send + 'env>>>;

struct Job {
    id: u32,
    class: JobClass,
    enqueued: Instant,
    run: Thunk,
}

/// One watchdog registration: cancel `token` once `deadline` passes,
/// unless the job deregisters first.
struct Watch {
    job: u32,
    deadline: Instant,
    token: CancelToken,
}

#[derive(Default)]
struct Queues {
    /// Per-class FIFO queues (slot order = [`CLASSES`]).
    injectors: [VecDeque<Job>; 3],
    /// Round-robin cursor: which class the next pop tries first.
    rr: usize,
}

impl Queues {
    fn len(&self) -> usize {
        self.injectors.iter().map(VecDeque::len).sum()
    }

    fn pop(&mut self) -> Option<Job> {
        for i in 0..self.injectors.len() {
            let slot = (self.rr + i) % self.injectors.len();
            if let Some(job) = self.injectors[slot].pop_front() {
                self.rr = (slot + 1) % self.injectors.len();
                return Some(job);
            }
        }
        None
    }
}

struct Shared {
    queues: Mutex<Queues>,
    /// Signalled on submit and shutdown; workers wait here when idle.
    work: Condvar,
    shutdown: AtomicBool,
    /// Jobs currently executing (holding a worker).
    active: AtomicUsize,
    /// Extra threads granted to in-job scoped pools (tree splits,
    /// anneal batches) beyond the one the job itself holds.
    leased: AtomicUsize,
    /// Worker count — the pool's total thread budget.
    capacity: usize,
    completed: AtomicU64,
    shed: AtomicU64,
    next_job: AtomicU32,
    /// Deadline registry swept by the watchdog thread.
    watches: Mutex<Vec<Watch>>,
    watch_signal: Condvar,
    tracer: Mutex<Option<Tracer>>,
}

impl Shared {
    fn emit(&self, worker: u32, event: TraceEvent) {
        if let Some(tracer) = lock_or_recover(&self.tracer).as_ref() {
            tracer.emit(worker, event);
        }
    }

    fn start_job(&self, worker: u32, id: u32, class: JobClass, enqueued: Instant) -> Instant {
        let started = Instant::now();
        self.active.fetch_add(1, Ordering::AcqRel);
        self.emit(
            worker,
            TraceEvent::JobStart {
                job: id,
                class,
                queue_ns: u64::try_from(started.duration_since(enqueued).as_nanos())
                    .unwrap_or(u64::MAX),
            },
        );
        started
    }

    fn finish_job(&self, worker: u32, id: u32, class: JobClass, started: Instant) {
        self.active.fetch_sub(1, Ordering::AcqRel);
        self.completed.fetch_add(1, Ordering::AcqRel);
        self.emit(
            worker,
            TraceEvent::JobDone {
                job: id,
                class,
                dur_ns: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            },
        );
    }

    fn unwatch(&self, job: u32) {
        lock_or_recover(&self.watches).retain(|w| w.job != job);
    }
}

fn worker_loop(shared: &Shared, worker: u32) {
    loop {
        let job = {
            let mut queues = lock_or_recover(&shared.queues);
            loop {
                if let Some(job) = queues.pop() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                let (guard, _) = shared
                    .work
                    .wait_timeout(queues, IDLE_RECHECK)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                queues = guard;
            }
        };
        let Some(job) = job else { return };
        let started = shared.start_job(worker, job.id, job.class, job.enqueued);
        // Job bodies are caller code; a panic must not take the worker
        // (or the pool's accounting) down with it. The panic payload is
        // re-thrown at `join`.
        let outcome = catch_unwind(AssertUnwindSafe(job.run));
        shared.finish_job(worker, job.id, job.class, started);
        shared.unwatch(job.id);
        drop(outcome);
    }
}

fn watchdog_loop(shared: &Shared) {
    let mut watches = lock_or_recover(&shared.watches);
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            // Drain: fire everything still registered so no waiter can
            // hang across shutdown.
            for watch in watches.drain(..) {
                watch.token.cancel();
            }
            return;
        }
        if watches.is_empty() {
            let (guard, _) = shared
                .watch_signal
                .wait_timeout(watches, IDLE_RECHECK)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            watches = guard;
            continue;
        }
        let now = Instant::now();
        watches.retain(|watch| {
            if watch.deadline <= now {
                watch.token.cancel();
                false
            } else {
                true
            }
        });
        let (guard, _) = shared
            .watch_signal
            .wait_timeout(watches, WATCHDOG_TICK)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        watches = guard;
    }
}

enum Slot<T> {
    Pending,
    Done(T),
    Panicked(Box<dyn std::any::Any + Send>),
}

struct HandleState<T> {
    slot: Mutex<Slot<T>>,
    ready: Condvar,
}

/// The submitting side's view of one queued job: [`JobHandle::join`]
/// blocks until the job finishes and returns its result. Dropping the
/// handle detaches the job (it still runs); it never cancels.
pub struct JobHandle<T> {
    state: Arc<HandleState<T>>,
    id: u32,
}

impl<T> JobHandle<T> {
    /// The executor-assigned job id (matches the `job_start`/`job_done`
    /// trace events).
    #[must_use]
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Blocks until the job completes and returns its result.
    ///
    /// # Panics
    ///
    /// Re-throws the job's panic if the job panicked.
    #[must_use]
    pub fn join(self) -> T {
        // Taking the value leaves a transient `Pending` behind the held
        // lock; nothing else can observe it — `join` consumes the
        // handle and handles are not cloneable.
        let mut slot = lock_or_recover(&self.state.slot);
        loop {
            match std::mem::replace(&mut *slot, Slot::Pending) {
                Slot::Done(value) => return value,
                Slot::Panicked(payload) => resume_unwind(payload),
                Slot::Pending => {
                    slot = self
                        .state
                        .ready
                        .wait(slot)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
            }
        }
    }

    /// Consumes the handle and returns the result if the job already
    /// completed; hands the handle back (still joinable) otherwise.
    ///
    /// # Panics
    ///
    /// Re-throws the job's panic if the job panicked.
    pub fn try_join(self) -> Result<T, Self> {
        let mut slot = lock_or_recover(&self.state.slot);
        match std::mem::replace(&mut *slot, Slot::Pending) {
            Slot::Done(value) => {
                drop(slot);
                Ok(value)
            }
            Slot::Panicked(payload) => resume_unwind(payload),
            pending => {
                *slot = pending;
                drop(slot);
                Err(self)
            }
        }
    }
}

/// A grant of extra pool threads to an in-job scoped pool (a tree split
/// or an anneal batch). Returned by [`Executor::lease`]; the grant is
/// returned to the pool on drop.
pub struct Lease {
    shared: Arc<Shared>,
    granted: usize,
}

impl Lease {
    /// Extra threads granted beyond the caller's own (may be 0).
    #[must_use]
    pub fn granted(&self) -> usize {
        self.granted
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        if self.granted > 0 {
            self.shared.leased.fetch_sub(self.granted, Ordering::AcqRel);
        }
    }
}

/// The global job pool. See the module docs for the execution model.
pub struct Executor {
    shared: Arc<Shared>,
    /// Worker threads that actually came up (≤ capacity on thread
    /// exhaustion); `0` routes submissions to the caller's thread.
    live_workers: usize,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Executor {
    /// Spawns a pool with `threads` workers (`0` resolves like
    /// [`OptimizeConfig::resolved_threads`]: the `FP_THREADS`
    /// environment variable, then all available cores).
    #[must_use]
    pub fn new(threads: usize) -> Arc<Executor> {
        let capacity = if threads == 0 {
            OptimizeConfig::default().resolved_threads()
        } else {
            threads
        }
        .max(1);
        let shared = Arc::new(Shared {
            queues: Mutex::new(Queues::default()),
            work: Condvar::new(),
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            leased: AtomicUsize::new(0),
            capacity,
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            next_job: AtomicU32::new(1),
            watches: Mutex::new(Vec::new()),
            watch_signal: Condvar::new(),
            tracer: Mutex::new(None),
        });
        let mut workers = Vec::with_capacity(capacity + 1);
        let mut live_workers = 0;
        for w in 0..capacity {
            let shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("fp-exec-{w}"))
                .spawn(move || worker_loop(&shared, u32::try_from(w + 1).unwrap_or(u32::MAX)));
            match spawned {
                Ok(handle) => {
                    workers.push(handle);
                    live_workers += 1;
                }
                // Thread exhaustion: run with however many workers came
                // up (zero makes `submit_with` run jobs caller-inline).
                Err(_) => break,
            }
        }
        {
            let shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name("fp-exec-watchdog".to_owned())
                .spawn(move || watchdog_loop(&shared));
            // Without a watchdog, deadline cancellation degrades to the
            // governor's own wall-clock checks inside each job.
            if let Ok(handle) = spawned {
                workers.push(handle);
            }
        }
        Arc::new(Executor {
            shared,
            live_workers,
            workers: Mutex::new(workers),
        })
    }

    /// The pool's worker count (its total thread budget).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.shared.capacity
    }

    /// Attaches a tracer: `job_start`/`job_done`/`shed` events are
    /// emitted for every job from now on.
    pub fn set_tracer(&self, tracer: &Tracer) {
        *lock_or_recover(&self.shared.tracer) = Some(tracer.clone());
    }

    /// Detaches the tracer.
    pub fn clear_tracer(&self) {
        *lock_or_recover(&self.shared.tracer) = None;
    }

    /// Jobs waiting in the queues (not yet started).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        lock_or_recover(&self.shared.queues).len()
    }

    /// Jobs currently executing.
    #[must_use]
    pub fn active(&self) -> usize {
        self.shared.active.load(Ordering::Acquire)
    }

    /// Jobs completed over the pool's lifetime.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.shared.completed.load(Ordering::Acquire)
    }

    /// Jobs shed (refused before execution) over the pool's lifetime.
    #[must_use]
    pub fn shed_total(&self) -> u64 {
        self.shared.shed.load(Ordering::Acquire)
    }

    /// Records a shed decision (admission refusal, queue-deadline trip)
    /// in the pool's counters and trace stream. The executor never
    /// sheds on its own — admission policy belongs to the caller (the
    /// server's status-7 contract).
    pub fn note_shed(&self, reason: &'static str) {
        self.shared.shed.fetch_add(1, Ordering::AcqRel);
        self.shared.emit(0, TraceEvent::Shed { reason });
    }

    /// Enqueues a self-contained job. The returned handle's
    /// [`JobHandle::join`] blocks for the result; dropping it detaches
    /// the job instead.
    pub fn submit<T, F>(&self, class: JobClass, f: F) -> JobHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.submit_with(class, None, None, f)
    }

    /// Enqueues a job with an optional deadline and cancel token. The
    /// watchdog cancels `cancel` when `deadline` passes (jobs observe
    /// the token through the resource governor's poll points); both are
    /// deregistered when the job finishes first.
    pub fn submit_with<T, F>(
        &self,
        class: JobClass,
        deadline: Option<Instant>,
        cancel: Option<CancelToken>,
        f: F,
    ) -> JobHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let id = self.shared.next_job.fetch_add(1, Ordering::AcqRel);
        let state = Arc::new(HandleState {
            slot: Mutex::new(Slot::Pending),
            ready: Condvar::new(),
        });
        if let (Some(deadline), Some(token)) = (deadline, cancel) {
            let mut watches = lock_or_recover(&self.shared.watches);
            watches.push(Watch {
                job: id,
                deadline,
                token,
            });
            self.shared.watch_signal.notify_all();
        }
        let fill = Arc::clone(&state);
        let run: Thunk = Box::new(move || {
            let outcome = catch_unwind(AssertUnwindSafe(f));
            let mut slot = lock_or_recover(&fill.slot);
            *slot = match outcome {
                Ok(value) => Slot::Done(value),
                Err(payload) => Slot::Panicked(payload),
            };
            fill.ready.notify_all();
        });
        // Degraded mode: a pool whose workers all failed to spawn has
        // nobody to pop the queue — run the job on the caller's thread
        // so submissions still complete (slower, never stuck).
        if self.live_workers == 0 {
            run();
            return JobHandle { state, id };
        }
        {
            let mut queues = lock_or_recover(&self.shared.queues);
            queues.injectors[class_slot(class)].push_back(Job {
                id,
                class,
                enqueued: Instant::now(),
                run,
            });
        }
        self.shared.work.notify_one();
        JobHandle { state, id }
    }

    /// Runs `f` on the *calling* thread under job accounting: it gets a
    /// job id, shows up in `active` and the trace stream, but never
    /// waits in a queue. This is the borrowed-data entry point for work
    /// that holds non-`'static` state (session re-optimizations).
    pub fn run_scoped<T>(&self, class: JobClass, f: impl FnOnce() -> T) -> T {
        let id = self.shared.next_job.fetch_add(1, Ordering::AcqRel);
        let started = self.shared.start_job(0, id, class, Instant::now());
        let outcome = catch_unwind(AssertUnwindSafe(f));
        self.shared.finish_job(0, id, class, started);
        match outcome {
            Ok(value) => value,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Grants up to `want` extra threads to an in-job scoped pool,
    /// bounded by the pool's spare capacity (capacity − active −
    /// already-leased). Never blocks; under full load the grant is 0
    /// and the caller simply runs serially — which, by the determinism
    /// contract, cannot change its result.
    #[must_use]
    pub fn lease(&self, want: usize) -> Lease {
        let mut granted = 0;
        if want > 0 {
            let mut current = self.shared.leased.load(Ordering::Acquire);
            loop {
                let busy = self.shared.active.load(Ordering::Acquire) + current;
                let spare = self.shared.capacity.saturating_sub(busy);
                let grant = want.min(spare);
                if grant == 0 {
                    break;
                }
                match self.shared.leased.compare_exchange(
                    current,
                    current + grant,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        granted = grant;
                        break;
                    }
                    Err(actual) => current = actual,
                }
            }
        }
        Lease {
            shared: Arc::clone(&self.shared),
            granted,
        }
    }

    /// Runs a batch of borrowed jobs (anneal chains) with caller
    /// helping: scoped helper threads are leased from the pool's spare
    /// capacity, and every participant — helpers *and* the calling
    /// thread — claim-steals the next unstarted job until the batch is
    /// drained. Results come back in submission order. A saturated pool
    /// grants no helpers and the batch runs caller-serial; it can never
    /// deadlock on pool exhaustion.
    ///
    /// Each job gets its own id and `job_start`/`job_done` events
    /// (class-tagged), so a 4-chain anneal shows up as 4 jobs.
    ///
    /// # Panics
    ///
    /// Re-throws the first job panic after the whole batch drains.
    pub fn run_batch<'env, T: Send>(
        &self,
        class: JobClass,
        jobs: Vec<Box<dyn FnOnce() -> T + Send + 'env>>,
    ) -> Vec<T> {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let first_id = self
            .shared
            .next_job
            .fetch_add(u32::try_from(n).unwrap_or(u32::MAX), Ordering::AcqRel);
        let batch_start = Instant::now();
        let lease = self.lease(n.saturating_sub(1));
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let next = AtomicUsize::new(0);
        let pending: Vec<PendingJob<'env, T>> =
            jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let shared = &self.shared;
        let run_share = |worker: u32| loop {
            let i = next.fetch_add(1, Ordering::AcqRel);
            if i >= n {
                return;
            }
            let Some(job) = lock_or_recover(&pending[i]).take() else {
                continue;
            };
            let id = first_id.saturating_add(u32::try_from(i).unwrap_or(u32::MAX));
            let started = shared.start_job(worker, id, class, batch_start);
            let outcome = catch_unwind(AssertUnwindSafe(job));
            shared.finish_job(worker, id, class, started);
            match outcome {
                Ok(value) => *lock_or_recover(&slots[i]) = Some(value),
                // A panicked job leaves its slot empty; the caller
                // re-throws after the whole batch drains (helpers keep
                // going so sibling results are not lost).
                Err(payload) => {
                    let mut first = lock_or_recover(&first_panic);
                    if first.is_none() {
                        *first = Some(payload);
                    }
                }
            }
        };
        std::thread::scope(|scope| {
            for h in 0..lease.granted() {
                let run_share = &run_share;
                let spawned = std::thread::Builder::new()
                    .name(format!("fp-exec-batch-{h}"))
                    .spawn_scoped(scope, move || {
                        run_share(u32::try_from(h + 1).unwrap_or(u32::MAX));
                    });
                // Thread exhaustion: stop growing the crew — the caller
                // share below still drains every job.
                if spawned.is_err() {
                    break;
                }
            }
            run_share(0);
        });
        drop(lease);
        if let Some(payload) = lock_or_recover(&first_panic).take() {
            resume_unwind(payload);
        }
        let results: Vec<T> = slots
            .into_iter()
            .filter_map(|slot| lock_or_recover(&slot).take())
            .collect();
        // No panic was recorded, and the claim loop hands every index to
        // exactly one participant, so every slot is filled.
        debug_assert_eq!(results.len(), n);
        results
    }

    /// Drains the queues and joins every worker. Called automatically
    /// on drop; explicit calls make shutdown ordering visible at the
    /// call site (the server calls it after the listener closes).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work.notify_all();
        self.shared.watch_signal.notify_all();
        let mut workers = lock_or_recover(&self.workers);
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_and_join_round_trips() {
        let exec = Executor::new(2);
        let handles: Vec<JobHandle<usize>> = (0..16)
            .map(|i| exec.submit(JobClass::Serve, move || i * 2))
            .collect();
        let results: Vec<usize> = handles.into_iter().map(JobHandle::join).collect();
        assert_eq!(results, (0..16).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(exec.completed(), 16);
        assert_eq!(exec.queue_depth(), 0);
        assert_eq!(exec.active(), 0);
    }

    #[test]
    fn class_fairness_round_robins_queued_classes() {
        // One worker, pre-loaded queues: pops must alternate classes
        // rather than draining serve first.
        let exec = Executor::new(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        // Park the worker so the queues actually fill.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        let _parked = exec.submit(JobClass::Serve, move || {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        });
        std::thread::sleep(Duration::from_millis(50));
        let mut handles = Vec::new();
        for i in 0..3 {
            for class in [JobClass::Serve, JobClass::Anneal, JobClass::Session] {
                let order = Arc::clone(&order);
                handles.push(exec.submit(class, move || {
                    order.lock().unwrap().push((class.as_str(), i));
                }));
            }
        }
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        for h in handles {
            let () = h.join();
        }
        let order = order.lock().unwrap();
        // First three pops cover all three classes (fair rotation).
        let first: Vec<&str> = order.iter().take(3).map(|(c, _)| *c).collect();
        assert!(first.contains(&"serve"), "{order:?}");
        assert!(first.contains(&"anneal"), "{order:?}");
        assert!(first.contains(&"session"), "{order:?}");
    }

    #[test]
    fn deadline_watchdog_cancels_the_token() {
        let exec = Executor::new(1);
        let token = CancelToken::new();
        let observed = token.clone();
        let handle = exec.submit_with(
            JobClass::Serve,
            Some(Instant::now() + Duration::from_millis(20)),
            Some(token),
            move || {
                let start = Instant::now();
                while !observed.is_cancelled() {
                    assert!(
                        start.elapsed() < Duration::from_secs(10),
                        "watchdog never fired"
                    );
                    std::thread::sleep(Duration::from_millis(1));
                }
                true
            },
        );
        assert!(handle.join(), "job observed the cancel");
    }

    #[test]
    fn finished_job_is_deregistered_from_the_watchdog() {
        let exec = Executor::new(1);
        let token = CancelToken::new();
        let kept = token.clone();
        let handle = exec.submit_with(
            JobClass::Serve,
            Some(Instant::now() + Duration::from_millis(40)),
            Some(token),
            || 7,
        );
        assert_eq!(handle.join(), 7);
        std::thread::sleep(Duration::from_millis(80));
        assert!(!kept.is_cancelled(), "completed job must not be cancelled");
    }

    #[test]
    fn run_batch_returns_results_in_submission_order() {
        let exec = Executor::new(4);
        let inputs: Vec<usize> = (0..32).collect();
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = inputs
            .iter()
            .map(|&i| {
                let boxed: Box<dyn FnOnce() -> usize + Send> = Box::new(move || i * i);
                boxed
            })
            .collect();
        let results = exec.run_batch(JobClass::Anneal, jobs);
        assert_eq!(results, inputs.iter().map(|&i| i * i).collect::<Vec<_>>());
        assert_eq!(exec.completed(), 32);
    }

    #[test]
    fn run_batch_on_saturated_pool_degrades_to_caller_serial() {
        let exec = Executor::new(1);
        // Saturate the only worker.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        let parked = exec.submit(JobClass::Serve, move || {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        });
        std::thread::sleep(Duration::from_millis(30));
        // The batch must complete on the caller thread (no deadlock).
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..4)
            .map(|i| {
                let boxed: Box<dyn FnOnce() -> usize + Send> = Box::new(move || i + 1);
                boxed
            })
            .collect();
        let results = exec.run_batch(JobClass::Anneal, jobs);
        assert_eq!(results, vec![1, 2, 3, 4]);
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        let () = parked.join();
    }

    #[test]
    fn lease_is_bounded_by_capacity_and_returned_on_drop() {
        let exec = Executor::new(4);
        let a = exec.lease(3);
        assert_eq!(a.granted(), 3);
        let b = exec.lease(3);
        assert_eq!(b.granted(), 1, "only one spare thread left");
        drop(a);
        let c = exec.lease(3);
        assert_eq!(c.granted(), 3, "dropped lease returns capacity");
        drop(b);
        drop(c);
    }

    #[test]
    fn run_scoped_accounts_like_a_job() {
        let exec = Executor::new(1);
        let tracer = Tracer::new();
        exec.set_tracer(&tracer);
        let value = exec.run_scoped(JobClass::Session, || 41 + 1);
        assert_eq!(value, 42);
        assert_eq!(exec.completed(), 1);
        let summary = tracer.drain().summary();
        assert_eq!(summary.jobs, 1);
    }

    #[test]
    fn note_shed_counts_and_traces() {
        let exec = Executor::new(1);
        let tracer = Tracer::new();
        exec.set_tracer(&tracer);
        exec.note_shed("queue_full");
        assert_eq!(exec.shed_total(), 1);
        let trace = tracer.drain();
        assert_eq!(trace.events.len(), 1);
        assert_eq!(trace.events[0].event.name(), "shed");
        assert_eq!(trace.summary().jobs_shed, 1);
    }

    #[test]
    fn panicked_job_does_not_take_down_the_pool() {
        let exec = Executor::new(1);
        let bomb = exec.submit(JobClass::Serve, || panic!("boom"));
        let after = exec.submit(JobClass::Serve, || 5);
        assert_eq!(after.join(), 5, "worker survived the panic");
        let caught = catch_unwind(AssertUnwindSafe(move || bomb.join()));
        assert!(caught.is_err(), "join re-throws the panic");
    }

    #[test]
    fn shutdown_joins_cleanly_with_empty_queues() {
        let exec = Executor::new(2);
        let h = exec.submit(JobClass::Serve, || ());
        let () = h.join();
        exec.shutdown();
        assert_eq!(exec.completed(), 1);
    }
}
