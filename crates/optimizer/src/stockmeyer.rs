//! An independent slicing-floorplan optimizer (Stockmeyer 1983), used as a
//! baseline and as a cross-check of the main engine on slicing inputs.
//!
//! This implementation deliberately shares no machinery with
//! [`crate::optimize`]: it recurses directly over the floorplan tree,
//! merging children's R-lists, and backtracks by re-deriving each merge.
//! On any wheel-free floorplan its optimum must coincide with the engine's
//! (a cross-validation test enforces this).

use core::fmt;

use fp_geom::Area;
use fp_shape::combine::{combine_with_provenance, CombinedRect, Compose};
use fp_shape::RList;
use fp_tree::layout::Assignment;
use fp_tree::{CutDir, FloorplanTree, ModuleLibrary, NodeId, NodeKind};

/// Errors reported by [`slicing_optimal`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlicingError {
    /// The floorplan contains a wheel; this baseline handles slicing trees
    /// only.
    NotSlicing {
        /// The wheel node.
        node: NodeId,
    },
    /// The tree is invalid or a module is missing/empty.
    BadInput(String),
}

impl fmt::Display for SlicingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlicingError::NotSlicing { node } => {
                write!(
                    f,
                    "node {node} is a wheel; Stockmeyer handles slicing floorplans only"
                )
            }
            SlicingError::BadInput(msg) => write!(f, "bad input: {msg}"),
        }
    }
}

impl std::error::Error for SlicingError {}

/// Per-node solved state: the irreducible list plus, for internal nodes,
/// the provenance of every entry.
struct Solved {
    list: RList,
    /// For each entry: (left-list index, right-list index); empty at leaves.
    prov: Vec<CombinedRect>,
    left: Option<Box<Solved>>,
    right: Option<Box<Solved>>,
    /// The leaf's tree node, if a leaf.
    leaf: Option<NodeId>,
}

/// The optimal area and assignment of a pure slicing floorplan.
///
/// # Errors
///
/// [`SlicingError::NotSlicing`] if a wheel occurs; [`SlicingError::BadInput`]
/// for invalid trees/libraries.
///
/// # Example
///
/// ```
/// use fp_optimizer::stockmeyer::slicing_optimal;
/// use fp_tree::generators;
///
/// let bench = generators::fig1(); // pure slicing
/// let lib = generators::module_library(&bench.tree, 3, 2);
/// let (area, assignment) = slicing_optimal(&bench.tree, &lib)?;
/// assert!(area > 0);
/// assert_eq!(assignment.choices.len(), 5);
/// # Ok::<(), fp_optimizer::stockmeyer::SlicingError>(())
/// ```
pub fn slicing_optimal(
    tree: &FloorplanTree,
    library: &ModuleLibrary,
) -> Result<(Area, Assignment), SlicingError> {
    tree.validate()
        .map_err(|e| SlicingError::BadInput(e.to_string()))?;
    if tree.is_empty() {
        return Err(SlicingError::BadInput("empty floorplan".into()));
    }
    let solved = solve(tree, library, tree.root())?;
    let (best_idx, best) = solved
        .list
        .iter()
        .enumerate()
        .min_by_key(|(_, r)| (r.area(), r.w))
        .map(|(i, r)| (i, *r))
        .ok_or_else(|| SlicingError::BadInput("empty implementation list".into()))?;

    let leaves = tree.leaves_in_order();
    let mut slot_of = vec![usize::MAX; tree.len()];
    for (slot, &leaf) in leaves.iter().enumerate() {
        slot_of[leaf] = slot;
    }
    let mut choices = vec![0usize; leaves.len()];
    backtrack(&solved, best_idx, &slot_of, &mut choices);
    Ok((best.area(), Assignment::new(choices)))
}

fn solve(
    tree: &FloorplanTree,
    library: &ModuleLibrary,
    id: NodeId,
) -> Result<Solved, SlicingError> {
    let node = tree
        .node(id)
        .ok_or_else(|| SlicingError::BadInput(format!("node {id} out of range")))?;
    match &node.kind {
        NodeKind::Leaf(m) => {
            let module = library
                .get(*m)
                .ok_or_else(|| SlicingError::BadInput(format!("missing module {m}")))?;
            if module.implementations().is_empty() {
                return Err(SlicingError::BadInput(format!(
                    "module {m} has no implementations"
                )));
            }
            Ok(Solved {
                list: module.implementations().clone(),
                prov: Vec::new(),
                left: None,
                right: None,
                leaf: Some(id),
            })
        }
        NodeKind::Slice(dir) => {
            let how = match dir {
                CutDir::Vertical => Compose::Beside,
                CutDir::Horizontal => Compose::Stack,
            };
            let mut acc = solve(tree, library, node.children[0])?;
            for &child in &node.children[1..] {
                let rhs = solve(tree, library, child)?;
                let combined = combine_with_provenance(&acc.list, &rhs.list, how);
                let list = RList::from_sorted(combined.iter().map(|c| c.rect).collect()).map_err(
                    |_| SlicingError::BadInput("merge output is not a staircase".into()),
                )?;
                acc = Solved {
                    list,
                    prov: combined,
                    left: Some(Box::new(acc)),
                    right: Some(Box::new(rhs)),
                    leaf: None,
                };
            }
            Ok(acc)
        }
        NodeKind::Wheel(_) => Err(SlicingError::NotSlicing { node: id }),
    }
}

fn backtrack(solved: &Solved, idx: usize, slot_of: &[usize], choices: &mut Vec<usize>) {
    if let Some(leaf) = solved.leaf {
        if let Some(c) = slot_of.get(leaf).and_then(|&slot| choices.get_mut(slot)) {
            *c = idx;
        }
        return;
    }
    let Some(&c) = solved.prov.get(idx) else {
        debug_assert!(false, "provenance index out of range");
        return;
    };
    let (Some(left), Some(right)) = (solved.left.as_deref(), solved.right.as_deref()) else {
        debug_assert!(false, "internal node missing a child");
        return;
    };
    backtrack(left, c.left, slot_of, choices);
    backtrack(right, c.right, slot_of, choices);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OptimizeConfig, Optimizer};

    /// Facade shorthand keeping this module's call sites compact.
    fn optimize(
        tree: &fp_tree::FloorplanTree,
        library: &fp_tree::ModuleLibrary,
        config: &OptimizeConfig,
    ) -> Result<crate::Outcome, crate::OptError> {
        Optimizer::new(tree, library).config(config).run_best()
    }
    use fp_geom::Rect;
    use fp_tree::layout::realize;
    use fp_tree::{generators, Module};
    use proptest::prelude::*;

    #[test]
    fn rejects_wheels() {
        let bench = generators::fp1();
        let lib = generators::module_library(&bench.tree, 2, 1);
        assert!(matches!(
            slicing_optimal(&bench.tree, &lib),
            Err(SlicingError::NotSlicing { .. })
        ));
    }

    #[test]
    fn two_stack_example() {
        let mut t = FloorplanTree::new();
        let a = t.leaf(0);
        let b = t.leaf(1);
        t.slice(CutDir::Horizontal, vec![a, b]);
        let lib: ModuleLibrary = [
            Module::new("a", vec![Rect::new(4, 2), Rect::new(2, 4)]),
            Module::new("b", vec![Rect::new(4, 1), Rect::new(1, 4)]),
        ]
        .into_iter()
        .collect();
        let (area, assignment) = slicing_optimal(&t, &lib).expect("solves");
        assert_eq!(area, 12);
        let layout = realize(&t, &lib, &assignment).expect("valid");
        assert_eq!(layout.area(), 12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// Stockmeyer and the main engine agree on every slicing floorplan.
        #[test]
        fn agrees_with_engine(tree_seed in 0u64..60, lib_seed in 0u64..20,
                              leaves in 2usize..16) {
            let bench = generators::random_floorplan(leaves, 0.0, tree_seed);
            let lib = generators::module_library(&bench.tree, 4, lib_seed);
            let (area, assignment) = slicing_optimal(&bench.tree, &lib).expect("solves");
            let engine = optimize(&bench.tree, &lib, &OptimizeConfig::default())
                .expect("engine solves");
            prop_assert_eq!(area, engine.area);
            let layout = realize(&bench.tree, &lib, &assignment).expect("valid");
            prop_assert_eq!(layout.area(), area);
            prop_assert_eq!(layout.validate(), None);
        }
    }
}
