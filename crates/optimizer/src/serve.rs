//! The `fpserved` JSON-lines batch protocol.
//!
//! One request per line, one response per line, over TCP or a stdin/stdout
//! pipe. The protocol layer is deliberately std-only (the build is fully
//! offline): a small hand-rolled JSON parser with column-accurate errors,
//! request/response types, and a shared [`ServeState`] holding the
//! content-addressed block cache that amortizes optimization work across
//! requests — the session subsystem's serving front end.
//!
//! ## Requests
//!
//! ```json
//! {"id": 1, "method": "optimize", "builtin": "fp1", "n": 8, "k1": 40}
//! {"id": 2, "method": "optimize", "instance": "module a 2x3\ntree a"}
//! {"id": 3, "method": "stats"}
//! {"id": 4, "method": "metrics"}
//! {"id": 5, "method": "ping"}
//! {"id": 6, "method": "shutdown"}
//! ```
//!
//! `optimize` takes either `builtin` (`fig1`, `fp1`…`fp4`, `ami33`,
//! `ami49`, with `n`/`seed` module-generator knobs) or `instance` (a full
//! `.fpt` text, `\n`-escaped), plus the CLI's selection and robustness
//! knobs: `k1`, `k2`, `theta`, `prefilter`, `memory`, `deadline_ms`,
//! `threads` (intra-request tree parallelism, `0` = all cores),
//! `auto_rescue`, `objective` (`"area"`/`"hp"`), `outline` (`"WxH"`).
//!
//! Wirelength-aware requests attach a netlist — `netlist` (a full
//! `.fpn` text, `\n`-escaped) or `nets`/`net_seed` (a deterministic
//! generated netlist over the instance's modules) — plus `alpha`
//! (weight on area in the composite objective, default 1.0) or
//! `max_hpwl` (epsilon-constraint wirelength budget). The `pareto`
//! method takes the same fields and returns the whole non-dominated
//! (area, HPWL, fit) front instead of one winner:
//!
//! ```json
//! {"id": 7, "method": "optimize", "builtin": "fp1", "nets": 30, "alpha": 0.5}
//! {"id": 8, "method": "pareto", "builtin": "fp1", "nets": 30}
//! ```
//!
//! The `anneal` method runs multi-start simulated-annealing topology
//! search over the instance's module library (the request's tree only
//! supplies the modules): `chains` independent chains (default 1, max
//! 64) of `moves` proposed moves each (default 2000), deterministic in
//! `anneal_seed`, merged best-of-N. Annealing is area-only and runs to
//! completion, so the netlist, outline, and budget fields are rejected.
//! The search itself is injected by the server binary
//! ([`ServeState::with_anneal_backend`]) because the annealer crate
//! sits above this one:
//!
//! ```json
//! {"id": 9, "method": "anneal", "builtin": "fp1", "chains": 4, "moves": 500}
//! ```
//!
//! ## Protocol versioning
//!
//! Every request may pin a protocol version with `"proto": 1`; omitting
//! the field means v1, which is exactly the historical wire format
//! (byte-for-byte). `ping` and `stats` replies echo `"proto":1` so
//! clients can probe the server's version; pinning any other version
//! gets a structured status-2 reply carrying both `proto` (the
//! server's) and `requested_proto`.
//!
//! ## Layout post-processing
//!
//! `optimize` requests may add `"layout": true` to realize the winning
//! assignment and attach a `layout` object to the reply: `dead_space`,
//! the polygonized whitespace distribution (`whitespace_regions`,
//! `whitespace_total`, `whitespace_largest`, `region_areas` sorted
//! largest first), and `outline_rings` (boundary rings of the merged
//! occupied area, holes included).
//!
//! ## Responses
//!
//! Every response carries the echoed `id` (when the request had one), the
//! 1-based `line` of the request in the stream, and a `status` reusing the
//! documented CLI exit-code contract ([`status_for`]): 0 success,
//! 1 internal error, 2 malformed request, 3 bad instance, 4 budget
//! exhausted, 5 deadline exceeded or cancelled, 6 outline infeasible.
//! Malformed requests get positional errors: `line` plus the JSON `col`
//! (or the embedded instance's `instance_line`/`instance_col`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fp_tree::format::{parse_instance, FloorplanInstance};
use fp_tree::generators;
use fp_tree::ModuleLibrary;

use crate::cache::{shared_cache, shared_cache_stats, SharedBlockCache};
use crate::engine::{Objective, OptError, OptimizeConfig, Optimizer, RunOutcome};
use crate::exec::Executor;
use crate::governor::CancelToken;
use crate::multi::CompositeObjective;
use fp_netlist::{hypervolume, netlist_fingerprint, parse_netlist, random_netlist, Netlist};
use fp_select::LReductionPolicy;
use fp_trace::{MetricsRegistry, Tracer};

/// Request handled successfully.
pub const STATUS_OK: u8 = 0;
/// An engine invariant broke (a bug, not a user error).
pub const STATUS_INTERNAL: u8 = 1;
/// The request line is malformed (bad JSON, unknown method, bad field).
pub const STATUS_BAD_REQUEST: u8 = 2;
/// The floorplan instance is unreadable or invalid.
pub const STATUS_BAD_INPUT: u8 = 3;
/// The implementation budget tripped (or an injected fault).
pub const STATUS_RESOURCE: u8 = 4;
/// The per-request deadline passed or the request was cancelled.
pub const STATUS_DEADLINE: u8 = 5;
/// No root implementation fits the requested fixed outline.
pub const STATUS_OUTLINE: u8 = 6;
/// The server shed this request instead of queueing it: admission
/// control was at its in-flight limit, the request overstayed its queue
/// deadline, or the connection backlog was full. The request was never
/// executed — retrying later is safe.
pub const STATUS_OVERLOADED: u8 = 7;

/// The protocol version this server speaks. Requests may pin a version
/// with a `proto` field; **v1 is exactly the historical wire format**,
/// so omitting the field and sending `"proto":1` are byte-for-byte
/// equivalent. `ping` and `stats` replies echo the server's version, and
/// a request pinning any other version gets a structured
/// [`STATUS_BAD_REQUEST`] reply carrying both versions — a client can
/// probe for capabilities without tripping over an unknown-field error.
pub const PROTO_VERSION: u64 = 1;

/// Maps an optimizer error to the documented status/exit code. This is
/// the single source of truth shared by the `fpopt` CLI's exit codes and
/// `fpserved`'s per-request statuses.
#[must_use]
pub fn status_for(e: &OptError) -> u8 {
    match e {
        OptError::Tree(_)
        | OptError::EmptyFloorplan
        | OptError::MissingModule { .. }
        | OptError::NoImplementations { .. } => STATUS_BAD_INPUT,
        OptError::OutOfMemory { .. } | OptError::FaultInjected { .. } => STATUS_RESOURCE,
        OptError::DeadlineExceeded { .. } | OptError::Cancelled { .. } => STATUS_DEADLINE,
        OptError::NoFeasibleOutline { .. } => STATUS_OUTLINE,
        OptError::Internal { .. } => STATUS_INTERNAL,
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON
// ---------------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member `key` of an object, if present.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if exactly one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A JSON syntax error with a 1-based column (character position).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// 1-based character column of the offending input.
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

/// Maximum `[`/`{` nesting accepted (keeps the parser's recursion safe).
const MAX_JSON_DEPTH: usize = 64;

struct JsonParser {
    chars: Vec<char>,
    pos: usize,
}

impl JsonParser {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            col: self.pos + 1,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|c| c.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect_char(&mut self, want: char) -> Result<(), JsonError> {
        match self.bump() {
            Some(c) if c == want => Ok(()),
            Some(c) => {
                self.pos -= 1;
                Err(self.err(format!("expected `{want}`, found `{c}`")))
            }
            None => Err(self.err(format!("expected `{want}`, found end of input"))),
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_JSON_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("expected a value, found end of input")),
            Some('{') => self.parse_object(depth),
            Some('[') => self.parse_array(depth),
            Some('"') => self.parse_string().map(Json::Str),
            Some('t') | Some('f') | Some('n') => self.parse_keyword(),
            Some(c) if c == '-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.err(format!("unexpected character `{c}`"))),
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_char('{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some('"') {
                return Err(self.err("expected a string object key"));
            }
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect_char(':')?;
            let value = self.parse_value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(Json::Obj(members)),
                Some(c) => {
                    self.pos -= 1;
                    return Err(self.err(format!("expected `,` or `}}`, found `{c}`")));
                }
                None => return Err(self.err("unterminated object")),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_char('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(Json::Arr(items)),
                Some(c) => {
                    self.pos -= 1;
                    return Err(self.err(format!("expected `,` or `]`, found `{c}`")));
                }
                None => return Err(self.err("unterminated array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect_char('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let mut code: u32 = 0;
                        for _ in 0..4 {
                            let digit = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            code = code * 16 + digit;
                        }
                        // Surrogates and other invalid scalars are
                        // replaced rather than rejected.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    Some(c) => return Err(self.err(format!("invalid escape `\\{c}`"))),
                    None => return Err(self.err("unterminated escape")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn parse_keyword(&mut self) -> Result<Json, JsonError> {
        for (word, value) in [
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("null", Json::Null),
        ] {
            let end = self.pos + word.chars().count();
            if end <= self.chars.len() && self.chars[self.pos..end].iter().copied().eq(word.chars())
            {
                self.pos = end;
                return Ok(value);
            }
        }
        Err(self.err("expected `true`, `false`, or `null`"))
    }

    fn parse_number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => {
                self.pos = start;
                Err(self.err(format!("invalid number `{text}`")))
            }
        }
    }
}

/// Parses one JSON document (a full request line).
///
/// # Errors
///
/// [`JsonError`] with the 1-based character column of the first offence,
/// including trailing garbage after a complete value.
pub fn parse_json(input: &str) -> Result<Json, JsonError> {
    let mut p = JsonParser {
        chars: input.chars().collect(),
        pos: 0,
    };
    let value = p.parse_value(0)?;
    p.skip_ws();
    if let Some(c) = p.peek() {
        return Err(p.err(format!("trailing characters after value: `{c}`")));
    }
    Ok(value)
}

/// Escapes a string for embedding in a JSON document.
#[must_use]
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// An incremental JSON object writer (responses are always objects).
#[derive(Debug, Default)]
pub struct JsonObj {
    buf: String,
}

impl JsonObj {
    /// An empty object under construction.
    #[must_use]
    pub fn new() -> Self {
        JsonObj::default()
    }

    fn pre(&mut self, key: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&escape_json(key));
        self.buf.push_str("\":");
    }

    /// Adds a raw, already-serialized member.
    pub fn raw(&mut self, key: &str, value: &str) -> &mut Self {
        self.pre(key);
        self.buf.push_str(value);
        self
    }

    /// Adds a string member.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.pre(key);
        self.buf.push('"');
        self.buf.push_str(&escape_json(value));
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer member.
    pub fn u128(&mut self, key: &str, value: u128) -> &mut Self {
        self.raw(key, &value.to_string())
    }

    /// Adds an unsigned integer member.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.raw(key, &value.to_string())
    }

    /// Adds a boolean member.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.raw(key, if value { "true" } else { "false" })
    }

    /// The finished document.
    #[must_use]
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// A request's `id`, echoed verbatim into its response.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestId {
    /// A JSON number id.
    Num(f64),
    /// A JSON string id.
    Str(String),
}

impl RequestId {
    fn to_json(&self) -> String {
        match self {
            RequestId::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                }
            }
            RequestId::Str(s) => format!("\"{}\"", escape_json(s)),
        }
    }
}

/// What a request asks for.
#[derive(Debug, Clone, PartialEq)]
pub enum Method {
    /// Run the optimizer over an instance.
    Optimize(Box<OptimizeRequest>),
    /// Run the optimizer and return the non-dominated (area, HPWL,
    /// outline-fit) front against the request's netlist.
    Pareto(Box<OptimizeRequest>),
    /// Run multi-start simulated annealing over the instance's module
    /// library (topology search; the optimizer is the inner loop).
    Anneal(Box<AnnealRequest>),
    /// Liveness probe.
    Ping,
    /// Cache/session counters.
    Stats,
    /// The server-lifetime metrics registry, as structured counters plus
    /// a Prometheus text rendering.
    Metrics,
    /// Stop accepting work, drain, exit.
    Shutdown,
}

/// Parameters of an `optimize` request (all optional except the
/// instance source).
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeRequest {
    /// Built-in benchmark name (`fig1`, `fp1`…`fp4`, `ami33`, `ami49`).
    pub builtin: Option<String>,
    /// Full `.fpt` instance text (alternative to `builtin`).
    pub instance: Option<String>,
    /// Implementations per module for built-in generators.
    pub n: usize,
    /// Module-set seed for built-in generators.
    pub seed: u64,
    /// `R_Selection` limit `K₁`.
    pub k1: Option<usize>,
    /// `L_Selection` limit `K₂`.
    pub k2: Option<usize>,
    /// `L_Selection` trigger θ.
    pub theta: f64,
    /// `L_Selection` heuristic prefilter `S`.
    pub prefilter: Option<usize>,
    /// Implementation budget.
    pub memory: Option<usize>,
    /// Per-request deadline in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Tree-parallelism worker count for this request (`0` = all
    /// cores); defaults to the server-wide setting when absent.
    pub threads: Option<usize>,
    /// Degrade-and-retry on budget trips.
    pub auto_rescue: bool,
    /// Root objective.
    pub objective: Objective,
    /// Fixed outline `WxH`.
    pub outline: Option<fp_geom::Rect>,
    /// Full `.fpn` netlist text for wirelength-aware requests.
    pub netlist: Option<String>,
    /// Net count of a deterministically generated netlist (alternative
    /// to `netlist`).
    pub nets: Option<usize>,
    /// Seed of the generated netlist.
    pub net_seed: u64,
    /// Weight on area in the composite objective (`1.0` = area only).
    pub alpha: Option<f64>,
    /// Epsilon-constraint wirelength budget (overrides `alpha`).
    pub max_hpwl: Option<u64>,
    /// Attach layout post-processing to the reply: realize the winning
    /// assignment and report the polygonized whitespace distribution
    /// (`optimize` only).
    pub layout: bool,
}

impl Default for OptimizeRequest {
    fn default() -> Self {
        OptimizeRequest {
            builtin: None,
            instance: None,
            n: 8,
            seed: 1,
            k1: None,
            k2: None,
            theta: 1.0,
            prefilter: None,
            memory: None,
            deadline_ms: None,
            threads: None,
            auto_rescue: false,
            objective: Objective::MinArea,
            outline: None,
            netlist: None,
            nets: None,
            net_seed: 1,
            alpha: None,
            max_hpwl: None,
            layout: false,
        }
    }
}

/// Parameters of an `anneal` request: the instance source and
/// selection knobs of an [`OptimizeRequest`] (netlist, outline, and
/// budget fields are rejected — annealing jobs are area-only and run
/// to completion) plus the multi-start knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealRequest {
    /// Instance source and inner-optimizer knobs.
    pub base: OptimizeRequest,
    /// Independent chains to run (best-of-N merge).
    pub chains: usize,
    /// Proposed moves per chain.
    pub moves: usize,
    /// Base annealing seed; chain `i` derives its own stream from it.
    pub anneal_seed: u64,
}

impl Default for AnnealRequest {
    fn default() -> Self {
        AnnealRequest {
            base: OptimizeRequest::default(),
            chains: 1,
            moves: 2_000,
            anneal_seed: 1,
        }
    }
}

/// What the server hands an injected [`AnnealBackend`]: everything a
/// multi-start run needs, resolved from the request and the server
/// state. The protocol layer cannot depend on the annealer crate (the
/// annealer depends on this crate), so the binary wires the search in.
pub struct AnnealJob<'a> {
    /// The instance's module library (topology search ignores the
    /// request's tree — the annealer proposes its own).
    pub library: &'a ModuleLibrary,
    /// Independent chains to run.
    pub chains: usize,
    /// Proposed moves per chain.
    pub moves: usize,
    /// Base annealing seed.
    pub seed: u64,
    /// Inner-loop optimizer configuration (selection policies, threads).
    pub optimizer: OptimizeConfig,
    /// The server's shared block cache; chains share it.
    pub cache: &'a SharedBlockCache,
    /// The server's executor, when one is attached: chains should run
    /// on it as anneal-class jobs.
    pub executor: Option<&'a Executor>,
}

/// What an [`AnnealBackend`] returns; the server renders it verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnealOutcome {
    /// The winning chain's best area.
    pub best_area: u128,
    /// Area of the initial topology, for reference.
    pub initial_area: u128,
    /// Index of the winning chain.
    pub best_chain: usize,
    /// Every chain's best area, in chain order.
    pub chain_areas: Vec<u128>,
    /// Moves accepted across all chains.
    pub accepted: u64,
    /// Moves proposed across all chains.
    pub proposed: u64,
    /// The winning topology as a Polish-expression string.
    pub expression: String,
}

/// The injected multi-start annealing implementation (see
/// [`ServeState::with_anneal_backend`]).
pub type AnnealBackend = dyn Fn(&AnnealJob<'_>) -> AnnealOutcome + Send + Sync;

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Echoed correlation id, if the client sent one.
    pub id: Option<RequestId>,
    /// The protocol version the request pinned (defaults to
    /// [`PROTO_VERSION`] when the `proto` field is absent; any other
    /// value is rejected at parse time, so an executed request always
    /// carries the server's version).
    pub proto: u64,
    /// The requested operation.
    pub method: Method,
}

/// Why a request line was rejected (always status 2).
#[derive(Debug, Clone, PartialEq)]
pub enum RequestError {
    /// The line is not valid JSON; carries the id-less positional error.
    Json(JsonError),
    /// The JSON is valid but the request is not; carries the echoed id
    /// (when one was readable) and the complaint.
    Bad(Option<RequestId>, String),
    /// The request pinned a protocol version this server does not speak;
    /// carries the echoed id and the requested version. The reply states
    /// the server's own [`PROTO_VERSION`] so clients can downgrade.
    UnsupportedProto(Option<RequestId>, u64),
}

fn field_usize(obj: &Json, key: &str) -> Result<Option<usize>, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => match v.as_u64() {
            Some(n) => Ok(Some(n as usize)),
            None => Err(format!("`{key}` must be a non-negative integer")),
        },
    }
}

fn field_bool(obj: &Json, key: &str) -> Result<bool, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(false),
        Some(v) => v.as_bool().ok_or(format!("`{key}` must be a boolean")),
    }
}

/// Parses one request line.
///
/// # Errors
///
/// [`RequestError::Json`] for syntax errors (with a 1-based column),
/// [`RequestError::Bad`] for structurally invalid requests.
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let doc = parse_json(line).map_err(RequestError::Json)?;
    let id = match doc.get("id") {
        None | Some(Json::Null) => None,
        Some(Json::Num(n)) => Some(RequestId::Num(*n)),
        Some(Json::Str(s)) => Some(RequestId::Str(s.clone())),
        Some(_) => {
            return Err(RequestError::Bad(
                None,
                "`id` must be a number or string".to_owned(),
            ))
        }
    };
    let bad = |msg: String| RequestError::Bad(id.clone(), msg);
    if !matches!(doc, Json::Obj(_)) {
        return Err(bad("request must be a JSON object".to_owned()));
    }
    let proto = match doc.get("proto") {
        None | Some(Json::Null) => PROTO_VERSION,
        Some(v) => v
            .as_u64()
            .filter(|&p| p >= 1)
            .ok_or_else(|| bad("`proto` must be a positive integer".to_owned()))?,
    };
    if proto != PROTO_VERSION {
        return Err(RequestError::UnsupportedProto(id.clone(), proto));
    }
    let method = doc
        .get("method")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing `method` string".to_owned()))?;
    let method = match method {
        "ping" => Method::Ping,
        "stats" => Method::Stats,
        "metrics" => Method::Metrics,
        "shutdown" => Method::Shutdown,
        "optimize" | "pareto" | "anneal" => {
            let mut req = OptimizeRequest {
                builtin: doc.get("builtin").and_then(Json::as_str).map(str::to_owned),
                instance: doc
                    .get("instance")
                    .and_then(Json::as_str)
                    .map(str::to_owned),
                ..OptimizeRequest::default()
            };
            if req.builtin.is_none() && req.instance.is_none() {
                return Err(bad(format!("`{method}` needs `builtin` or `instance`")));
            }
            if let Some(n) = field_usize(&doc, "n").map_err(&bad)? {
                if n == 0 {
                    return Err(bad("`n` must be at least 1".to_owned()));
                }
                req.n = n;
            }
            if let Some(seed) = field_usize(&doc, "seed").map_err(&bad)? {
                req.seed = seed as u64;
            }
            req.k1 = field_usize(&doc, "k1").map_err(&bad)?;
            req.k2 = field_usize(&doc, "k2").map_err(&bad)?;
            req.prefilter = field_usize(&doc, "prefilter").map_err(&bad)?;
            req.memory = field_usize(&doc, "memory").map_err(&bad)?;
            req.deadline_ms = field_usize(&doc, "deadline_ms")
                .map_err(&bad)?
                .map(|ms| ms as u64);
            req.threads = field_usize(&doc, "threads").map_err(&bad)?;
            req.auto_rescue = field_bool(&doc, "auto_rescue").map_err(&bad)?;
            if let Some(theta) = doc.get("theta") {
                let theta = theta
                    .as_f64()
                    .filter(|t| (0.0..=1.0).contains(t) && *t > 0.0)
                    .ok_or_else(|| bad("`theta` must be a number in (0, 1]".to_owned()))?;
                req.theta = theta;
            }
            if let Some(objective) = doc.get("objective") {
                req.objective = match objective.as_str() {
                    Some("area") => Objective::MinArea,
                    Some("hp") => Objective::MinHalfPerimeter,
                    _ => return Err(bad("`objective` must be \"area\" or \"hp\"".to_owned())),
                };
            }
            if let Some(outline) = doc.get("outline") {
                let text = outline
                    .as_str()
                    .ok_or_else(|| bad("`outline` must be a \"WxH\" string".to_owned()))?;
                let parsed = text
                    .split_once(['x', 'X'])
                    .and_then(|(w, h)| Some(fp_geom::Rect::new(w.parse().ok()?, h.parse().ok()?)));
                match parsed {
                    Some(r) if r.w > 0 && r.h > 0 => req.outline = Some(r),
                    _ => return Err(bad(format!("`outline` is not a WxH pair: `{text}`"))),
                }
            }
            req.netlist = doc.get("netlist").and_then(Json::as_str).map(str::to_owned);
            if let Some(nets) = field_usize(&doc, "nets").map_err(&bad)? {
                if nets == 0 {
                    return Err(bad("`nets` must be at least 1".to_owned()));
                }
                req.nets = Some(nets);
            }
            if req.netlist.is_some() && req.nets.is_some() {
                return Err(bad("`netlist` and `nets` are mutually exclusive".to_owned()));
            }
            if let Some(seed) = field_usize(&doc, "net_seed").map_err(&bad)? {
                req.net_seed = seed as u64;
            }
            if let Some(alpha) = doc.get("alpha") {
                let alpha = alpha
                    .as_f64()
                    .filter(|a| (0.0..=1.0).contains(a))
                    .ok_or_else(|| bad("`alpha` must be a number in [0, 1]".to_owned()))?;
                req.alpha = Some(alpha);
            }
            req.max_hpwl = field_usize(&doc, "max_hpwl")
                .map_err(&bad)?
                .map(|h| h as u64);
            req.layout = field_bool(&doc, "layout").map_err(&bad)?;
            if req.layout && method != "optimize" {
                return Err(bad(format!("`{method}` does not accept `layout`")));
            }
            let wants_netlist = req.alpha.is_some() || req.max_hpwl.is_some() || method == "pareto";
            if wants_netlist && req.netlist.is_none() && req.nets.is_none() {
                return Err(bad(format!(
                    "`{method}` with wirelength objectives needs `netlist` or `nets`"
                )));
            }
            if method == "anneal" {
                // Annealing jobs are area-only and run to completion:
                // the wirelength, outline, and budget knobs have no
                // defined behaviour there, so reject them loudly
                // instead of silently ignoring them.
                for (present, field) in [
                    (req.netlist.is_some(), "netlist"),
                    (req.nets.is_some(), "nets"),
                    (req.alpha.is_some(), "alpha"),
                    (req.max_hpwl.is_some(), "max_hpwl"),
                    (req.outline.is_some(), "outline"),
                    (req.deadline_ms.is_some(), "deadline_ms"),
                    (req.memory.is_some(), "memory"),
                ] {
                    if present {
                        return Err(bad(format!("`anneal` does not accept `{field}`")));
                    }
                }
                let mut anneal = AnnealRequest {
                    base: req,
                    ..AnnealRequest::default()
                };
                if let Some(chains) = field_usize(&doc, "chains").map_err(&bad)? {
                    if chains == 0 || chains > 64 {
                        return Err(bad("`chains` must be in 1..=64".to_owned()));
                    }
                    anneal.chains = chains;
                }
                if let Some(moves) = field_usize(&doc, "moves").map_err(&bad)? {
                    if moves == 0 {
                        return Err(bad("`moves` must be at least 1".to_owned()));
                    }
                    anneal.moves = moves;
                }
                if let Some(seed) = field_usize(&doc, "anneal_seed").map_err(&bad)? {
                    anneal.anneal_seed = seed as u64;
                }
                Method::Anneal(Box::new(anneal))
            } else if method == "pareto" {
                Method::Pareto(Box::new(req))
            } else {
                Method::Optimize(Box::new(req))
            }
        }
        other => {
            return Err(bad(format!(
            "unknown method `{other}` (optimize, pareto, anneal, ping, stats, metrics, shutdown)"
        )))
        }
    };
    Ok(Request { id, proto, method })
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Upper bounds (microseconds) of the per-method latency buckets; the
/// implicit overflow bucket completes the series.
const METHOD_LAT_BOUNDS_US: [u64; 14] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 5_000_000,
];

/// One lock-free cumulative latency histogram (per served method).
#[derive(Debug, Default)]
struct MethodHist {
    counts: [AtomicU64; METHOD_LAT_BOUNDS_US.len() + 1],
    sum_us: AtomicU64,
    count: AtomicU64,
    max_us: AtomicU64,
}

impl MethodHist {
    fn observe(&self, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let slot = METHOD_LAT_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(METHOD_LAT_BOUNDS_US.len());
        self.counts[slot].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// The smallest bucket bound covering quantile `q`, in
    /// microseconds; the overflow bucket reports the observed maximum.
    fn quantile_us(&self, q: f64) -> u64 {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0;
        for (slot, &bound) in METHOD_LAT_BOUNDS_US.iter().enumerate() {
            cumulative += self.counts[slot].load(Ordering::Relaxed);
            if cumulative >= rank {
                return bound;
            }
        }
        self.max_us.load(Ordering::Relaxed)
    }

    /// `{"count":N,"p50_ms":…,"p99_ms":…,"p999_ms":…,"max_ms":…}`.
    fn to_json(&self) -> String {
        let ms = |us: u64| us as f64 / 1_000.0;
        format!(
            "{{\"count\":{},\"p50_ms\":{},\"p99_ms\":{},\"p999_ms\":{},\"max_ms\":{}}}",
            self.count.load(Ordering::Relaxed),
            ms(self.quantile_us(0.50)),
            ms(self.quantile_us(0.99)),
            ms(self.quantile_us(0.999)),
            ms(self.max_us.load(Ordering::Relaxed)),
        )
    }

    fn render_prometheus(&self, name: &str, method: &str, out: &mut String) {
        use std::fmt::Write as _;
        let mut cumulative = 0;
        for (slot, &bound) in METHOD_LAT_BOUNDS_US.iter().enumerate() {
            cumulative += self.counts[slot].load(Ordering::Relaxed);
            let le = bound as f64 / 1e6;
            let _ = writeln!(
                out,
                "{name}_bucket{{method=\"{method}\",le=\"{le}\"}} {cumulative}"
            );
        }
        cumulative += self.counts[METHOD_LAT_BOUNDS_US.len()].load(Ordering::Relaxed);
        let _ = writeln!(
            out,
            "{name}_bucket{{method=\"{method}\",le=\"+Inf\"}} {cumulative}"
        );
        let _ = writeln!(
            out,
            "{name}_sum{{method=\"{method}\"}} {}",
            self.sum_us.load(Ordering::Relaxed) as f64 / 1e6
        );
        let _ = writeln!(
            out,
            "{name}_count{{method=\"{method}\"}} {}",
            self.count.load(Ordering::Relaxed)
        );
    }
}

/// The latency-accounting class of a request method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MethodKind {
    Optimize = 0,
    Pareto = 1,
    Anneal = 2,
    /// `ping`, `stats`, `metrics`, `shutdown`.
    Control = 3,
}

impl MethodKind {
    const ALL: [(MethodKind, &'static str); 4] = [
        (MethodKind::Optimize, "optimize"),
        (MethodKind::Pareto, "pareto"),
        (MethodKind::Anneal, "anneal"),
        (MethodKind::Control, "control"),
    ];

    fn of(method: &Method) -> MethodKind {
        match method {
            Method::Optimize(_) => MethodKind::Optimize,
            Method::Pareto(_) => MethodKind::Pareto,
            Method::Anneal(_) => MethodKind::Anneal,
            Method::Ping | Method::Stats | Method::Metrics | Method::Shutdown => {
                MethodKind::Control
            }
        }
    }
}

/// Server-wide shared state: the cross-request block cache, admission
/// control, and counters.
pub struct ServeState {
    cache: SharedBlockCache,
    requests: AtomicU64,
    threads: usize,
    metrics: MetricsRegistry,
    /// Jobs admitted and not yet finished (queued + executing).
    inflight: AtomicU64,
    /// Admission limit on in-flight jobs (`0` = unlimited).
    max_inflight: u64,
    /// Requests shed with [`STATUS_OVERLOADED`] instead of executed.
    shed: AtomicU64,
    /// Wirelength-aware `optimize` requests served.
    netlist_requests: AtomicU64,
    /// `pareto` requests served.
    pareto_requests: AtomicU64,
    /// Non-dominated points returned across all `pareto` replies.
    pareto_points: AtomicU64,
    /// `anneal` requests served.
    anneal_requests: AtomicU64,
    /// The injected multi-start annealing implementation, if any.
    anneal_backend: Option<Arc<AnnealBackend>>,
    /// The job executor, when the server runs on one: stats/metrics
    /// report its gauges and optimize runs lease spare workers from it.
    executor: Option<Arc<Executor>>,
    /// Per-method service-time histograms, indexed by [`MethodKind`].
    latency: [MethodHist; 4],
}

impl ServeState {
    /// Fresh state with a block cache of the given byte budget. The
    /// per-request thread default follows `FP_THREADS` (else 1).
    #[must_use]
    pub fn new(cache_bytes: usize) -> Self {
        ServeState::with_cache(shared_cache(cache_bytes))
    }

    /// Fresh state around an existing cache — in-memory or persistent
    /// (see [`SharedBlockCache::open_persistent`]); a persistent cache
    /// gives the server warm restarts across process boundaries.
    #[must_use]
    pub fn with_cache(cache: SharedBlockCache) -> Self {
        ServeState {
            cache,
            requests: AtomicU64::new(0),
            threads: OptimizeConfig::default().threads,
            metrics: MetricsRegistry::new(),
            inflight: AtomicU64::new(0),
            max_inflight: 0,
            shed: AtomicU64::new(0),
            netlist_requests: AtomicU64::new(0),
            pareto_requests: AtomicU64::new(0),
            pareto_points: AtomicU64::new(0),
            anneal_requests: AtomicU64::new(0),
            anneal_backend: None,
            executor: None,
            latency: Default::default(),
        }
    }

    /// Sets the server-wide default for per-request tree parallelism
    /// (`0` = all cores). Requests may override it per call with their
    /// own `threads` field; either way the intra-request pool composes
    /// multiplicatively with the server's request workers.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The per-request thread default (unresolved; `0` = all cores).
    #[must_use]
    pub fn default_threads(&self) -> usize {
        self.threads
    }

    /// The shared block cache.
    #[must_use]
    pub fn cache(&self) -> &SharedBlockCache {
        &self.cache
    }

    /// Requests executed so far (any method).
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// The server-lifetime metrics registry: every `optimize` request's
    /// drained trace summary is absorbed here, so its counters are
    /// exactly the sum of the per-reply `trace_summary` objects.
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Sets the admission limit: at most `max_inflight` jobs may be
    /// queued or executing at once; beyond it, submissions are shed
    /// with [`STATUS_OVERLOADED`]. `0` (the default) disables the limit.
    #[must_use]
    pub fn with_max_inflight(mut self, max_inflight: u64) -> Self {
        self.max_inflight = max_inflight;
        self
    }

    /// The admission limit in force (`0` = unlimited).
    #[must_use]
    pub fn max_inflight(&self) -> u64 {
        self.max_inflight
    }

    /// Jobs currently admitted and not yet finished.
    #[must_use]
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Requests shed with [`STATUS_OVERLOADED`] so far.
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Wirelength-aware `optimize` requests served so far.
    #[must_use]
    pub fn netlist_requests(&self) -> u64 {
        self.netlist_requests.load(Ordering::Relaxed)
    }

    /// `pareto` requests served so far.
    #[must_use]
    pub fn pareto_requests(&self) -> u64 {
        self.pareto_requests.load(Ordering::Relaxed)
    }

    /// Non-dominated points returned across all `pareto` replies.
    #[must_use]
    pub fn pareto_points(&self) -> u64 {
        self.pareto_points.load(Ordering::Relaxed)
    }

    /// `anneal` requests served so far.
    #[must_use]
    pub fn anneal_requests(&self) -> u64 {
        self.anneal_requests.load(Ordering::Relaxed)
    }

    /// Injects the multi-start annealing implementation. The protocol
    /// crate cannot depend on the annealer (the annealer's inner loop
    /// is this crate's optimizer), so the server binary registers the
    /// search here; without one, `anneal` requests are rejected with
    /// [`STATUS_BAD_REQUEST`].
    #[must_use]
    pub fn with_anneal_backend(mut self, backend: Arc<AnnealBackend>) -> Self {
        self.anneal_backend = Some(backend);
        self
    }

    /// Attaches the job executor the server schedules onto. Stats and
    /// metrics then report its queue/active gauges, anneal chains run
    /// on its pool, and optimize runs lease spare workers from it for
    /// intra-request tree parallelism. The *echoed* `threads` in
    /// replies stays request-resolved — leasing changes speed, never
    /// bytes.
    #[must_use]
    pub fn with_executor(mut self, executor: Arc<Executor>) -> Self {
        self.executor = Some(executor);
        self
    }

    /// The attached executor, if any.
    #[must_use]
    pub fn executor(&self) -> Option<&Arc<Executor>> {
        self.executor.as_ref()
    }

    /// Records one served request's wall time under its method class.
    fn observe_latency(&self, kind: MethodKind, elapsed: Duration) {
        self.latency[kind as usize].observe(elapsed);
    }

    /// The per-method latency digest as a JSON object:
    /// `{"optimize": {"count":…,"p50_ms":…,"p99_ms":…,"p999_ms":…,"max_ms":…}, …}`.
    /// Quantiles are bucket upper bounds (conservative, never below
    /// the true quantile until the overflow bucket).
    #[must_use]
    pub fn latency_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (kind, name)) in MethodKind::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{name}\":{}",
                self.latency[*kind as usize].to_json()
            ));
        }
        out.push('}');
        out
    }

    /// Tries to admit one job. `true` reserves an in-flight slot the
    /// caller must release with [`ServeState::finish_job`] exactly once;
    /// `false` means the server is at its limit and the caller should
    /// shed the request (see [`shed_reply`]).
    #[must_use]
    pub fn try_admit(&self) -> bool {
        if self.max_inflight == 0 {
            self.inflight.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        // CAS loop: never exceed the limit even under racing admits.
        let mut current = self.inflight.load(Ordering::Relaxed);
        loop {
            if current >= self.max_inflight {
                return false;
            }
            match self.inflight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(observed) => current = observed,
            }
        }
    }

    /// Releases an in-flight slot reserved by a successful
    /// [`ServeState::try_admit`] (whether the job executed or was shed
    /// at dequeue by its queue deadline).
    pub fn finish_job(&self) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Counts one shed request (the caller already rendered the
    /// [`STATUS_OVERLOADED`] reply).
    pub fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// The full Prometheus exposition for this server: the metrics
    /// registry's run counters plus cache, persistence, and overload
    /// gauges — what `fpserved` serves at `GET /metrics`. A warm
    /// restart shows up here as nonzero `fp_cache_recovered_entries`
    /// and an immediately high hit rate.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = self.metrics.render_prometheus();
        let cache = &self.cache;
        let stats = cache.stats();
        let mut gauge = |name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
            ));
        };
        gauge("fp_cache_hits_total", "Block cache hits", stats.hits);
        gauge("fp_cache_misses_total", "Block cache misses", stats.misses);
        gauge(
            "fp_cache_insertions_total",
            "Block cache insertions",
            stats.insertions,
        );
        gauge(
            "fp_cache_evictions_total",
            "Block cache evictions",
            stats.evictions,
        );
        gauge("fp_cache_entries", "Live cached blocks", cache.len() as u64);
        gauge(
            "fp_cache_bytes",
            "Cached bytes in memory",
            cache.bytes() as u64,
        );
        gauge(
            "fp_cache_recovered_entries",
            "Entries replayed from the persistent store at startup",
            cache.recovery().recovered_entries as u64,
        );
        if let Some(persist) = cache.persist_stats() {
            gauge(
                "fp_cache_persist_appended_records_total",
                "Records appended to the segment log",
                persist.appended_records,
            );
            gauge(
                "fp_cache_persist_io_errors_total",
                "Segment log I/O errors",
                persist.io_errors,
            );
            gauge(
                "fp_cache_persist_wedged",
                "1 when the log writer has stopped (in-memory service continues)",
                u64::from(persist.wedged),
            );
        }
        gauge(
            "fp_server_inflight_jobs",
            "Jobs admitted and not yet finished",
            self.inflight(),
        );
        gauge(
            "fp_server_shed_total",
            "Requests shed with the overloaded status",
            self.shed(),
        );
        gauge(
            "fp_netlist_requests_total",
            "Wirelength-aware optimize requests served",
            self.netlist_requests(),
        );
        gauge(
            "fp_netlist_pareto_requests_total",
            "Pareto-front requests served",
            self.pareto_requests(),
        );
        gauge(
            "fp_netlist_pareto_points_total",
            "Non-dominated points returned across pareto replies",
            self.pareto_points(),
        );
        gauge(
            "fp_server_anneal_requests_total",
            "Multi-start annealing requests served",
            self.anneal_requests(),
        );
        if let Some(exec) = self.executor() {
            gauge(
                "fp_exec_threads",
                "Worker threads in the job executor",
                exec.threads() as u64,
            );
            gauge(
                "fp_exec_queue_depth",
                "Jobs queued in the executor and not yet started",
                exec.queue_depth() as u64,
            );
            gauge(
                "fp_exec_active_jobs",
                "Jobs the executor is running right now",
                exec.active() as u64,
            );
            gauge(
                "fp_exec_completed_total",
                "Jobs the executor has finished",
                exec.completed(),
            );
            gauge(
                "fp_exec_shed_total",
                "Jobs shed at the executor level",
                exec.shed_total(),
            );
        }
        out.push_str("# TYPE fp_server_request_duration_seconds histogram\n");
        for (kind, name) in MethodKind::ALL {
            self.latency[kind as usize].render_prometheus(
                "fp_server_request_duration_seconds",
                name,
                &mut out,
            );
        }
        out
    }
}

/// A rendered response line plus its routing metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// The response document (no trailing newline).
    pub json: String,
    /// The response's status code.
    pub status: u8,
    /// `true` when the request asked the server to drain and stop.
    pub shutdown: bool,
}

fn response_head(id: Option<&RequestId>, line_no: u64, status: u8) -> JsonObj {
    let mut obj = JsonObj::new();
    if let Some(id) = id {
        obj.raw("id", &id.to_json());
    }
    obj.u64("line", line_no);
    obj.u64("status", u64::from(status));
    obj
}

/// Renders the error response for an unparsable or invalid request line.
#[must_use]
pub fn error_reply(line_no: u64, error: &RequestError) -> Reply {
    let mut obj;
    match error {
        RequestError::Json(e) => {
            obj = response_head(None, line_no, STATUS_BAD_REQUEST);
            obj.u64("col", e.col as u64);
            obj.str("error", &format!("bad JSON: {}", e.message));
        }
        RequestError::Bad(id, message) => {
            obj = response_head(id.as_ref(), line_no, STATUS_BAD_REQUEST);
            obj.str("error", message);
        }
        RequestError::UnsupportedProto(id, requested) => {
            obj = response_head(id.as_ref(), line_no, STATUS_BAD_REQUEST);
            obj.u64("proto", PROTO_VERSION);
            obj.u64("requested_proto", *requested);
            obj.str(
                "error",
                &format!(
                    "unsupported protocol version {requested} (this server speaks proto {PROTO_VERSION})"
                ),
            );
        }
    }
    Reply {
        json: obj.finish(),
        status: STATUS_BAD_REQUEST,
        shutdown: false,
    }
}

/// Extracts the request id from a raw line best-effort, for replies
/// built without fully parsing the request (shed / timed-out lines).
fn best_effort_id(line: &str) -> Option<RequestId> {
    match parse_json(line).ok()?.get("id")? {
        Json::Num(n) => Some(RequestId::Num(*n)),
        Json::Str(s) => Some(RequestId::Str(s.clone())),
        _ => None,
    }
}

/// Renders the structured [`STATUS_OVERLOADED`] reply for a request the
/// server sheds instead of queueing. The raw line is parsed best-effort
/// only to echo its `id`; the request was never executed, so the client
/// may safely retry after backing off. `reason` is a short machine-
/// readable tag (`"queue_full"`, `"queue_deadline"`).
#[must_use]
pub fn shed_reply(line: &str, line_no: u64, reason: &str) -> Reply {
    let id = best_effort_id(line);
    let mut obj = response_head(id.as_ref(), line_no, STATUS_OVERLOADED);
    obj.bool("overloaded", true);
    obj.str("reason", reason);
    obj.str("error", "server overloaded; request shed before execution");
    Reply {
        json: obj.finish(),
        status: STATUS_OVERLOADED,
        shutdown: false,
    }
}

/// Renders the clean status reply a connection receives when it sat
/// idle past the server's read deadline. Informational: no request was
/// in flight, the server is simply reclaiming the connection.
#[must_use]
pub fn idle_timeout_reply(idle_ms: u64) -> Reply {
    let mut obj = JsonObj::new();
    obj.u64("status", u64::from(STATUS_BAD_REQUEST));
    obj.str("timeout", "idle");
    obj.u64("idle_ms", idle_ms);
    obj.str("error", "connection idle past the read deadline; closing");
    Reply {
        json: obj.finish(),
        status: STATUS_BAD_REQUEST,
        shutdown: false,
    }
}

fn load_serve_instance(req: &OptimizeRequest) -> Result<FloorplanInstance, Reply> {
    // Reply here is a template without id/line; callers re-head it.
    if let Some(name) = &req.builtin {
        let bench = match name.trim_start_matches('@') {
            "fig1" => generators::fig1(),
            "fp1" => generators::fp1(),
            "fp2" => generators::fp2(),
            "fp3" => generators::fp3(),
            "fp4" => generators::fp4(),
            "ami33" => {
                let (bench, library) = generators::ami33_like();
                return Ok(FloorplanInstance {
                    name: bench.name,
                    tree: bench.tree,
                    library,
                });
            }
            "ami49" => {
                let (bench, library) = generators::ami49_like();
                return Ok(FloorplanInstance {
                    name: bench.name,
                    tree: bench.tree,
                    library,
                });
            }
            other => {
                let mut obj = JsonObj::new();
                obj.str(
                    "error",
                    &format!("unknown builtin `{other}` (fig1, fp1..fp4, ami33, ami49)"),
                );
                return Err(Reply {
                    json: obj.finish(),
                    status: STATUS_BAD_INPUT,
                    shutdown: false,
                });
            }
        };
        let library = generators::module_library(&bench.tree, req.n, req.seed);
        Ok(FloorplanInstance {
            name: bench.name,
            tree: bench.tree,
            library,
        })
    } else if let Some(text) = &req.instance {
        parse_instance(text).map_err(|e| {
            let mut obj = JsonObj::new();
            obj.u64("instance_line", e.line as u64);
            obj.u64("instance_col", e.col as u64);
            obj.str("error", &format!("bad instance: {e}"));
            Reply {
                json: obj.finish(),
                status: STATUS_BAD_INPUT,
                shutdown: false,
            }
        })
    } else {
        let mut obj = JsonObj::new();
        obj.str("error", "`optimize` needs `builtin` or `instance`");
        Err(Reply {
            json: obj.finish(),
            status: STATUS_BAD_REQUEST,
            shutdown: false,
        })
    }
}

/// Loads the request's netlist (inline `.fpn` or generated), if any.
/// The error is a reply template without id/line, like
/// [`load_serve_instance`]'s.
fn load_serve_netlist(
    req: &OptimizeRequest,
    instance: &FloorplanInstance,
) -> Result<Option<Netlist>, Reply> {
    if let Some(text) = &req.netlist {
        parse_netlist(text).map(Some).map_err(|e| {
            let mut obj = JsonObj::new();
            obj.u64("netlist_line", e.line as u64);
            obj.u64("netlist_col", e.col as u64);
            obj.str("error", &format!("bad netlist: {e}"));
            Reply {
                json: obj.finish(),
                status: STATUS_BAD_INPUT,
                shutdown: false,
            }
        })
    } else if let Some(nets) = req.nets {
        Ok(Some(random_netlist(&instance.library, nets, req.net_seed)))
    } else {
        Ok(None)
    }
}

fn bad_netlist_reply(message: String) -> Reply {
    let mut obj = JsonObj::new();
    obj.str("error", &message);
    Reply {
        json: obj.finish(),
        status: STATUS_BAD_INPUT,
        shutdown: false,
    }
}

/// Re-heads a reply template (error body without id/line) with the
/// response envelope.
fn rehead(id: Option<&RequestId>, line_no: u64, template: &Reply) -> Reply {
    let mut obj = response_head(id, line_no, template.status);
    let inner = template
        .json
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .unwrap_or_default();
    if !inner.is_empty() {
        obj.raw_members(inner);
    }
    Reply {
        json: obj.finish(),
        status: template.status,
        shutdown: false,
    }
}

fn config_for(
    req: &OptimizeRequest,
    cancel: Option<CancelToken>,
    default_threads: usize,
) -> OptimizeConfig {
    let mut config = OptimizeConfig::default()
        .with_objective(req.objective)
        .with_auto_rescue(req.auto_rescue)
        .with_threads(req.threads.unwrap_or(default_threads))
        .with_cancel(cancel);
    if let Some(outline) = req.outline {
        config = config.with_outline(outline);
    }
    if let Some(limit) = req.memory {
        config = config.with_memory_limit(Some(limit));
    }
    if let Some(ms) = req.deadline_ms {
        config = config.with_deadline(Some(Duration::from_millis(ms)));
    }
    if let Some(k1) = req.k1 {
        config = config.with_r_selection(k1);
    }
    if let Some(k2) = req.k2 {
        let mut policy = LReductionPolicy::new(k2).with_theta(req.theta);
        if let Some(s) = req.prefilter {
            policy = policy.with_prefilter(s);
        }
        config = config.with_l_selection(policy);
    }
    config
}

fn optimize_reply(
    id: Option<&RequestId>,
    line_no: u64,
    req: &OptimizeRequest,
    state: &ServeState,
    cancel: Option<CancelToken>,
) -> Reply {
    let instance = match load_serve_instance(req) {
        Ok(instance) => instance,
        Err(template) => return rehead(id, line_no, &template),
    };
    let netlist = match load_serve_netlist(req, &instance) {
        Ok(netlist) => netlist,
        Err(template) => return rehead(id, line_no, &template),
    };
    let bound = match &netlist {
        Some(netlist) => match netlist.bind(&instance.library) {
            Ok(bound) => Some(bound),
            Err(e) => {
                return rehead(
                    id,
                    line_no,
                    &bad_netlist_reply(format!("netlist does not bind the instance: {e}")),
                )
            }
        },
        None => None,
    };
    let mut config = config_for(req, cancel, state.default_threads());
    if let Some(netlist) = &netlist {
        // Wirelength-aware results never share cache addresses with
        // area-only runs of the same policy.
        config = config.with_extra_salt(netlist_fingerprint(netlist));
    }
    // With an executor attached, intra-request tree parallelism is
    // leased from its spare capacity: the run may execute on fewer
    // threads than requested when the pool is busy, but the echoed
    // `threads`/`auto_serial` below stay request-resolved — results are
    // byte-identical at any thread count, so leasing changes speed only.
    let lease = state.executor().map(|exec| {
        let wanted = config.resolve_for(&instance.tree).threads;
        exec.lease(wanted.saturating_sub(1))
    });
    let run_config = match &lease {
        Some(lease) => {
            let wanted = config.resolve_for(&instance.tree).threads;
            config.clone().with_threads(wanted.min(1 + lease.granted()))
        }
        None => config.clone(),
    };
    // Every optimize request runs under a subscribed tracer: the drained
    // summary feeds the reply's `trace_summary` and the server-lifetime
    // metrics registry (so the two always reconcile).
    let tracer = Tracer::new();
    let optimizer = Optimizer::new(&instance.tree, &instance.library)
        .config(&run_config)
        .cache(state.cache())
        .tracer(&tracer);
    let result = match &bound {
        Some(bound) => {
            state.netlist_requests.fetch_add(1, Ordering::Relaxed);
            let objective = match (req.max_hpwl, req.alpha) {
                (Some(max_hpwl), _) => CompositeObjective::epsilon(u128::from(max_hpwl)),
                (None, alpha) => CompositeObjective::weighted(alpha.unwrap_or(1.0)),
            };
            optimizer.run_composite(bound, objective).map(|multi| {
                let rescued = !multi.outcome.stats.degradations.is_empty();
                (
                    RunOutcome {
                        outcome: multi.outcome,
                        rescued,
                    },
                    Some(multi.hpwl),
                )
            })
        }
        None => optimizer.run().map(|run| (run, None)),
    };
    let summary = tracer.drain().summary();
    state.metrics().absorb(&summary);
    // `resolve_for` folds in the tree-aware auto-serial decision, so the
    // echoed thread count is the one the run actually executed with.
    let auto_serial = config.auto_serial_for(instance.tree.module_count());
    let eff = config.resolve_for(&instance.tree);
    match result {
        Ok((RunOutcome { outcome, rescued }, hpwl)) => {
            let mut obj = response_head(id, line_no, STATUS_OK);
            obj.str("instance", &instance.name);
            obj.u64("threads", eff.threads as u64);
            obj.bool("auto_serial", auto_serial);
            if let Some(l) = &eff.l_policy {
                obj.u64("lred_workers", l.resolved_workers() as u64);
            }
            obj.u128("area", outcome.area);
            obj.u64("width", outcome.root_impl.w);
            obj.u64("height", outcome.root_impl.h);
            if let Some(hpwl) = hpwl {
                obj.u128("hpwl", hpwl);
                if let Some(max_hpwl) = req.max_hpwl {
                    obj.u64("max_hpwl", max_hpwl);
                } else {
                    obj.raw("alpha", &format!("{}", req.alpha.unwrap_or(1.0)));
                }
            }
            obj.u64("elapsed_ms", outcome.stats.elapsed.as_millis() as u64);
            obj.u64("peak_impls", outcome.stats.peak_impls as u64);
            obj.u64("generated", outcome.stats.generated);
            obj.u64("cache_hits", outcome.stats.cache_hits as u64);
            obj.u64("cache_misses", outcome.stats.cache_misses as u64);
            obj.bool("rescued", rescued);
            obj.u64("degradations", outcome.stats.degradations.len() as u64);
            if req.layout {
                // Realize the winning assignment and polygonize its dead
                // space. Realization can only fail on instances the run
                // itself would have rejected; surface that as a field
                // rather than panicking.
                let mut section = JsonObj::new();
                match fp_tree::layout::realize(
                    &instance.tree,
                    &instance.library,
                    &outcome.assignment,
                ) {
                    Ok(layout) => {
                        let ws = layout.whitespace();
                        section.u128("dead_space", layout.dead_space());
                        section.u64("whitespace_regions", ws.count() as u64);
                        section.u128("whitespace_total", ws.total);
                        section.u128("whitespace_largest", ws.largest());
                        let mut areas = String::from("[");
                        for (i, region) in ws.regions.iter().enumerate() {
                            if i > 0 {
                                areas.push(',');
                            }
                            areas.push_str(&region.area.to_string());
                        }
                        areas.push(']');
                        section.raw("region_areas", &areas);
                        section.u64("outline_rings", layout.polygonize().outlines.len() as u64);
                    }
                    Err(e) => {
                        section.str("error", &format!("layout did not realize: {e}"));
                    }
                }
                obj.raw("layout", &section.finish());
            }
            obj.raw("trace_summary", &summary.to_json());
            Reply {
                json: obj.finish(),
                status: STATUS_OK,
                shutdown: false,
            }
        }
        Err(e) => {
            let status = status_for(&e);
            let mut obj = response_head(id, line_no, status);
            obj.str("error", &e.to_string());
            obj.raw("trace_summary", &summary.to_json());
            Reply {
                json: obj.finish(),
                status,
                shutdown: false,
            }
        }
    }
}

fn pareto_reply(
    id: Option<&RequestId>,
    line_no: u64,
    req: &OptimizeRequest,
    state: &ServeState,
    cancel: Option<CancelToken>,
) -> Reply {
    let instance = match load_serve_instance(req) {
        Ok(instance) => instance,
        Err(template) => return rehead(id, line_no, &template),
    };
    let netlist = match load_serve_netlist(req, &instance) {
        Ok(Some(netlist)) => netlist,
        Ok(None) => {
            return rehead(
                id,
                line_no,
                &bad_netlist_reply("`pareto` needs `netlist` or `nets`".to_owned()),
            )
        }
        Err(template) => return rehead(id, line_no, &template),
    };
    let bound = match netlist.bind(&instance.library) {
        Ok(bound) => bound,
        Err(e) => {
            return rehead(
                id,
                line_no,
                &bad_netlist_reply(format!("netlist does not bind the instance: {e}")),
            )
        }
    };
    let config = config_for(req, cancel, state.default_threads())
        .with_extra_salt(netlist_fingerprint(&netlist));
    // Same lease discipline as `optimize_reply`: borrowed pool capacity
    // caps the actual thread count, never the echoed one.
    let lease = state.executor().map(|exec| {
        let wanted = config.resolve_for(&instance.tree).threads;
        exec.lease(wanted.saturating_sub(1))
    });
    let run_config = match &lease {
        Some(lease) => {
            let wanted = config.resolve_for(&instance.tree).threads;
            config.clone().with_threads(wanted.min(1 + lease.granted()))
        }
        None => config.clone(),
    };
    let tracer = Tracer::new();
    let result = Optimizer::new(&instance.tree, &instance.library)
        .config(&run_config)
        .cache(state.cache())
        .tracer(&tracer)
        .run_pareto(&bound);
    let summary = tracer.drain().summary();
    state.metrics().absorb(&summary);
    state.pareto_requests.fetch_add(1, Ordering::Relaxed);
    let auto_serial = config.auto_serial_for(instance.tree.module_count());
    let eff = config.resolve_for(&instance.tree);
    match result {
        Ok(pareto) => {
            state
                .pareto_points
                .fetch_add(pareto.front.len() as u64, Ordering::Relaxed);
            // Hypervolume against a reference 10% beyond the worst
            // front point on each axis (deterministic, scale-free).
            let ref_area = pareto.front.iter().map(|p| p.area).max().unwrap_or(0) * 11 / 10 + 1;
            let ref_hpwl = pareto.front.iter().map(|p| p.hpwl).max().unwrap_or(0) * 11 / 10 + 1;
            let hv = hypervolume(&pareto.front, ref_area, ref_hpwl);
            let mut front_json = String::from("[");
            for (i, p) in pareto.front.iter().enumerate() {
                if i > 0 {
                    front_json.push(',');
                }
                let mut point = JsonObj::new();
                point.u64("index", p.index as u64);
                point.u64("width", p.width);
                point.u64("height", p.height);
                point.u128("area", p.area);
                point.u128("hpwl", p.hpwl);
                point.bool("fits", p.fits);
                front_json.push_str(&point.finish());
            }
            front_json.push(']');
            let mut obj = response_head(id, line_no, STATUS_OK);
            obj.str("instance", &instance.name);
            obj.u64("threads", eff.threads as u64);
            obj.bool("auto_serial", auto_serial);
            obj.u64("front_size", pareto.front.len() as u64);
            obj.u64("evaluated", pareto.evaluated as u64);
            obj.raw("front", &front_json);
            obj.raw("hypervolume", &format!("{hv:.6}"));
            obj.raw("trace_summary", &summary.to_json());
            Reply {
                json: obj.finish(),
                status: STATUS_OK,
                shutdown: false,
            }
        }
        Err(e) => {
            let status = status_for(&e);
            let mut obj = response_head(id, line_no, status);
            obj.str("error", &e.to_string());
            obj.raw("trace_summary", &summary.to_json());
            Reply {
                json: obj.finish(),
                status,
                shutdown: false,
            }
        }
    }
}

fn anneal_reply(
    id: Option<&RequestId>,
    line_no: u64,
    req: &AnnealRequest,
    state: &ServeState,
) -> Reply {
    let Some(backend) = state.anneal_backend.clone() else {
        let mut obj = JsonObj::new();
        obj.str(
            "error",
            "this server has no annealing backend registered (`anneal` unsupported)",
        );
        let template = Reply {
            json: obj.finish(),
            status: STATUS_BAD_REQUEST,
            shutdown: false,
        };
        return rehead(id, line_no, &template);
    };
    let instance = match load_serve_instance(&req.base) {
        Ok(instance) => instance,
        Err(template) => return rehead(id, line_no, &template),
    };
    // Chains parallelize at the job level on the executor; the inner
    // optimizer keeps the request's own thread setting. No cancel
    // token: annealing jobs run to completion (`deadline_ms` is
    // rejected at parse time).
    let config = config_for(&req.base, None, state.default_threads());
    let started = Instant::now();
    let job = AnnealJob {
        library: &instance.library,
        chains: req.chains,
        moves: req.moves,
        seed: req.anneal_seed,
        optimizer: config,
        cache: state.cache(),
        executor: state.executor().map(|e| &**e),
    };
    let outcome = backend(&job);
    state.anneal_requests.fetch_add(1, Ordering::Relaxed);
    let mut chain_areas = String::from("[");
    for (i, area) in outcome.chain_areas.iter().enumerate() {
        if i > 0 {
            chain_areas.push(',');
        }
        chain_areas.push_str(&area.to_string());
    }
    chain_areas.push(']');
    let mut obj = response_head(id, line_no, STATUS_OK);
    obj.str("instance", &instance.name);
    obj.u64("chains", req.chains as u64);
    obj.u64("moves", req.moves as u64);
    obj.u64("anneal_seed", req.anneal_seed);
    obj.u128("area", outcome.best_area);
    obj.u128("initial_area", outcome.initial_area);
    obj.u64("best_chain", outcome.best_chain as u64);
    obj.raw("chain_areas", &chain_areas);
    obj.u64("accepted", outcome.accepted);
    obj.u64("proposed", outcome.proposed);
    obj.str("expression", &outcome.expression);
    obj.u64("elapsed_ms", started.elapsed().as_millis() as u64);
    Reply {
        json: obj.finish(),
        status: STATUS_OK,
        shutdown: false,
    }
}

impl JsonObj {
    /// Splices pre-serialized members (used to re-head reply templates).
    pub fn raw_members(&mut self, members: &str) -> &mut Self {
        if !self.buf.is_empty() && !members.is_empty() {
            self.buf.push(',');
        }
        self.buf.push_str(members);
        self
    }
}

/// Executes a parsed request. `cancel` is the per-request cancellation
/// token the server's deadline watchdog fires; the request's own
/// `deadline_ms` is additionally enforced by the governor's wall clock
/// from run start.
#[must_use]
pub fn execute(
    request: &Request,
    line_no: u64,
    state: &ServeState,
    cancel: Option<CancelToken>,
) -> Reply {
    let started = Instant::now();
    let kind = MethodKind::of(&request.method);
    let reply = execute_inner(request, line_no, state, cancel);
    state.observe_latency(kind, started.elapsed());
    reply
}

fn execute_inner(
    request: &Request,
    line_no: u64,
    state: &ServeState,
    cancel: Option<CancelToken>,
) -> Reply {
    state.requests.fetch_add(1, Ordering::Relaxed);
    let id = request.id.as_ref();
    match &request.method {
        Method::Ping => {
            let mut obj = response_head(id, line_no, STATUS_OK);
            obj.u64("proto", PROTO_VERSION);
            obj.bool("pong", true);
            Reply {
                json: obj.finish(),
                status: STATUS_OK,
                shutdown: false,
            }
        }
        Method::Stats => {
            let stats = shared_cache_stats(state.cache());
            let cache = state.cache();
            let (bytes, entries, budget) = (cache.bytes(), cache.len(), cache.budget_bytes());
            let mut obj = response_head(id, line_no, STATUS_OK);
            obj.u64("proto", PROTO_VERSION);
            obj.u64("requests", state.requests());
            obj.u64("netlist_requests", state.netlist_requests());
            obj.u64("pareto_requests", state.pareto_requests());
            obj.u64("pareto_points", state.pareto_points());
            obj.u64(
                "threads",
                OptimizeConfig::default()
                    .with_threads(state.default_threads())
                    .resolved_threads() as u64,
            );
            obj.u64("cache_hits", stats.hits);
            obj.u64("cache_misses", stats.misses);
            obj.u64("cache_evictions", stats.evictions);
            obj.u64("cache_insertions", stats.insertions);
            obj.u64("cache_entries", entries as u64);
            obj.u64("cache_bytes", bytes as u64);
            obj.u64("cache_budget_bytes", budget as u64);
            obj.bool("cache_persistent", cache.is_persistent());
            obj.u64(
                "cache_recovered_entries",
                cache.recovery().recovered_entries as u64,
            );
            if let Some(persist) = cache.persist_stats() {
                obj.u64("persist_appended_records", persist.appended_records);
                obj.u64("persist_rotations", persist.rotations);
                obj.u64("persist_compactions", persist.compactions);
                obj.u64("persist_io_errors", persist.io_errors);
                obj.u64("persist_dropped_records", persist.dropped_records);
                obj.bool("persist_wedged", persist.wedged);
            }
            obj.u64("inflight", state.inflight());
            obj.u64("max_inflight", state.max_inflight());
            obj.u64("shed", state.shed());
            obj.u64("anneal_requests", state.anneal_requests());
            if let Some(exec) = state.executor() {
                obj.u64("exec_threads", exec.threads() as u64);
                obj.u64("exec_queue_depth", exec.queue_depth() as u64);
                obj.u64("exec_active", exec.active() as u64);
                obj.u64("exec_completed", exec.completed());
                obj.u64("exec_shed", exec.shed_total());
            }
            obj.raw("latency", &state.latency_json());
            Reply {
                json: obj.finish(),
                status: STATUS_OK,
                shutdown: false,
            }
        }
        Method::Metrics => {
            let snapshot = state.metrics().snapshot();
            let mut obj = response_head(id, line_no, STATUS_OK);
            obj.u64("runs", snapshot.runs);
            obj.raw("totals", &snapshot.totals.to_json());
            obj.str("prometheus", &state.render_prometheus());
            Reply {
                json: obj.finish(),
                status: STATUS_OK,
                shutdown: false,
            }
        }
        Method::Shutdown => {
            let mut obj = response_head(id, line_no, STATUS_OK);
            obj.bool("draining", true);
            Reply {
                json: obj.finish(),
                status: STATUS_OK,
                shutdown: true,
            }
        }
        Method::Optimize(req) => optimize_reply(id, line_no, req, state, cancel),
        Method::Pareto(req) => pareto_reply(id, line_no, req, state, cancel),
        Method::Anneal(req) => anneal_reply(id, line_no, req, state),
    }
}

/// Parses and executes one raw request line — the single entry point the
/// server workers and the CLI `--session` replay mode share.
#[must_use]
pub fn handle_line(
    line: &str,
    line_no: u64,
    state: &ServeState,
    cancel: Option<CancelToken>,
) -> Reply {
    match parse_request(line) {
        Ok(request) => execute(&request, line_no, state, cancel),
        Err(e) => error_reply(line_no, &e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip_basics() {
        let doc = parse_json(r#"{"a": 1, "b": [true, null, "x\n"], "c": -2.5}"#).expect("parses");
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("c").and_then(Json::as_f64), Some(-2.5));
        match doc.get("b") {
            Some(Json::Arr(items)) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[0].as_bool(), Some(true));
                assert_eq!(items[2].as_str(), Some("x\n"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn json_errors_carry_columns() {
        let e = parse_json(r#"{"a": }"#).expect_err("bad");
        assert_eq!(e.col, 7);
        let e = parse_json("{\"a\": 1,}").expect_err("bad");
        assert_eq!(e.col, 9);
        let e = parse_json("nul").expect_err("bad");
        assert_eq!(e.col, 1);
        let e = parse_json("{\"a\": 1} trailing").expect_err("bad");
        assert_eq!(e.col, 10);
    }

    #[test]
    fn request_parsing_and_validation() {
        let req = parse_request(r#"{"id": 7, "method": "ping"}"#).expect("valid");
        assert_eq!(req.id, Some(RequestId::Num(7.0)));
        assert_eq!(req.method, Method::Ping);

        let req = parse_request(
            r#"{"method": "optimize", "builtin": "fp1", "k1": 8, "deadline_ms": 50}"#,
        )
        .expect("valid");
        match req.method {
            Method::Optimize(o) => {
                assert_eq!(o.builtin.as_deref(), Some("fp1"));
                assert_eq!(o.k1, Some(8));
                assert_eq!(o.deadline_ms, Some(50));
            }
            other => panic!("unexpected {other:?}"),
        }

        match parse_request(r#"{"method": "frobnicate"}"#) {
            Err(RequestError::Bad(_, msg)) => assert!(msg.contains("unknown method")),
            other => panic!("unexpected {other:?}"),
        }
        match parse_request(r#"{"method": "optimize"}"#) {
            Err(RequestError::Bad(_, msg)) => assert!(msg.contains("builtin")),
            other => panic!("unexpected {other:?}"),
        }
        match parse_request("{\"method\": \"ping\"") {
            Err(RequestError::Json(e)) => assert!(e.col > 0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn end_to_end_optimize_reply_and_cache_reuse() {
        let state = ServeState::new(64 << 20);
        let line = r#"{"id": 1, "method": "optimize", "builtin": "fig1", "n": 4}"#;
        let cold = handle_line(line, 1, &state, None);
        assert_eq!(cold.status, STATUS_OK, "{}", cold.json);
        assert!(cold.json.contains("\"area\":"));
        let warm = handle_line(line, 2, &state, None);
        assert_eq!(warm.status, STATUS_OK);
        // Same request: every join served from cache on the warm pass.
        assert!(warm.json.contains("\"cache_misses\":0"), "{}", warm.json);
        // Identical results either way.
        let area = |json: &str| {
            json.split("\"area\":")
                .nth(1)
                .and_then(|s| s.split(',').next())
                .map(str::to_owned)
        };
        assert_eq!(area(&cold.json), area(&warm.json));
    }

    #[test]
    fn protocol_version_negotiation() {
        // Omitted `proto` defaults to v1; explicit v1 is identical.
        assert_eq!(
            parse_request(r#"{"method": "ping"}"#).expect("valid").proto,
            PROTO_VERSION
        );
        let pinned = parse_request(r#"{"id": 1, "proto": 1, "method": "ping"}"#).expect("valid");
        assert_eq!(pinned.proto, 1);
        // Unknown versions get a structured status-2 reply naming both
        // versions.
        let err = parse_request(r#"{"id": 9, "proto": 2, "method": "ping"}"#).expect_err("v2");
        assert_eq!(
            err,
            RequestError::UnsupportedProto(Some(RequestId::Num(9.0)), 2)
        );
        let reply = error_reply(4, &err);
        assert_eq!(reply.status, STATUS_BAD_REQUEST);
        assert!(reply.json.contains("\"id\":9"), "{}", reply.json);
        assert!(reply.json.contains("\"proto\":1"), "{}", reply.json);
        assert!(
            reply.json.contains("\"requested_proto\":2"),
            "{}",
            reply.json
        );
        // Malformed `proto` values are plain bad requests.
        for line in [
            r#"{"proto": 0, "method": "ping"}"#,
            r#"{"proto": -1, "method": "ping"}"#,
            r#"{"proto": "one", "method": "ping"}"#,
        ] {
            assert!(
                matches!(parse_request(line), Err(RequestError::Bad(_, _))),
                "{line}"
            );
        }
    }

    #[test]
    fn ping_and_stats_echo_proto() {
        let state = ServeState::new(1 << 20);
        let pong = handle_line(r#"{"id": 1, "method": "ping"}"#, 1, &state, None);
        assert_eq!(pong.status, STATUS_OK);
        assert!(pong.json.contains("\"proto\":1"), "{}", pong.json);
        assert!(pong.json.contains("\"pong\":true"), "{}", pong.json);
        let stats = handle_line(r#"{"method": "stats"}"#, 2, &state, None);
        assert!(stats.json.contains("\"proto\":1"), "{}", stats.json);
        // v1 pinned requests execute exactly like unpinned ones.
        let pinned = handle_line(
            r#"{"id": 1, "proto": 1, "method": "ping"}"#,
            1,
            &state,
            None,
        );
        assert_eq!(pinned.json, pong.json);
        // Unknown versions surface through the full line handler too.
        let v9 = handle_line(r#"{"proto": 9, "method": "ping"}"#, 3, &state, None);
        assert_eq!(v9.status, STATUS_BAD_REQUEST);
        assert!(v9.json.contains("\"requested_proto\":9"), "{}", v9.json);
    }

    #[test]
    fn layout_field_attaches_whitespace_analytics() {
        let state = ServeState::new(16 << 20);
        let line = r#"{"id": 1, "method": "optimize", "builtin": "fig1", "n": 4, "layout": true}"#;
        let reply = handle_line(line, 1, &state, None);
        assert_eq!(reply.status, STATUS_OK, "{}", reply.json);
        assert!(reply.json.contains("\"layout\":{"), "{}", reply.json);
        for field in [
            "\"dead_space\":",
            "\"whitespace_regions\":",
            "\"whitespace_total\":",
            "\"whitespace_largest\":",
            "\"region_areas\":[",
            "\"outline_rings\":",
        ] {
            assert!(
                reply.json.contains(field),
                "{field} missing: {}",
                reply.json
            );
        }
        // Without the flag the reply is unchanged (no layout section).
        let plain = handle_line(
            r#"{"id": 1, "method": "optimize", "builtin": "fig1", "n": 4}"#,
            2,
            &state,
            None,
        );
        assert!(!plain.json.contains("\"layout\""), "{}", plain.json);
        // `layout` rides `optimize` only.
        let pareto =
            parse_request(r#"{"method": "pareto", "builtin": "fig1", "nets": 5, "layout": true}"#);
        assert!(matches!(pareto, Err(RequestError::Bad(_, _))));
        let anneal = parse_request(r#"{"method": "anneal", "builtin": "fig1", "layout": true}"#);
        assert!(matches!(anneal, Err(RequestError::Bad(_, _))));
    }

    #[test]
    fn malformed_and_unknown_requests_report_positions() {
        let state = ServeState::new(1 << 20);
        let bad = handle_line("{\"method\": \"optimize\",, }", 3, &state, None);
        assert_eq!(bad.status, STATUS_BAD_REQUEST);
        assert!(bad.json.contains("\"line\":3"));
        assert!(bad.json.contains("\"col\":"));
        let unknown = handle_line(r#"{"id": "x", "method": "nope"}"#, 4, &state, None);
        assert_eq!(unknown.status, STATUS_BAD_REQUEST);
        assert!(unknown.json.contains("\"id\":\"x\""));
        assert!(unknown.json.contains("unknown method"));
    }

    #[test]
    fn bad_instance_reports_instance_position() {
        let state = ServeState::new(1 << 20);
        let line = r#"{"method": "optimize", "instance": "module a 0x3\ntree a"}"#;
        let reply = handle_line(line, 1, &state, None);
        assert_eq!(reply.status, STATUS_BAD_INPUT, "{}", reply.json);
        assert!(reply.json.contains("\"instance_line\":"), "{}", reply.json);
    }

    #[test]
    fn deadline_zero_trips_as_status_5() {
        let state = ServeState::new(1 << 20);
        let line = r#"{"method": "optimize", "builtin": "fp2", "n": 8, "deadline_ms": 0}"#;
        std::thread::sleep(Duration::from_millis(2));
        let reply = handle_line(line, 1, &state, None);
        assert_eq!(reply.status, STATUS_DEADLINE, "{}", reply.json);
    }

    #[test]
    fn cancelled_token_trips_as_status_5() {
        let state = ServeState::new(1 << 20);
        let token = CancelToken::new();
        token.cancel();
        let req = parse_request(r#"{"method": "optimize", "builtin": "fp1"}"#).expect("valid");
        let reply = execute(&req, 1, &state, Some(token));
        assert_eq!(reply.status, STATUS_DEADLINE, "{}", reply.json);
    }

    #[test]
    fn metrics_registry_reconciles_with_trace_summaries() {
        let state = ServeState::new(16 << 20);
        let line = r#"{"method": "optimize", "builtin": "fp1", "n": 6, "k1": 6}"#;
        let mut summed_joins = 0u64;
        let mut summed_hits = 0u64;
        let mut summed_selections = 0u64;
        for line_no in 1..=3 {
            let reply = handle_line(line, line_no, &state, None);
            assert_eq!(reply.status, STATUS_OK, "{}", reply.json);
            let doc = parse_json(&reply.json).expect("reply parses");
            let ts = doc.get("trace_summary").expect("reply has trace_summary");
            summed_joins += ts.get("joins").and_then(Json::as_u64).expect("joins");
            summed_hits += ts.get("cache_hits").and_then(Json::as_u64).expect("hits");
            for solver in ["selections_legacy", "selections_dense", "selections_monge"] {
                summed_selections += ts.get(solver).and_then(Json::as_u64).expect(solver);
            }
        }
        assert!(summed_joins > 0, "fp1 runs must trace join events");
        assert!(summed_selections > 0, "k1 runs must trace selections");
        assert!(summed_hits > 0, "warm repeats must trace cache hits");

        // The registry is the running sum of the per-reply summaries.
        let metrics = handle_line(r#"{"method": "metrics"}"#, 4, &state, None);
        assert_eq!(metrics.status, STATUS_OK, "{}", metrics.json);
        let doc = parse_json(&metrics.json).expect("metrics reply parses");
        assert_eq!(doc.get("runs").and_then(Json::as_u64), Some(3));
        let totals = doc.get("totals").expect("metrics reply has totals");
        assert_eq!(
            totals.get("joins").and_then(Json::as_u64),
            Some(summed_joins)
        );
        assert_eq!(
            totals.get("cache_hits").and_then(Json::as_u64),
            Some(summed_hits)
        );
        let prom = doc
            .get("prometheus")
            .and_then(Json::as_str)
            .expect("metrics reply has a Prometheus rendering");
        assert!(prom.contains("fp_runs_total 3"), "{prom}");
        assert!(
            prom.contains(&format!("fp_joins_total {summed_joins}")),
            "{prom}"
        );
    }

    #[test]
    fn optimize_reply_echoes_effective_config() {
        let state = ServeState::new(1 << 20);
        let line = r#"{"method": "optimize", "builtin": "fig1", "n": 3, "k2": 9, "threads": 1}"#;
        let reply = handle_line(line, 1, &state, None);
        assert_eq!(reply.status, STATUS_OK, "{}", reply.json);
        assert!(reply.json.contains("\"threads\":1"), "{}", reply.json);
        assert!(reply.json.contains("\"lred_workers\":"), "{}", reply.json);
    }

    #[test]
    fn shutdown_flags_drain() {
        let state = ServeState::new(1 << 20);
        let reply = handle_line(r#"{"method": "shutdown"}"#, 9, &state, None);
        assert!(reply.shutdown);
        assert_eq!(reply.status, STATUS_OK);
        let stats = handle_line(r#"{"method": "stats"}"#, 10, &state, None);
        assert!(stats.json.contains("\"requests\":2"));
    }

    #[test]
    fn admission_control_enforces_the_limit() {
        let state = ServeState::new(1 << 20).with_max_inflight(2);
        assert!(state.try_admit());
        assert!(state.try_admit());
        assert!(!state.try_admit(), "third admit exceeds the limit");
        assert_eq!(state.inflight(), 2);
        state.finish_job();
        assert!(state.try_admit(), "a freed slot is reusable");
        state.finish_job();
        state.finish_job();
        assert_eq!(state.inflight(), 0);

        // Unlimited (the default) never sheds.
        let open = ServeState::new(1 << 20);
        for _ in 0..100 {
            assert!(open.try_admit());
        }
        assert_eq!(open.inflight(), 100);
    }

    #[test]
    fn shed_reply_is_structured_and_echoes_the_id() {
        let reply = shed_reply(r#"{"id": 42, "method": "optimize"}"#, 7, "queue_full");
        assert_eq!(reply.status, STATUS_OVERLOADED);
        assert!(!reply.shutdown);
        assert!(reply.json.contains("\"id\":42"), "{}", reply.json);
        assert!(reply.json.contains("\"status\":7"), "{}", reply.json);
        assert!(reply.json.contains("\"overloaded\":true"), "{}", reply.json);
        assert!(
            reply.json.contains("\"reason\":\"queue_full\""),
            "{}",
            reply.json
        );

        // Unparsable line: still a well-formed reply, just no id.
        let anon = shed_reply("not json at all", 8, "queue_deadline");
        assert_eq!(anon.status, STATUS_OVERLOADED);
        assert!(!anon.json.contains("\"id\""), "{}", anon.json);
        assert!(anon.json.contains("\"overloaded\":true"), "{}", anon.json);
    }

    #[test]
    fn idle_timeout_reply_names_the_deadline() {
        let reply = idle_timeout_reply(1500);
        assert!(
            reply.json.contains("\"timeout\":\"idle\""),
            "{}",
            reply.json
        );
        assert!(reply.json.contains("\"idle_ms\":1500"), "{}", reply.json);
        assert!(!reply.shutdown);
    }

    #[test]
    fn stats_and_prometheus_carry_overload_and_cache_gauges() {
        let state = ServeState::new(1 << 20).with_max_inflight(1);
        assert!(state.try_admit());
        assert!(!state.try_admit());
        state.note_shed();
        let stats = handle_line(r#"{"method": "stats"}"#, 1, &state, None);
        assert!(stats.json.contains("\"inflight\":1"), "{}", stats.json);
        assert!(stats.json.contains("\"max_inflight\":1"), "{}", stats.json);
        assert!(stats.json.contains("\"shed\":1"), "{}", stats.json);
        assert!(
            stats.json.contains("\"cache_persistent\":false"),
            "{}",
            stats.json
        );
        let prom = state.render_prometheus();
        assert!(prom.contains("fp_server_inflight_jobs 1"), "{prom}");
        assert!(prom.contains("fp_server_shed_total 1"), "{prom}");
        assert!(prom.contains("fp_cache_recovered_entries 0"), "{prom}");
        state.finish_job();
    }

    #[test]
    fn wirelength_optimize_reports_hpwl_and_counts_requests() {
        let state = ServeState::new(16 << 20);
        let line = r#"{"id": 1, "method": "optimize", "builtin": "fp1", "nets": 12, "alpha": 0.5}"#;
        let reply = handle_line(line, 1, &state, None);
        assert_eq!(reply.status, STATUS_OK, "{}", reply.json);
        assert!(reply.json.contains("\"hpwl\":"), "{}", reply.json);
        assert!(reply.json.contains("\"alpha\":0.5"), "{}", reply.json);
        // alpha = 1.0 with a netlist still reports HPWL, and the area
        // matches the area-only reply byte-for-byte.
        let pure = handle_line(
            r#"{"id": 2, "method": "optimize", "builtin": "fp1", "nets": 12, "alpha": 1.0}"#,
            2,
            &state,
            None,
        );
        assert_eq!(pure.status, STATUS_OK, "{}", pure.json);
        let plain = handle_line(
            r#"{"id": 3, "method": "optimize", "builtin": "fp1"}"#,
            3,
            &state,
            None,
        );
        let area = |json: &str| {
            json.split("\"area\":")
                .nth(1)
                .and_then(|s| s.split(',').next())
                .map(str::to_owned)
        };
        assert_eq!(area(&pure.json), area(&plain.json));
        assert_eq!(state.netlist_requests.load(Ordering::Relaxed), 2);
        let prom = state.render_prometheus();
        assert!(prom.contains("fp_netlist_requests_total 2"), "{prom}");
    }

    #[test]
    fn pareto_reply_carries_a_nondominated_front() {
        let state = ServeState::new(16 << 20);
        let line = r#"{"id": 5, "method": "pareto", "builtin": "fp1", "nets": 15}"#;
        let reply = handle_line(line, 1, &state, None);
        assert_eq!(reply.status, STATUS_OK, "{}", reply.json);
        let doc = parse_json(&reply.json).expect("reply parses");
        let front = match doc.get("front") {
            Some(Json::Arr(points)) => points.clone(),
            other => panic!("unexpected front {other:?}"),
        };
        assert!(!front.is_empty());
        assert_eq!(
            doc.get("front_size").and_then(Json::as_u64),
            Some(front.len() as u64)
        );
        // Sorted ascending by area; HPWL must strictly improve as the
        // area worsens, or the point would be dominated.
        let mut last_area = 0u64;
        let mut last_hpwl = u64::MAX;
        for p in &front {
            let area = p.get("area").and_then(Json::as_u64).expect("area");
            let hpwl = p.get("hpwl").and_then(Json::as_u64).expect("hpwl");
            assert!(area >= last_area);
            if area > last_area && last_area > 0 {
                assert!(hpwl < last_hpwl, "{}", reply.json);
            }
            last_area = area;
            last_hpwl = hpwl;
        }
        let hv = doc
            .get("hypervolume")
            .and_then(Json::as_f64)
            .expect("hypervolume");
        assert!(hv > 0.0 && hv <= 1.0, "{hv}");
        assert_eq!(state.pareto_requests.load(Ordering::Relaxed), 1);
        assert_eq!(
            state.pareto_points.load(Ordering::Relaxed),
            front.len() as u64
        );
        let prom = state.render_prometheus();
        assert!(
            prom.contains("fp_netlist_pareto_requests_total 1"),
            "{prom}"
        );
    }

    #[test]
    fn netlist_request_validation_errors_are_structured() {
        let state = ServeState::new(1 << 20);
        // pareto without a netlist source is rejected at parse time.
        let reply = handle_line(r#"{"method": "pareto", "builtin": "fp1"}"#, 1, &state, None);
        assert_eq!(reply.status, STATUS_BAD_REQUEST, "{}", reply.json);
        assert!(reply.json.contains("netlist"), "{}", reply.json);
        // alpha outside [0, 1] is rejected.
        let reply = handle_line(
            r#"{"method": "optimize", "builtin": "fp1", "nets": 4, "alpha": 1.5}"#,
            2,
            &state,
            None,
        );
        assert_eq!(reply.status, STATUS_BAD_REQUEST, "{}", reply.json);
        // Malformed inline .fpn carries line/col coordinates.
        let reply = handle_line(
            r#"{"method": "optimize", "builtin": "fp1", "alpha": 0.5, "netlist": "module m0\nnet n1 m0.zzz"}"#,
            3,
            &state,
            None,
        );
        assert_eq!(reply.status, STATUS_BAD_INPUT, "{}", reply.json);
        assert!(reply.json.contains("\"netlist_line\":"), "{}", reply.json);
        assert!(reply.json.contains("\"netlist_col\":"), "{}", reply.json);
    }

    #[test]
    fn anneal_request_parsing_and_rejections() {
        let req = parse_request(
            r#"{"method": "anneal", "builtin": "fp1", "chains": 4, "moves": 500, "anneal_seed": 9}"#,
        )
        .expect("valid");
        match req.method {
            Method::Anneal(a) => {
                assert_eq!(a.base.builtin.as_deref(), Some("fp1"));
                assert_eq!(a.chains, 4);
                assert_eq!(a.moves, 500);
                assert_eq!(a.anneal_seed, 9);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Defaults when the knobs are absent.
        let req = parse_request(r#"{"method": "anneal", "builtin": "fp1"}"#).expect("valid");
        match req.method {
            Method::Anneal(a) => {
                assert_eq!(a.chains, 1);
                assert_eq!(a.moves, 2_000);
                assert_eq!(a.anneal_seed, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Netlist, outline, and budget knobs are rejected loudly.
        for (line, field) in [
            (
                r#"{"method": "anneal", "builtin": "fp1", "nets": 4}"#,
                "nets",
            ),
            (
                r#"{"method": "anneal", "builtin": "fp1", "outline": "40x40"}"#,
                "outline",
            ),
            (
                r#"{"method": "anneal", "builtin": "fp1", "deadline_ms": 10}"#,
                "deadline_ms",
            ),
            (
                r#"{"method": "anneal", "builtin": "fp1", "memory": 1000}"#,
                "memory",
            ),
        ] {
            match parse_request(line) {
                Err(RequestError::Bad(_, msg)) => {
                    assert!(msg.contains(field), "{msg}");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        // Chain count bounds.
        assert!(parse_request(r#"{"method": "anneal", "builtin": "fp1", "chains": 0}"#).is_err());
        assert!(parse_request(r#"{"method": "anneal", "builtin": "fp1", "chains": 65}"#).is_err());
    }

    #[test]
    fn anneal_without_backend_is_a_bad_request() {
        let state = ServeState::new(1 << 20);
        let reply = handle_line(
            r#"{"id": 1, "method": "anneal", "builtin": "fp1"}"#,
            1,
            &state,
            None,
        );
        assert_eq!(reply.status, STATUS_BAD_REQUEST, "{}", reply.json);
        assert!(
            reply.json.contains("no annealing backend"),
            "{}",
            reply.json
        );
        assert_eq!(state.anneal_requests(), 0);
    }

    #[test]
    fn anneal_backend_reply_carries_the_outcome() {
        let state = ServeState::new(1 << 20).with_anneal_backend(Arc::new(|job: &AnnealJob| {
            assert_eq!(job.chains, 3);
            assert_eq!(job.moves, 250);
            assert_eq!(job.seed, 5);
            assert!(!job.library.is_empty());
            AnnealOutcome {
                best_area: 1234,
                initial_area: 2000,
                best_chain: 2,
                chain_areas: vec![1300, 1250, 1234],
                accepted: 42,
                proposed: 750,
                expression: "a b + c *".to_owned(),
            }
        }));
        let reply = handle_line(
            r#"{"id": 1, "method": "anneal", "builtin": "fp1", "chains": 3, "moves": 250, "anneal_seed": 5}"#,
            1,
            &state,
            None,
        );
        assert_eq!(reply.status, STATUS_OK, "{}", reply.json);
        assert!(reply.json.contains("\"area\":1234"), "{}", reply.json);
        assert!(
            reply.json.contains("\"initial_area\":2000"),
            "{}",
            reply.json
        );
        assert!(reply.json.contains("\"best_chain\":2"), "{}", reply.json);
        assert!(
            reply.json.contains("\"chain_areas\":[1300,1250,1234]"),
            "{}",
            reply.json
        );
        assert!(
            reply.json.contains("\"expression\":\"a b + c *\""),
            "{}",
            reply.json
        );
        assert_eq!(state.anneal_requests(), 1);
        // The stats reply and the exposition both carry the counter.
        let stats = handle_line(r#"{"method": "stats"}"#, 2, &state, None);
        assert!(
            stats.json.contains("\"anneal_requests\":1"),
            "{}",
            stats.json
        );
        assert!(state
            .render_prometheus()
            .contains("fp_server_anneal_requests_total 1"));
    }

    #[test]
    fn stats_reports_executor_gauges_and_method_latency() {
        let exec = Executor::new(1);
        let state = ServeState::new(1 << 20).with_executor(Arc::clone(&exec));
        let _ = handle_line(r#"{"method": "ping"}"#, 1, &state, None);
        let _ = handle_line(
            r#"{"id": 1, "method": "optimize", "builtin": "fig1", "n": 2}"#,
            2,
            &state,
            None,
        );
        let stats = handle_line(r#"{"method": "stats"}"#, 3, &state, None);
        assert!(stats.json.contains("\"exec_threads\":1"), "{}", stats.json);
        assert!(
            stats.json.contains("\"exec_queue_depth\":0"),
            "{}",
            stats.json
        );
        assert!(stats.json.contains("\"exec_active\":"), "{}", stats.json);
        // The latency digest counts the served methods per class.
        assert!(
            stats.json.contains("\"optimize\":{\"count\":1,\"p50_ms\":"),
            "{}",
            stats.json
        );
        assert!(
            stats.json.contains("\"anneal\":{\"count\":0"),
            "{}",
            stats.json
        );
        let prom = state.render_prometheus();
        assert!(prom.contains("fp_exec_threads 1"), "{prom}");
        assert!(prom.contains("fp_exec_queue_depth 0"), "{prom}");
        assert!(
            prom.contains(
                "fp_server_request_duration_seconds_bucket{method=\"optimize\",le=\"+Inf\"} 1"
            ),
            "{prom}"
        );
        assert!(
            prom.contains("fp_server_request_duration_seconds_count{method=\"control\"}"),
            "{prom}"
        );
        exec.shutdown();
    }

    #[test]
    fn leased_threads_never_change_the_echoed_config() {
        // A 1-thread executor has no spare capacity to lease, so the
        // run executes serially — but the reply still echoes the
        // request-resolved thread count (byte-identical replies at any
        // executor size/load).
        let exec = Executor::new(1);
        let leased = ServeState::new(1 << 20).with_executor(Arc::clone(&exec));
        let bare = ServeState::new(1 << 20);
        let line = r#"{"id": 1, "method": "optimize", "builtin": "fp1", "threads": 4}"#;
        let with_exec = handle_line(line, 1, &leased, None);
        let without = handle_line(line, 1, &bare, None);
        assert_eq!(with_exec.status, STATUS_OK, "{}", with_exec.json);
        // Identical echoed config and result fields in both replies
        // (on small trees `auto_serial` resolves the echo to 1 in both
        // states; either way it must not depend on the executor).
        for key in [
            "\"threads\":",
            "\"auto_serial\":",
            "\"area\":",
            "\"width\":",
            "\"height\":",
        ] {
            let field = |json: &str| {
                let start = json.find(key).expect(key);
                json[start..json[start..].find(',').map_or(json.len(), |c| start + c)].to_owned()
            };
            assert_eq!(field(&with_exec.json), field(&without.json), "{key}");
        }
        exec.shutdown();
    }
}
