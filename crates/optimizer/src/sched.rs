//! Tree-level parallel scheduler: work-stealing evaluation of the
//! restructured slicing tree with serial-identical results.
//!
//! The bottom-up pass has natural task parallelism: two sibling subtrees
//! share no data until their parent join consumes both. This module
//! levels the binary tree by its dependency structure and dispatches
//! *ready* nodes (leaves first, then joins whose children are built) to
//! a bounded pool of workers with per-worker deques plus a shared
//! injector — a hand-rolled work-stealing scheduler, since the build is
//! fully offline.
//!
//! Task granularity is subtree-aware: maximal subtrees below the
//! configured split threshold ([`OptimizeConfig::split_threshold`]) run
//! inline as one serial task — their post-order node range is
//! contiguous, so the task is a plain loop — while joins above the
//! threshold are individual tasks, and a steal sweep moves up to half
//! the victim's deque at once. Whole trees below the auto-serial bound
//! never reach this module (see [`OptimizeConfig::auto_serial_for`]).
//!
//! # The determinism contract
//!
//! `optimize*` results are **byte-identical at any thread count**. The
//! parallel pass guarantees that by construction plus replay:
//!
//! * Block *content* is schedule-independent: each join's output depends
//!   only on its children's lists, and every kernel is deterministic.
//! * Governor state is the schedule-dependent part (budget trips, fault
//!   ordinals, the rescue ladder). So workers do **local** accounting —
//!   per-block generated counts and transient peaks — and after a clean
//!   parallel pass the scheduler *replays the serial schedule* over
//!   those records: walking nodes in tree order, tracking the committed
//!   total, the generated ordinal, and the cache self-hit set exactly as
//!   the serial meter would. If the replay shows the serial run would
//!   have tripped anything (budget or fault plan), the parallel work is
//!   discarded wholesale and the untouched serial path re-runs from
//!   scratch — reproducing the rescue ladder, its [`DegradationEvent`]
//!   sequence, or its error byte-for-byte. Otherwise the replay yields
//!   the exact serial [`RunStats`] (peak, generated, cache counters).
//! * Cache stores are buffered and flushed in tree order only after the
//!   replay proves the run clean, so a trip-then-fallback run never
//!   publishes blocks the serial run would not have.
//! * Deadline and cancellation are *real-time* trips: a worker that
//!   observes one records it, raises the abort flag, and every in-flight
//!   join stops at its next poll. These cannot be schedule-deterministic
//!   (wall clocks aren't), which matches their serial semantics.
//!
//! In-flight, workers also run a conservative budget check (shared
//! committed total + local block) purely to bound overshoot; it never
//! decides the outcome — it only routes to the exact serial path.

use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use fp_memo::Fingerprint;
use fp_shape::JoinScratch;
use fp_trace::{PhaseName, TraceEvent, Tracer};
use fp_tree::restructure::{BinNode, BinaryTree};
use fp_tree::{FloorplanTree, ModuleLibrary};

use crate::cache::{policy_fingerprint, BlockCache};
use crate::engine::{
    build_join, cached_to_shapes, shapes_to_cached, trip_error, EffectivePolicies, Frontier,
    OptError, OptimizeConfig, RunStats, Shapes, TraceCtx,
};
use crate::governor::{CancelToken, FaultPlan, Governor, Trip, POLL_INTERVAL};

/// Below this node count the scheduling overhead cannot pay off; the
/// dispatcher falls through to the serial path (results are identical
/// either way — this is purely a performance heuristic). The engine
/// additionally auto-serializes whole trees below
/// `OptimizeConfig::split_threshold * AUTO_SERIAL_FACTOR` nodes before
/// ever reaching this module.
const MIN_PARALLEL_NODES: usize = 8;

/// Upper bound on tasks moved by one steal sweep: stealing half a long
/// deque amortizes the lock round-trip, but an unbounded grab would
/// starve the victim of the locality it built up.
const MAX_STEAL_BATCH: usize = 32;

/// Sentinel `Trip` a worker returns when it stops because a *peer*
/// tripped (or requested fallback). Never recorded, never surfaced.
const ABORT_WHAT: &str = "parallel scheduler abort";

fn abort_trip() -> Trip {
    Trip::Internal(ABORT_WHAT)
}

fn is_abort(trip: &Trip) -> bool {
    matches!(trip, Trip::Internal(what) if *what == ABORT_WHAT)
}

/// Locks a mutex, recovering the guard from a poisoned lock: scheduler
/// state stays usable even if a worker panicked (the engine is
/// panic-free, but the queues must never silently drop tasks).
fn lock_or_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Run-wide state shared by every worker.
struct SharedGov {
    /// The configured implementation budget.
    limit: Option<usize>,
    /// Final implementation counts of completed nodes (any order).
    committed: AtomicUsize,
    /// Raised on any trip or fallback: every worker stops at its next
    /// poll point.
    abort: AtomicBool,
    /// Raised when the exact serial path must decide the run instead.
    fallback: AtomicBool,
    /// The first *real* trip recorded (trip, block). Written before
    /// `abort` is raised, so peer-abort exits can never claim the slot.
    first_trip: Mutex<Option<(Trip, usize)>>,
    /// The run's epoch (deadlines are measured from here).
    start: Instant,
    deadline: Option<Duration>,
    cancel: Option<CancelToken>,
}

impl SharedGov {
    fn aborted(&self) -> bool {
        self.abort.load(Ordering::Acquire)
    }

    /// Routes the run to the serial path and stops every worker.
    fn request_fallback(&self) {
        self.fallback.store(true, Ordering::Release);
        self.abort.store(true, Ordering::Release);
    }

    /// Records a real trip (first writer wins), then stops every worker.
    fn record_trip(&self, trip: Trip, block: usize) {
        {
            let mut slot = lock_or_recover(&self.first_trip);
            if slot.is_none() {
                *slot = Some((trip, block));
            }
        }
        self.abort.store(true, Ordering::Release);
    }

    /// Abort/cancellation/deadline check, attributed to `block`.
    fn check_realtime(&self, block: usize) -> Result<(), Trip> {
        if self.aborted() {
            return Err(abort_trip());
        }
        if let Some(cancel) = &self.cancel {
            if cancel.is_cancelled() {
                let trip = Trip::Cancelled;
                self.record_trip(trip.clone(), block);
                return Err(trip);
            }
        }
        if let Some(deadline) = self.deadline {
            let elapsed = self.start.elapsed();
            if elapsed > deadline {
                let trip = Trip::Deadline { elapsed, deadline };
                self.record_trip(trip.clone(), block);
                return Err(trip);
            }
        }
        Ok(())
    }
}

/// Per-worker governor handed to the join kernels: local in-block
/// accounting (exactly mirroring the serial meter's per-block view) plus
/// shared-state polls on the serial path's cadence.
struct WorkerGov<'a> {
    shared: &'a SharedGov,
    /// The node under construction (trip attribution).
    block: usize,
    /// Current in-block live candidates (charges minus discards).
    live: usize,
    /// Maximum in-block live ever reached — the serial meter's transient
    /// peak contribution for this block.
    peak: usize,
    /// Candidates charged while building this block.
    generated: u64,
    calls: u64,
}

impl<'a> WorkerGov<'a> {
    fn new(shared: &'a SharedGov, block: usize) -> Self {
        WorkerGov {
            shared,
            block,
            live: 0,
            peak: 0,
            generated: 0,
            calls: 0,
        }
    }
}

impl Governor for WorkerGov<'_> {
    fn charge(&mut self, n: usize) -> Result<(), Trip> {
        if n == 0 {
            return Ok(());
        }
        self.live += n;
        self.generated += n as u64;
        if self.live > self.peak {
            self.peak = self.live;
        }
        if let Some(limit) = self.shared.limit {
            // Conservative overshoot bound: completed nodes plus this
            // block already exceed the budget, so the serial schedule is
            // at least *likely* to trip — let the exact serial path
            // decide (it reproduces the trip, the rescue ladder, or a
            // clean squeeze-through byte-for-byte).
            if self.shared.committed.load(Ordering::Relaxed) + self.live > limit {
                self.shared.request_fallback();
                return Err(abort_trip());
            }
        }
        self.calls += 1;
        if self.calls.is_multiple_of(POLL_INTERVAL) {
            self.poll()?;
        }
        Ok(())
    }

    fn discard(&mut self, n: usize) {
        self.live = self.live.saturating_sub(n);
    }

    fn poll(&self) -> Result<(), Trip> {
        self.shared.check_realtime(self.block)
    }
}

/// Per-node accounting recorded by the worker that built it — the raw
/// material for the serial-schedule replay.
#[derive(Default)]
struct NodeAcc {
    /// Candidates charged while building (or reconstituting) the node.
    generated: u64,
    /// Maximum in-block live count during the build.
    transient_peak: usize,
    /// Implementations committed (the block's final list length).
    final_len: usize,
    /// Whether the block-cache was consulted for this node.
    looked_up: bool,
    /// Whether the pre-run cache lookup hit.
    initial_hit: bool,
    /// Degradations replayed from the cache hit (engine-stored blocks
    /// always carry none; kept exact for foreign caches).
    hit_degradations: Vec<crate::engine::DegradationEvent>,
    /// Whether `R_Selection` fired while building this node.
    r_reductions: usize,
    /// Whether the L-block reduction fired while building this node.
    l_reductions: usize,
    /// Wall-clock this node's worker spent in the selection kernels.
    selection_time: std::time::Duration,
    /// Set by the replay: the serial pass would have stored this node to
    /// the block cache (a built join, not a hit).
    store_after_replay: bool,
}

/// A completed node: its committed list plus the replay accounting.
struct BuiltNode {
    shapes: Shapes,
    acc: NodeAcc,
}

/// The work-stealing queues: one deque per worker plus a shared
/// injector. Workers pop their own deque LIFO (depth-first locality),
/// then the injector, then steal FIFO from peers.
struct WorkQueues {
    injector: Mutex<VecDeque<usize>>,
    locals: Vec<Mutex<VecDeque<usize>>>,
}

impl WorkQueues {
    fn new(workers: usize) -> Self {
        WorkQueues {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        }
    }

    /// Pushes a ready node onto worker `w`'s deque (injector if out of
    /// range — never drops a task).
    fn push_local(&self, w: usize, node: usize) {
        match self.locals.get(w) {
            Some(local) => lock_or_recover(local).push_back(node),
            None => lock_or_recover(&self.injector).push_back(node),
        }
    }

    /// Next task for worker `w`: own deque (back), injector, then a
    /// steal sweep over the other workers' deques (front). A successful
    /// steal takes up to half the victim's deque (capped at
    /// [`MAX_STEAL_BATCH`]) in one sweep — one lock round-trip instead
    /// of one per task — runs the oldest stolen task and keeps the rest
    /// locally. Steals are traced (thief/victim use the trace worker
    /// ids, where 0 is the main thread).
    fn pop(&self, w: usize, tc: TraceCtx<'_>) -> Option<usize> {
        if let Some(local) = self.locals.get(w) {
            if let Some(node) = lock_or_recover(local).pop_back() {
                return Some(node);
            }
        }
        if let Some(node) = lock_or_recover(&self.injector).pop_front() {
            return Some(node);
        }
        let n = self.locals.len();
        for off in 1..n {
            let victim = (w + off) % n;
            let Some(local) = self.locals.get(victim) else {
                continue;
            };
            let mut batch: Vec<usize> = {
                let mut deque = lock_or_recover(local);
                if deque.is_empty() {
                    continue;
                }
                let take = deque.len().div_ceil(2).min(MAX_STEAL_BATCH);
                deque.drain(..take).collect()
            };
            let count = batch.len();
            let first = batch.remove(0);
            if !batch.is_empty() {
                if let Some(own) = self.locals.get(w) {
                    lock_or_recover(own).extend(batch);
                } else {
                    lock_or_recover(&self.injector).extend(batch);
                }
            }
            if count > 1 {
                tc.emit(TraceEvent::StealBatch {
                    worker: w as u32 + 1,
                    victim: victim as u32 + 1,
                    count: count as u32,
                });
            } else {
                tc.emit(TraceEvent::Steal {
                    worker: w as u32 + 1,
                    victim: victim as u32 + 1,
                });
            }
            return Some(first);
        }
        None
    }
}

/// Arguments threaded to every worker (one struct to keep the spawn
/// call readable).
struct WorkerCtx<'a> {
    bin: &'a BinaryTree,
    library: &'a ModuleLibrary,
    config: &'a OptimizeConfig,
    eff: &'a EffectivePolicies,
    cache: Option<&'a (dyn BlockCache + Sync)>,
    fps: Option<&'a [Fingerprint]>,
    parent: &'a [usize],
    deps: &'a [AtomicUsize],
    /// Subtree sizes in binary-tree nodes (post-order contiguity makes
    /// `[i + 1 - size[i], i]` exactly node `i`'s subtree).
    size: &'a [usize],
    /// The split threshold: tasks covering fewer nodes run inline.
    cap: usize,
    results: &'a [OnceLock<BuiltNode>],
    remaining: &'a AtomicUsize,
    queues: &'a WorkQueues,
    shared: &'a SharedGov,
    tracer: Option<&'a Tracer>,
}

/// Attempts the parallel pass. `Ok(None)` means "run the serial path
/// instead" — tiny trees, invalid inputs (whose error ordering the
/// serial loop defines), scheduling failures, or a run whose serial
/// schedule would trip a resource limit.
pub(crate) fn try_parallel(
    tree: &FloorplanTree,
    library: &ModuleLibrary,
    config: &OptimizeConfig,
    cache: Option<&(dyn BlockCache + Sync)>,
    start: Instant,
    tracer: Option<&Tracer>,
) -> Result<Option<Frontier>, OptError> {
    // The main thread's trace context; the serial path re-emits its own
    // phases after a fallback, so every `Ok(None)` route below must emit
    // a `replay_discard` (when work was attempted) and no phase spans.
    let tc = TraceCtx::main(tracer);
    let restructure_started = Instant::now();
    let bin = fp_tree::restructure::restructure(tree)?;
    let restructure_spent = restructure_started.elapsed();
    if bin.is_empty() {
        return Err(OptError::EmptyFloorplan);
    }
    let n = bin.len();
    let mut leaf_count = 0usize;
    // Upfront leaf validation: the serial loop owns the error *ordering*
    // for invalid inputs (it may trip a budget before reaching a broken
    // leaf), so any invalid leaf routes the whole run to it.
    for node in bin.nodes() {
        if let BinNode::Leaf { module, .. } = node {
            leaf_count += 1;
            match library.get(*module) {
                Some(m) if !m.implementations().is_empty() => {}
                _ => return Ok(None),
            }
        }
    }
    let threads = config.resolved_threads().min(leaf_count.max(1));
    if threads < 2 || n < MIN_PARALLEL_NODES {
        return Ok(None);
    }

    let fps_vec = cache.map(|_| {
        fp_tree::fingerprint::block_fingerprints(&bin, library, policy_fingerprint(config))
    });
    let fps = fps_vec.as_deref();

    // Split granularity: subtrees below `cap` binary nodes execute as
    // one inline serial task (their post-order range is contiguous);
    // joins at or above it are individual tasks. `cap = 2` degenerates
    // to per-node scheduling (`split_threshold == 0`, the testing aid).
    let cap = config.split_threshold.max(2);
    let mut parent = vec![usize::MAX; n];
    let mut size = vec![1usize; n];
    for (i, node) in bin.nodes().iter().enumerate() {
        if let BinNode::Join { left, right, .. } = node {
            parent[*left] = i;
            parent[*right] = i;
            size[i] = size[*left] + size[*right] + 1;
        }
    }
    // Every child of a split join is itself a task root (either another
    // split join or the root of a maximal inline subtree), so split
    // joins always wait on exactly their two children's tasks.
    let mut dep_counts = vec![0usize; n];
    for i in 0..n {
        if size[i] >= cap {
            dep_counts[i] = 2;
        }
    }
    let deps: Vec<AtomicUsize> = dep_counts.into_iter().map(AtomicUsize::new).collect();
    let results: Vec<OnceLock<BuiltNode>> = (0..n).map(|_| OnceLock::new()).collect();
    let queues = WorkQueues::new(threads);
    // Seed the initially ready tasks — the maximal inline subtrees —
    // round-robin so every worker starts with local work. (With per-node
    // scheduling these are exactly the leaves.)
    let mut next_worker = 0usize;
    for i in 0..n {
        let ready = size[i] < cap
            && match parent.get(i).copied() {
                Some(p) if p != usize::MAX => size[p] >= cap,
                _ => true,
            };
        if ready {
            queues.push_local(next_worker % threads, i);
            next_worker += 1;
        }
    }
    let remaining = AtomicUsize::new(n);
    let shared = SharedGov {
        limit: config.memory_limit,
        committed: AtomicUsize::new(0),
        abort: AtomicBool::new(false),
        fallback: AtomicBool::new(false),
        first_trip: Mutex::new(None),
        start,
        deadline: config.deadline,
        cancel: config.cancel.clone(),
    };
    // Workers run the per-join L-reduction sequentially (budget 1): the
    // tree-level pool already owns every thread of the budget, and the
    // reduction is bit-identical at any worker count.
    let eff = EffectivePolicies {
        r: config.r_policy,
        l: config.l_policy.clone().map(|l| l.with_workers(1)),
    };

    let enumerate_started = Instant::now();
    {
        let bin = &bin;
        let parent: &[usize] = &parent;
        let deps: &[AtomicUsize] = &deps;
        let size: &[usize] = &size;
        let results: &[OnceLock<BuiltNode>] = &results;
        let remaining = &remaining;
        let queues = &queues;
        let shared = &shared;
        let eff = &eff;
        std::thread::scope(|scope| {
            for w in 0..threads {
                let ctx = WorkerCtx {
                    bin,
                    library,
                    config,
                    eff,
                    cache,
                    fps,
                    parent,
                    deps,
                    size,
                    cap,
                    results,
                    remaining,
                    queues,
                    shared,
                    tracer,
                };
                let spawned = std::thread::Builder::new()
                    .name(format!("fp-sched-{w}"))
                    .spawn_scoped(scope, move || worker_loop(w, ctx));
                if spawned.is_err() {
                    // Could not grow the pool: stop whoever started and
                    // let the serial path run the job.
                    shared.request_fallback();
                    break;
                }
            }
        });
    }

    // Non-rescuable trips (deadline, cancellation, broken invariants)
    // are final and reported directly; anything rescuable routes through
    // the serial path so the rescue ladder replays exactly.
    let enumerate_spent = enumerate_started.elapsed();
    let first = lock_or_recover(&shared.first_trip).take();
    if let Some((trip, block)) = first {
        if trip.is_rescuable() {
            tc.emit(TraceEvent::ReplayDiscard {
                reason: "trip_fallback",
            });
            return Ok(None);
        }
        if let Trip::Deadline { elapsed, .. } = &trip {
            tc.emit(TraceEvent::DeadlineTrip {
                block: block as u32,
                elapsed_ns: crate::engine::ns(*elapsed),
            });
        }
        return Err(trip_error(trip, block, 0, 0));
    }
    if shared.fallback.load(Ordering::Acquire) {
        tc.emit(TraceEvent::ReplayDiscard {
            reason: "trip_fallback",
        });
        return Ok(None);
    }

    let mut store: Vec<Shapes> = Vec::with_capacity(n);
    let mut accs: Vec<NodeAcc> = Vec::with_capacity(n);
    for cell in results {
        match cell.into_inner() {
            Some(built) => {
                store.push(built.shapes);
                accs.push(built.acc);
            }
            // A hole without a recorded trip is a scheduling bug; the
            // serial path still produces the correct result.
            None => {
                tc.emit(TraceEvent::ReplayDiscard {
                    reason: "worker_hole",
                });
                return Ok(None);
            }
        }
    }

    let replay_started = Instant::now();
    let Some(mut stats) =
        replay_serial_schedule(&bin, &store, &mut accs, config, fps, cache.is_some())
    else {
        // The serial schedule would have tripped: discard everything
        // (including buffered cache stores) and let the serial path
        // reproduce the trip/rescue byte-for-byte.
        tc.emit(TraceEvent::ReplayDiscard {
            reason: "replay_budget",
        });
        return Ok(None);
    };
    let replay_spent = replay_started.elapsed();

    if !matches!(store.get(bin.root()), Some(Shapes::Rect { .. })) {
        return Err(OptError::Internal {
            what: "root block is not rectangular",
            block: bin.root(),
        });
    }

    // Clean run: flush the buffered cache stores in tree order — the
    // same insertion order the serial pass would have produced.
    let flush_started = Instant::now();
    if let (Some(cache), Some(fps)) = (cache, fps) {
        for (i, acc) in accs.iter().enumerate() {
            if acc.store_after_replay {
                if let (Some(&fp), Some(shapes)) = (fps.get(i), store.get(i)) {
                    cache.store(fp, shapes_to_cached(shapes));
                }
            }
        }
    }
    let flush_spent = flush_started.elapsed();

    stats.elapsed = start.elapsed();
    // Phase spans only on the committed pass (a fallback's serial rerun
    // emits its own); Selection and Run mirror the replayed `RunStats`.
    tc.phase(PhaseName::Restructure, restructure_spent);
    tc.phase(PhaseName::Enumerate, enumerate_spent);
    tc.phase(PhaseName::Replay, replay_spent);
    tc.phase(PhaseName::CacheFlush, flush_spent);
    tc.phase(PhaseName::Selection, stats.selection_time);
    tc.phase(PhaseName::Run, stats.elapsed);
    let leaves = tree.leaves_in_order();
    let mut slot_of = vec![usize::MAX; tree.len()];
    for (slot, &leaf) in leaves.iter().enumerate() {
        if let Some(s) = slot_of.get_mut(leaf) {
            *s = slot;
        }
    }
    let leaf_slots = leaves.len();
    Ok(Some(Frontier::from_parts(
        bin, store, stats, slot_of, leaf_slots,
    )))
}

/// One worker: pop ready nodes, build them, complete parents.
fn worker_loop(w: usize, ctx: WorkerCtx<'_>) {
    let tc = TraceCtx {
        tracer: ctx.tracer,
        worker: w as u32 + 1,
    };
    let mut scratch = JoinScratch::new();
    let mut idle_spins = 0u32;
    loop {
        if ctx.shared.aborted() {
            return;
        }
        let Some(index) = ctx.queues.pop(w, tc) else {
            if ctx.remaining.load(Ordering::Acquire) == 0 {
                return;
            }
            // Out of work but the run isn't done: a peer holds the
            // frontier. Spin briefly, then back off.
            idle_spins += 1;
            if idle_spins < 64 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(50));
            }
            continue;
        };
        idle_spins = 0;
        // An inline task executes its whole contiguous subtree range
        // serially in post-order (children always precede parents); a
        // split join's task is the single join node.
        let task_size = ctx.size.get(index).copied().unwrap_or(1);
        let lo = if task_size < ctx.cap {
            if task_size > 1 {
                tc.emit(TraceEvent::SplitInline {
                    node: index as u32,
                    nodes: task_size as u32,
                });
            }
            index + 1 - task_size
        } else {
            index
        };
        for i in lo..=index {
            match build_node(i, &ctx, &mut scratch, tc) {
                Ok(built) => {
                    let len = built.acc.final_len;
                    let Some(cell) = ctx.results.get(i) else {
                        ctx.shared.request_fallback();
                        return;
                    };
                    if cell.set(built).is_err() {
                        // Double-build: a scheduling bug. The serial path
                        // still computes the right answer.
                        ctx.shared.request_fallback();
                        return;
                    }
                    ctx.shared.committed.fetch_add(len, Ordering::Relaxed);
                    ctx.remaining.fetch_sub(1, Ordering::AcqRel);
                }
                Err(trip) => {
                    if !is_abort(&trip) {
                        if trip.is_rescuable() {
                            // Defensive: workers do not produce rescuable
                            // trips directly, but if one appears, the
                            // serial path owns the rescue ladder.
                            ctx.shared.request_fallback();
                        } else {
                            ctx.shared.record_trip(trip, i);
                        }
                    }
                    return;
                }
            }
        }
        // The task is complete: release the consuming split join.
        let p = ctx.parent.get(index).copied().unwrap_or(usize::MAX);
        if p != usize::MAX {
            if let Some(dep) = ctx.deps.get(p) {
                if dep.fetch_sub(1, Ordering::AcqRel) == 1 {
                    ctx.queues.push_local(w, p);
                }
            }
        }
    }
}

/// Builds one node under a per-worker governor, recording the replay
/// accounting.
fn build_node(
    index: usize,
    ctx: &WorkerCtx<'_>,
    scratch: &mut JoinScratch,
    tc: TraceCtx<'_>,
) -> Result<BuiltNode, Trip> {
    ctx.shared.check_realtime(index)?;
    let node = ctx
        .bin
        .node(index)
        .ok_or(Trip::Internal("scheduler node index out of range"))?;
    let mut acc = NodeAcc::default();
    let mut gov = WorkerGov::new(ctx.shared, index);
    let shapes = match node {
        BinNode::Leaf { module, .. } => {
            let list = ctx
                .library
                .get(*module)
                .map(|m| m.implementations().clone())
                .ok_or(Trip::Internal("leaf module vanished mid-run"))?;
            gov.charge(list.len())?;
            Shapes::Rect {
                list,
                prov: Vec::new(),
            }
        }
        BinNode::Join { op, left, right } => {
            let fp = ctx.fps.and_then(|f| f.get(index)).copied();
            let mut hit_shapes = None;
            if let (Some(cache), Some(fp)) = (ctx.cache, fp) {
                acc.looked_up = true;
                if let Some(hit) = cache.lookup(fp) {
                    gov.charge(hit.len())?;
                    acc.initial_hit = true;
                    tc.emit(TraceEvent::CacheHit {
                        node: index as u32,
                        len: hit.len() as u32,
                    });
                    acc.hit_degradations = hit.degradations.clone();
                    hit_shapes = Some(cached_to_shapes(hit.shapes)?);
                } else {
                    tc.emit(TraceEvent::CacheMiss { node: index as u32 });
                }
            }
            match hit_shapes {
                Some(shapes) => shapes,
                None => {
                    let left = ctx.results.get(*left).and_then(OnceLock::get);
                    let right = ctx.results.get(*right).and_then(OnceLock::get);
                    let (Some(left), Some(right)) = (left, right) else {
                        return Err(Trip::Internal("scheduler dependency not built"));
                    };
                    let mut node_stats = RunStats::default();
                    let shapes = build_join(
                        *op,
                        &left.shapes,
                        &right.shapes,
                        ctx.config,
                        ctx.eff,
                        &mut gov,
                        &mut node_stats,
                        scratch,
                        index as u32,
                        tc,
                    )?;
                    acc.r_reductions = node_stats.r_reductions;
                    acc.l_reductions = node_stats.l_reductions;
                    acc.selection_time = node_stats.selection_time;
                    shapes
                }
            }
        }
    };
    acc.generated = gov.generated;
    acc.transient_peak = gov.peak;
    acc.final_len = shapes.len();
    Ok(BuiltNode { shapes, acc })
}

/// Replays the serial schedule over the per-node accounting: walks nodes
/// in tree order tracking the committed total, the generated ordinal,
/// and the set of fingerprints a serial pass would already have stored
/// (within-run self-hits). Returns `None` if the serial run would have
/// tripped the budget or a fault-plan ordinal anywhere — the caller then
/// discards the parallel work. Otherwise returns the exact serial
/// [`RunStats`] (minus `elapsed`, which the caller stamps) and marks
/// which nodes the serial pass would have stored to the cache.
fn replay_serial_schedule(
    bin: &BinaryTree,
    store: &[Shapes],
    accs: &mut [NodeAcc],
    config: &OptimizeConfig,
    fps: Option<&[Fingerprint]>,
    caching: bool,
) -> Option<RunStats> {
    let limit = config.memory_limit;
    let empty: &[u64] = &[];
    let points: &[u64] = config.fault_plan.as_ref().map_or(empty, FaultPlan::points);
    let mut cursor = 0usize;
    let mut committed: usize = 0;
    let mut generated: u64 = 0;
    let mut peak: usize = 0;
    let mut stats = RunStats::default();
    let mut stored: HashSet<Fingerprint> = HashSet::new();
    for (i, acc) in accs.iter_mut().enumerate() {
        let is_join = matches!(bin.node(i), Some(BinNode::Join { .. }));
        let fp = fps.and_then(|f| f.get(i)).copied();
        // Would the serial pass have hit the cache here? Either the
        // pre-run lookup hit, or an identical block earlier in tree
        // order stored under the same address during this run.
        let serial_hit = caching
            && is_join
            && acc.looked_up
            && (acc.initial_hit || fp.is_some_and(|fp| stored.contains(&fp)));
        let (d_gen, d_peak) = if serial_hit {
            // A serial hit charges the cached list in one go.
            (acc.final_len as u64, acc.final_len)
        } else {
            (acc.generated, acc.transient_peak)
        };
        // Budget: the serial meter trips when committed-so-far plus the
        // block's in-flight live count exceeds the limit at any charge;
        // the recorded transient peak is that maximum.
        if limit.is_some_and(|l| committed + d_peak > l) {
            return None;
        }
        // Fault plan: trips when the generated ordinal crosses a point
        // within this block's charges.
        let after = generated + d_gen;
        while let Some(&p) = points.get(cursor) {
            if p <= generated {
                cursor += 1;
                continue;
            }
            if p <= after {
                return None;
            }
            break;
        }
        generated = after;
        peak = peak.max(committed + d_peak);
        committed += acc.final_len;
        if serial_hit {
            stats.cache_hits += 1;
            stats
                .degradations
                .extend(acc.hit_degradations.iter().cloned());
        } else {
            if caching && is_join && acc.looked_up {
                stats.cache_misses += 1;
                acc.store_after_replay = true;
                if let Some(fp) = fp {
                    stored.insert(fp);
                }
            }
            stats.r_reductions += acc.r_reductions;
            stats.l_reductions += acc.l_reductions;
            stats.selection_time += acc.selection_time;
        }
        match store.get(i) {
            Some(Shapes::Rect { list, .. }) if is_join => {
                stats.max_r_block = stats.max_r_block.max(list.len());
            }
            Some(Shapes::L { shapes, .. }) => {
                stats.max_l_block = stats.max_l_block.max(shapes.len());
            }
            _ => {}
        }
    }
    stats.peak_impls = peak;
    stats.final_impls = committed;
    stats.generated = generated;
    Some(stats)
}
