//! Content-addressed caching of committed blocks across runs.
//!
//! The paper avoids recomputing sub-floorplan implementation lists
//! *within* one bottom-up pass; this module makes the same reuse work
//! *across* passes. Every join block of the restructured tree gets a
//! canonical 128-bit content address ([`fp_tree::fingerprint`]): the
//! child fingerprints, the combining operation (cut type / wheel stage
//! and arity), the module implementation lists at the leaves below, and
//! the [`policy_fingerprint`] of the selection configuration in force.
//! A [`BlockCache`] maps those addresses to the committed non-redundant
//! list (and the selection [`DegradationEvent`]s recorded when it was
//! built), so a re-optimization after a single-module edit rebuilds only
//! the `O(depth)` blocks on the touched leaf's root path — every sibling
//! subtree is reconstituted from cache.
//!
//! # Invalidation rules
//!
//! Content addressing makes invalidation implicit — nothing is ever
//! *marked* stale; a changed input simply hashes to a new address:
//!
//! * editing a module's implementation list re-addresses its leaf and all
//!   root-path ancestors (siblings keep their addresses → cache hits);
//! * changing a selection policy (`K₁`, `K₂`, θ, `S`, metric) or the
//!   global L-prune threshold changes the salt, re-addressing everything;
//! * the memory budget, deadline, cancellation, fault plans, objective,
//!   and fixed outline do **not** participate: they never change the
//!   *content* of a cleanly committed block, only whether/when a run
//!   trips or which root implementation is traced back;
//! * the `--parallel` L-reduction flag does not participate either — the
//!   parallel path is bit-equal to the serial one (enforced by the
//!   `parallel_equivalence` property tests).
//!
//! Runs on which the rescue ladder fires stop consulting *and* stop
//! populating the cache at the first trip: rescued blocks are built
//! under policies that deviate from the salt, so memoizing them would
//! let a later run observe degraded lists under a clean-policy address.

use fp_geom::{LShape, Rect};
use fp_memo::{CacheStats, Fingerprint, Fingerprinter, ShardedMemoCache, Weigh, DEFAULT_SHARDS};
use fp_select::Metric;

use crate::engine::{DegradationEvent, OptimizeConfig};

/// The shape payload of a cached block, mirroring the engine's internal
/// per-node storage: either a rectangular implementation list or an
/// L-shaped list with its irreducible chain segmentation, each entry
/// carrying the provenance pair that traces it to child implementations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CachedShapes {
    /// A rectangular block (slice join or wheel stage 4).
    Rect {
        /// The non-redundant envelope list, width-descending.
        rects: Vec<Rect>,
        /// Child implementation indices per entry.
        prov: Vec<(u32, u32)>,
    },
    /// An L-shaped block (wheel stages 1–3).
    L {
        /// The non-redundant L-implementations.
        shapes: Vec<LShape>,
        /// Child implementation indices per entry.
        prov: Vec<(u32, u32)>,
        /// Contiguous `(start, end)` irreducible chain segments.
        chains: Vec<(u32, u32)>,
    },
}

/// A committed block result: the non-redundant list plus the selection
/// degradations recorded while building it (empty for blocks committed
/// without any rescue, which is the only kind the engine memoizes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedBlock {
    /// The committed non-redundant list.
    pub shapes: CachedShapes,
    /// Selection [`DegradationEvent`]s replayed into a hitting run's
    /// degradation log.
    pub degradations: Vec<DegradationEvent>,
}

impl CachedBlock {
    /// Number of implementations in the cached list.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.shapes {
            CachedShapes::Rect { rects, .. } => rects.len(),
            CachedShapes::L { shapes, .. } => shapes.len(),
        }
    }

    /// `true` when the cached list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Weigh for CachedBlock {
    fn weight_bytes(&self) -> usize {
        let payload = match &self.shapes {
            CachedShapes::Rect { rects, prov } => {
                rects.len() * core::mem::size_of::<Rect>()
                    + prov.len() * core::mem::size_of::<(u32, u32)>()
            }
            CachedShapes::L {
                shapes,
                prov,
                chains,
            } => {
                shapes.len() * core::mem::size_of::<LShape>()
                    + (prov.len() + chains.len()) * core::mem::size_of::<(u32, u32)>()
            }
        };
        payload + self.degradations.len() * core::mem::size_of::<DegradationEvent>()
    }
}

/// The engine's per-block cache hooks: `lookup` may short-circuit a
/// block's `build`/re-select entirely; `store` commits a cleanly built
/// block for future runs. Implementations take `&self` so one cache can
/// be shared by concurrently optimizing threads (the `fpserved` workers).
pub trait BlockCache {
    /// The cached block at `key`, if any (a hit must bump recency).
    fn lookup(&self, key: Fingerprint) -> Option<CachedBlock>;
    /// Stores a committed block under `key`.
    fn store(&self, key: Fingerprint, value: CachedBlock);
    /// Lifetime counters, when the implementation tracks them. The
    /// engine's tracer snapshots these around stores to attribute
    /// evictions to the run that caused them; `None` (the default)
    /// simply disables eviction events.
    fn stats(&self) -> Option<CacheStats> {
        None
    }
}

/// The standard shared cache: a byte-budgeted LRU sharded across
/// fingerprint-routed per-shard locks ([`ShardedMemoCache`]), usable from
/// one session, many server workers, or the tree-level scheduler's worker
/// pool alike. Sharding keeps concurrent lookups from convoying on one
/// mutex: fingerprints are uniform, so threads hammering the cache spread
/// across [`DEFAULT_SHARDS`] independent locks.
pub struct SharedBlockCache {
    inner: ShardedMemoCache<CachedBlock>,
}

impl core::fmt::Debug for SharedBlockCache {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SharedBlockCache")
            .field("shards", &self.shard_count())
            .field("budget_bytes", &self.budget_bytes())
            .finish_non_exhaustive()
    }
}

impl SharedBlockCache {
    /// A cache with the given byte budget, split across the default
    /// shard count.
    #[must_use]
    pub fn new(budget_bytes: usize) -> Self {
        SharedBlockCache {
            inner: ShardedMemoCache::new(budget_bytes, DEFAULT_SHARDS),
        }
    }

    /// A cache with an explicit shard count (rounded up to a power of
    /// two; `1` degenerates to the old single-mutex behavior).
    #[must_use]
    pub fn with_shards(budget_bytes: usize, shards: usize) -> Self {
        SharedBlockCache {
            inner: ShardedMemoCache::new(budget_bytes, shards),
        }
    }

    /// Merged counter snapshot across all shards.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    /// Total cached blocks across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` when no shard holds any block.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Total weighed bytes across all shards.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.inner.bytes()
    }

    /// Total byte budget across all shards.
    #[must_use]
    pub fn budget_bytes(&self) -> usize {
        self.inner.budget_bytes()
    }

    /// Number of independent shards (and locks).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    /// Drops every cached block (counters survive).
    pub fn clear(&self) {
        self.inner.clear();
    }
}

/// A [`SharedBlockCache`] with the given byte budget.
#[must_use]
pub fn shared_cache(budget_bytes: usize) -> SharedBlockCache {
    SharedBlockCache::new(budget_bytes)
}

/// Counter snapshot of a shared cache (merged across shards).
#[must_use]
pub fn shared_cache_stats(cache: &SharedBlockCache) -> CacheStats {
    cache.stats()
}

impl BlockCache for SharedBlockCache {
    fn lookup(&self, key: Fingerprint) -> Option<CachedBlock> {
        // A poisoned shard (a worker panicked mid-access) degrades to a
        // cache miss inside `ShardedMemoCache` rather than panicking.
        self.inner.get(&key)
    }

    fn store(&self, key: Fingerprint, value: CachedBlock) {
        self.inner.insert(key, value);
    }

    fn stats(&self) -> Option<CacheStats> {
        Some(SharedBlockCache::stats(self))
    }
}

/// The policy/limit fingerprint mixed into every block address as the
/// salt: everything in an [`OptimizeConfig`] that can change the
/// *content* of a cleanly committed block. See the module docs for what
/// is deliberately excluded and why.
#[must_use]
pub fn policy_fingerprint(config: &OptimizeConfig) -> Fingerprint {
    let mut h = Fingerprinter::new();
    h.write_str("fp-optimizer/policy/v1");
    match &config.r_policy {
        None => h.write_u64(0),
        Some(r) => {
            h.write_u64(1);
            h.write_usize(r.limit());
        }
    }
    match &config.l_policy {
        None => h.write_u64(0),
        Some(l) => {
            h.write_u64(1);
            h.write_usize(l.k2());
            h.write_u64(l.theta().to_bits());
            match l.prefilter() {
                None => h.write_u64(0),
                Some(s) => {
                    h.write_u64(1);
                    h.write_usize(s);
                }
            }
            match l.metric() {
                Metric::L1 => h.write_u64(1),
                Metric::L2 => h.write_u64(2),
                Metric::Linf => h.write_u64(3),
                Metric::Lp(p) => {
                    h.write_u64(4);
                    h.write_u64(p.to_bits());
                }
            }
        }
    }
    match config.global_l_prune {
        None => h.write_u64(0),
        Some(t) => {
            h.write_u64(1);
            h.write_usize(t);
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Objective;
    use fp_select::LReductionPolicy;

    #[test]
    fn policy_fingerprint_covers_selection_knobs() {
        let base = OptimizeConfig::default();
        let fp = policy_fingerprint(&base);
        assert_eq!(fp, policy_fingerprint(&base.clone()));
        assert_ne!(fp, policy_fingerprint(&base.clone().with_r_selection(8)));
        assert_ne!(
            fp,
            policy_fingerprint(&base.clone().with_l_selection(LReductionPolicy::new(30)))
        );
        assert_ne!(
            fp,
            policy_fingerprint(&base.clone().with_global_l_prune(None))
        );
        let theta = base
            .clone()
            .with_l_selection(LReductionPolicy::new(30).with_theta(0.5));
        let theta2 = base
            .clone()
            .with_l_selection(LReductionPolicy::new(30).with_theta(0.7));
        assert_ne!(policy_fingerprint(&theta), policy_fingerprint(&theta2));
    }

    #[test]
    fn policy_fingerprint_ignores_run_only_knobs() {
        let base = OptimizeConfig::default();
        let fp = policy_fingerprint(&base);
        assert_eq!(
            fp,
            policy_fingerprint(&base.clone().with_memory_limit(Some(123)))
        );
        assert_eq!(
            fp,
            policy_fingerprint(
                &base
                    .clone()
                    .with_objective(Objective::MinHalfPerimeter)
                    .with_outline(fp_geom::Rect::new(5, 5))
                    .with_auto_rescue(true)
            )
        );
        // The parallel flag is result-invariant (property-tested), so it
        // must share the address space with the serial path.
        let serial = base
            .clone()
            .with_l_selection(LReductionPolicy::new(30).with_parallel(false));
        let parallel = base
            .clone()
            .with_l_selection(LReductionPolicy::new(30).with_parallel(true));
        assert_eq!(policy_fingerprint(&serial), policy_fingerprint(&parallel));
    }

    #[test]
    fn shared_cache_round_trips_blocks() {
        let cache = shared_cache(1 << 20);
        let block = CachedBlock {
            shapes: CachedShapes::Rect {
                rects: vec![Rect::new(4, 2), Rect::new(2, 4)],
                prov: vec![(0, 0), (1, 1)],
            },
            degradations: Vec::new(),
        };
        assert!(cache.lookup(7).is_none());
        cache.store(7, block.clone());
        assert_eq!(cache.lookup(7), Some(block));
        let stats = shared_cache_stats(&cache);
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
    }
}
