//! Content-addressed caching of committed blocks across runs.
//!
//! The paper avoids recomputing sub-floorplan implementation lists
//! *within* one bottom-up pass; this module makes the same reuse work
//! *across* passes. Every join block of the restructured tree gets a
//! canonical 128-bit content address ([`fp_tree::fingerprint`]): the
//! child fingerprints, the combining operation (cut type / wheel stage
//! and arity), the module implementation lists at the leaves below, and
//! the [`policy_fingerprint`] of the selection configuration in force.
//! A [`BlockCache`] maps those addresses to the committed non-redundant
//! list (and the selection [`DegradationEvent`]s recorded when it was
//! built), so a re-optimization after a single-module edit rebuilds only
//! the `O(depth)` blocks on the touched leaf's root path — every sibling
//! subtree is reconstituted from cache.
//!
//! # Invalidation rules
//!
//! Content addressing makes invalidation implicit — nothing is ever
//! *marked* stale; a changed input simply hashes to a new address:
//!
//! * editing a module's implementation list re-addresses its leaf and all
//!   root-path ancestors (siblings keep their addresses → cache hits);
//! * changing a selection policy (`K₁`, `K₂`, θ, `S`, metric) or the
//!   global L-prune threshold changes the salt, re-addressing everything;
//! * the memory budget, deadline, cancellation, fault plans, objective,
//!   and fixed outline do **not** participate: they never change the
//!   *content* of a cleanly committed block, only whether/when a run
//!   trips or which root implementation is traced back;
//! * the `--parallel` L-reduction flag does not participate either — the
//!   parallel path is bit-equal to the serial one (enforced by the
//!   `parallel_equivalence` property tests).
//!
//! Runs on which the rescue ladder fires stop consulting *and* stop
//! populating the cache at the first trip: rescued blocks are built
//! under policies that deviate from the salt, so memoizing them would
//! let a later run observe degraded lists under a clean-policy address.

use std::path::Path;

use fp_geom::{LShape, Rect};
use fp_memo::{
    CacheStats, Codec, Fingerprint, Fingerprinter, PersistError, PersistOptions, PersistStats,
    PersistentCache, RecoveryReport, Weigh, DEFAULT_SHARDS,
};
use fp_select::Metric;

use crate::engine::{DegradationEvent, OptimizeConfig, RescueReason};

/// The shape payload of a cached block, mirroring the engine's internal
/// per-node storage: either a rectangular implementation list or an
/// L-shaped list with its irreducible chain segmentation, each entry
/// carrying the provenance pair that traces it to child implementations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CachedShapes {
    /// A rectangular block (slice join or wheel stage 4).
    Rect {
        /// The non-redundant envelope list, width-descending.
        rects: Vec<Rect>,
        /// Child implementation indices per entry.
        prov: Vec<(u32, u32)>,
    },
    /// An L-shaped block (wheel stages 1–3).
    L {
        /// The non-redundant L-implementations.
        shapes: Vec<LShape>,
        /// Child implementation indices per entry.
        prov: Vec<(u32, u32)>,
        /// Contiguous `(start, end)` irreducible chain segments.
        chains: Vec<(u32, u32)>,
    },
}

/// A committed block result: the non-redundant list plus the selection
/// degradations recorded while building it (empty for blocks committed
/// without any rescue, which is the only kind the engine memoizes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedBlock {
    /// The committed non-redundant list.
    pub shapes: CachedShapes,
    /// Selection [`DegradationEvent`]s replayed into a hitting run's
    /// degradation log.
    pub degradations: Vec<DegradationEvent>,
}

impl CachedBlock {
    /// Number of implementations in the cached list.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.shapes {
            CachedShapes::Rect { rects, .. } => rects.len(),
            CachedShapes::L { shapes, .. } => shapes.len(),
        }
    }

    /// `true` when the cached list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Weigh for CachedBlock {
    fn weight_bytes(&self) -> usize {
        let payload = match &self.shapes {
            CachedShapes::Rect { rects, prov } => {
                rects.len() * core::mem::size_of::<Rect>()
                    + prov.len() * core::mem::size_of::<(u32, u32)>()
            }
            CachedShapes::L {
                shapes,
                prov,
                chains,
            } => {
                shapes.len() * core::mem::size_of::<LShape>()
                    + (prov.len() + chains.len()) * core::mem::size_of::<(u32, u32)>()
            }
        };
        payload + self.degradations.len() * core::mem::size_of::<DegradationEvent>()
    }
}

/// A bounds-checked little-endian reader over persisted block bytes:
/// the decode half of the [`Codec`], where every read can fail.
struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// A length prefix for `per_item`-byte elements, rejected unless the
    /// remaining input can actually hold that many (so a corrupt length
    /// cannot trigger a huge allocation).
    fn len(&mut self, per_item: usize) -> Option<usize> {
        let n = self.u32()? as usize;
        if n.checked_mul(per_item)? > self.bytes.len() - self.pos {
            return None;
        }
        Some(n)
    }

    fn opt_usize(&mut self) -> Option<Option<usize>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(usize::try_from(self.u64()?).ok()?)),
            _ => None,
        }
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn encode_opt_usize(out: &mut Vec<u8>, v: Option<usize>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            out.extend_from_slice(&(v as u64).to_le_bytes());
        }
    }
}

fn encode_pairs(out: &mut Vec<u8>, pairs: &[(u32, u32)]) {
    out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
    for &(a, b) in pairs {
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&b.to_le_bytes());
    }
}

fn decode_pairs(r: &mut ByteReader<'_>) -> Option<Vec<(u32, u32)>> {
    let n = r.len(8)?;
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        pairs.push((r.u32()?, r.u32()?));
    }
    Some(pairs)
}

const SHAPES_RECT_TAG: u8 = 0;
const SHAPES_L_TAG: u8 = 1;
const REASON_BUDGET_TAG: u8 = 0;
const REASON_FAULT_TAG: u8 = 1;

/// The persisted wire format of a committed block (`fp-memo` segment
/// record payloads; see `fp_memo::persist`). Everything is
/// little-endian and length-prefixed; `decode` is the trust boundary
/// for bytes read back from disk — structural invariants (provenance
/// arity, canonical L-shapes, chain bounds) are revalidated here, and
/// the engine's reconstitution path re-checks the staircase invariant
/// on top.
impl Codec for CachedBlock {
    fn encode(&self, out: &mut Vec<u8>) {
        match &self.shapes {
            CachedShapes::Rect { rects, prov } => {
                out.push(SHAPES_RECT_TAG);
                out.extend_from_slice(&(rects.len() as u32).to_le_bytes());
                for r in rects {
                    out.extend_from_slice(&r.w.to_le_bytes());
                    out.extend_from_slice(&r.h.to_le_bytes());
                }
                encode_pairs(out, prov);
            }
            CachedShapes::L {
                shapes,
                prov,
                chains,
            } => {
                out.push(SHAPES_L_TAG);
                out.extend_from_slice(&(shapes.len() as u32).to_le_bytes());
                for l in shapes {
                    out.extend_from_slice(&l.w1.to_le_bytes());
                    out.extend_from_slice(&l.w2.to_le_bytes());
                    out.extend_from_slice(&l.h1.to_le_bytes());
                    out.extend_from_slice(&l.h2.to_le_bytes());
                }
                encode_pairs(out, prov);
                encode_pairs(out, chains);
            }
        }
        out.extend_from_slice(&(self.degradations.len() as u32).to_le_bytes());
        for d in &self.degradations {
            out.extend_from_slice(&(d.block as u64).to_le_bytes());
            out.extend_from_slice(&d.attempt.to_le_bytes());
            match d.reason {
                RescueReason::Budget { live, limit } => {
                    out.push(REASON_BUDGET_TAG);
                    out.extend_from_slice(&(live as u64).to_le_bytes());
                    out.extend_from_slice(&(limit as u64).to_le_bytes());
                }
                RescueReason::Fault { allocation } => {
                    out.push(REASON_FAULT_TAG);
                    out.extend_from_slice(&allocation.to_le_bytes());
                    out.extend_from_slice(&0u64.to_le_bytes());
                }
            }
            out.extend_from_slice(&(d.live_at_trip as u64).to_le_bytes());
            encode_opt_usize(out, d.k1);
            encode_opt_usize(out, d.k2);
            out.extend_from_slice(&d.theta_millis.to_le_bytes());
            encode_opt_usize(out, d.prefilter);
        }
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = ByteReader::new(bytes);
        let shapes = match r.u8()? {
            SHAPES_RECT_TAG => {
                let n = r.len(16)?;
                let mut rects = Vec::with_capacity(n);
                for _ in 0..n {
                    rects.push(Rect::new(r.u64()?, r.u64()?));
                }
                let prov = decode_pairs(&mut r)?;
                if prov.len() != rects.len() {
                    return None;
                }
                CachedShapes::Rect { rects, prov }
            }
            SHAPES_L_TAG => {
                let n = r.len(32)?;
                let mut shapes = Vec::with_capacity(n);
                for _ in 0..n {
                    let (w1, w2, h1, h2) = (r.u64()?, r.u64()?, r.u64()?, r.u64()?);
                    // `LShape::new` rejects non-canonical tuples, so a
                    // decoded L can never violate the type's invariant.
                    shapes.push(LShape::new(w1, w2, h1, h2).ok()?);
                }
                let prov = decode_pairs(&mut r)?;
                let chains = decode_pairs(&mut r)?;
                if prov.len() != shapes.len() {
                    return None;
                }
                let n = shapes.len() as u32;
                if chains.iter().any(|&(s, e)| s > e || e > n) {
                    return None;
                }
                CachedShapes::L {
                    shapes,
                    prov,
                    chains,
                }
            }
            _ => return None,
        };
        // 44 = the minimum encoded size of one degradation event.
        let n = r.len(44)?;
        let mut degradations = Vec::with_capacity(n);
        for _ in 0..n {
            let block = usize::try_from(r.u64()?).ok()?;
            let attempt = r.u32()?;
            let reason = match r.u8()? {
                REASON_BUDGET_TAG => RescueReason::Budget {
                    live: usize::try_from(r.u64()?).ok()?,
                    limit: usize::try_from(r.u64()?).ok()?,
                },
                REASON_FAULT_TAG => {
                    let allocation = r.u64()?;
                    let _pad = r.u64()?;
                    RescueReason::Fault { allocation }
                }
                _ => return None,
            };
            degradations.push(DegradationEvent {
                block,
                attempt,
                reason,
                live_at_trip: usize::try_from(r.u64()?).ok()?,
                k1: r.opt_usize()?,
                k2: r.opt_usize()?,
                theta_millis: r.u32()?,
                prefilter: r.opt_usize()?,
            });
        }
        if !r.done() {
            return None; // trailing bytes: not a canonical encoding
        }
        Some(CachedBlock {
            shapes,
            degradations,
        })
    }
}

/// The engine's per-block cache hooks: `lookup` may short-circuit a
/// block's `build`/re-select entirely; `store` commits a cleanly built
/// block for future runs. Implementations take `&self` so one cache can
/// be shared by concurrently optimizing threads (the `fpserved` workers).
pub trait BlockCache {
    /// The cached block at `key`, if any (a hit must bump recency).
    fn lookup(&self, key: Fingerprint) -> Option<CachedBlock>;
    /// Stores a committed block under `key`.
    fn store(&self, key: Fingerprint, value: CachedBlock);
    /// Lifetime counters, when the implementation tracks them. The
    /// engine's tracer snapshots these around stores to attribute
    /// evictions to the run that caused them; `None` (the default)
    /// simply disables eviction events.
    fn stats(&self) -> Option<CacheStats> {
        None
    }
}

/// The standard shared cache: a byte-budgeted LRU sharded across
/// fingerprint-routed per-shard locks ([`ShardedMemoCache`]), usable from
/// one session, many server workers, or the tree-level scheduler's worker
/// pool alike. Sharding keeps concurrent lookups from convoying on one
/// mutex: fingerprints are uniform, so threads hammering the cache spread
/// across [`DEFAULT_SHARDS`] independent locks.
pub struct SharedBlockCache {
    inner: PersistentCache<CachedBlock>,
}

impl core::fmt::Debug for SharedBlockCache {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SharedBlockCache")
            .field("shards", &self.shard_count())
            .field("budget_bytes", &self.budget_bytes())
            .field("persistent", &self.is_persistent())
            .finish_non_exhaustive()
    }
}

impl SharedBlockCache {
    /// A cache with the given byte budget, split across the default
    /// shard count.
    #[must_use]
    pub fn new(budget_bytes: usize) -> Self {
        SharedBlockCache {
            inner: PersistentCache::in_memory(budget_bytes, DEFAULT_SHARDS),
        }
    }

    /// A cache with an explicit shard count (rounded up to a power of
    /// two; `1` degenerates to the old single-mutex behavior).
    #[must_use]
    pub fn with_shards(budget_bytes: usize, shards: usize) -> Self {
        SharedBlockCache {
            inner: PersistentCache::in_memory(budget_bytes, shards),
        }
    }

    /// A crash-consistent persistent cache backed by the segment store
    /// at `dir` (created if absent): verified records whose store salt
    /// matches `salt` are replayed into memory, and every subsequent
    /// store is appended to the log by a write-behind flusher. Pass the
    /// run's [`policy_fingerprint`] as `salt` for single-policy CLI use
    /// (a policy change then cold-starts the store), or a fixed salt
    /// for multi-policy servers whose block addresses are already
    /// policy-salted.
    ///
    /// # Errors
    ///
    /// [`PersistError`] when the store directory cannot be created or
    /// the active segment cannot be opened. Corrupt store *content*
    /// never errors — recovery degrades to a cold start or a verified
    /// prefix (see [`SharedBlockCache::recovery`]).
    pub fn open_persistent(
        dir: &Path,
        budget_bytes: usize,
        salt: u128,
    ) -> Result<Self, PersistError> {
        Self::open_persistent_with(dir, budget_bytes, salt, PersistOptions::default())
    }

    /// [`SharedBlockCache::open_persistent`] with explicit
    /// [`PersistOptions`] (segment sizing, compaction threshold, I/O
    /// fault injection for chaos tests).
    ///
    /// # Errors
    ///
    /// See [`SharedBlockCache::open_persistent`].
    pub fn open_persistent_with(
        dir: &Path,
        budget_bytes: usize,
        salt: u128,
        options: PersistOptions,
    ) -> Result<Self, PersistError> {
        Ok(SharedBlockCache {
            inner: PersistentCache::open(dir, budget_bytes, salt, options)?,
        })
    }

    /// Whether stores are persisted to a segment log.
    #[must_use]
    pub fn is_persistent(&self) -> bool {
        self.inner.is_persistent()
    }

    /// The segment store directory, when persistent.
    #[must_use]
    pub fn store_dir(&self) -> Option<&Path> {
        self.inner.store_dir()
    }

    /// What recovery found on disk at open (all zeros for in-memory
    /// caches).
    #[must_use]
    pub fn recovery(&self) -> RecoveryReport {
        self.inner.recovery()
    }

    /// Write-behind flusher counters, when persistent.
    #[must_use]
    pub fn persist_stats(&self) -> Option<PersistStats> {
        self.inner.persist_stats()
    }

    /// Blocks until every store so far is appended and synced to the
    /// segment log (no-op in memory-only mode). Called by servers and
    /// CLIs on graceful drain so a restart warm-starts from everything
    /// this process computed.
    ///
    /// # Errors
    ///
    /// [`PersistError::FlusherGone`] when the log writer wedged on an
    /// unrecoverable I/O fault; the in-memory cache is unaffected.
    pub fn flush(&self) -> Result<(), PersistError> {
        self.inner.flush()
    }

    /// Merged counter snapshot across all shards.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    /// Total cached blocks across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` when no shard holds any block.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Total weighed bytes across all shards.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.inner.bytes()
    }

    /// Total byte budget across all shards.
    #[must_use]
    pub fn budget_bytes(&self) -> usize {
        self.inner.budget_bytes()
    }

    /// Number of independent shards (and locks).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    /// Drops every cached block (counters survive).
    pub fn clear(&self) {
        self.inner.clear();
    }
}

/// A [`SharedBlockCache`] with the given byte budget.
#[must_use]
pub fn shared_cache(budget_bytes: usize) -> SharedBlockCache {
    SharedBlockCache::new(budget_bytes)
}

/// Counter snapshot of a shared cache (merged across shards).
#[must_use]
pub fn shared_cache_stats(cache: &SharedBlockCache) -> CacheStats {
    cache.stats()
}

impl BlockCache for SharedBlockCache {
    fn lookup(&self, key: Fingerprint) -> Option<CachedBlock> {
        // A poisoned shard (a worker panicked mid-access) degrades to a
        // cache miss inside `ShardedMemoCache` rather than panicking.
        self.inner.get(&key)
    }

    fn store(&self, key: Fingerprint, value: CachedBlock) {
        self.inner.insert(key, value);
    }

    fn stats(&self) -> Option<CacheStats> {
        Some(SharedBlockCache::stats(self))
    }
}

/// The policy/limit fingerprint mixed into every block address as the
/// salt: everything in an [`OptimizeConfig`] that can change the
/// *content* of a cleanly committed block. See the module docs for what
/// is deliberately excluded and why.
#[must_use]
pub fn policy_fingerprint(config: &OptimizeConfig) -> Fingerprint {
    let mut h = Fingerprinter::new();
    h.write_str("fp-optimizer/policy/v1");
    match &config.r_policy {
        None => h.write_u64(0),
        Some(r) => {
            h.write_u64(1);
            h.write_usize(r.limit());
        }
    }
    match &config.l_policy {
        None => h.write_u64(0),
        Some(l) => {
            h.write_u64(1);
            h.write_usize(l.k2());
            h.write_u64(l.theta().to_bits());
            match l.prefilter() {
                None => h.write_u64(0),
                Some(s) => {
                    h.write_u64(1);
                    h.write_usize(s);
                }
            }
            match l.metric() {
                Metric::L1 => h.write_u64(1),
                Metric::L2 => h.write_u64(2),
                Metric::Linf => h.write_u64(3),
                Metric::Lp(p) => {
                    h.write_u64(4);
                    h.write_u64(p.to_bits());
                }
            }
        }
    }
    match config.global_l_prune {
        None => h.write_u64(0),
        Some(t) => {
            h.write_u64(1);
            h.write_usize(t);
        }
    }
    // Appended only when set, so salt-free fingerprints (and every
    // cache written before the salt existed) stay byte-identical.
    if config.extra_salt != 0 {
        h.write_u64(1);
        h.write_u128(config.extra_salt);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Objective;
    use fp_select::LReductionPolicy;

    #[test]
    fn policy_fingerprint_covers_selection_knobs() {
        let base = OptimizeConfig::default();
        let fp = policy_fingerprint(&base);
        assert_eq!(fp, policy_fingerprint(&base.clone()));
        assert_ne!(fp, policy_fingerprint(&base.clone().with_r_selection(8)));
        assert_ne!(
            fp,
            policy_fingerprint(&base.clone().with_l_selection(LReductionPolicy::new(30)))
        );
        assert_ne!(
            fp,
            policy_fingerprint(&base.clone().with_global_l_prune(None))
        );
        let theta = base
            .clone()
            .with_l_selection(LReductionPolicy::new(30).with_theta(0.5));
        let theta2 = base
            .clone()
            .with_l_selection(LReductionPolicy::new(30).with_theta(0.7));
        assert_ne!(policy_fingerprint(&theta), policy_fingerprint(&theta2));
    }

    #[test]
    fn policy_fingerprint_extra_salt_is_compatible_and_distinct() {
        let base = OptimizeConfig::default();
        // Zero salt is the identity: old caches stay addressable.
        assert_eq!(
            policy_fingerprint(&base),
            policy_fingerprint(&base.clone().with_extra_salt(0))
        );
        let salted = policy_fingerprint(&base.clone().with_extra_salt(7));
        assert_ne!(policy_fingerprint(&base), salted);
        assert_ne!(salted, policy_fingerprint(&base.clone().with_extra_salt(8)));
    }

    #[test]
    fn policy_fingerprint_ignores_run_only_knobs() {
        let base = OptimizeConfig::default();
        let fp = policy_fingerprint(&base);
        assert_eq!(
            fp,
            policy_fingerprint(&base.clone().with_memory_limit(Some(123)))
        );
        assert_eq!(
            fp,
            policy_fingerprint(
                &base
                    .clone()
                    .with_objective(Objective::MinHalfPerimeter)
                    .with_outline(fp_geom::Rect::new(5, 5))
                    .with_auto_rescue(true)
            )
        );
        // The parallel flag is result-invariant (property-tested), so it
        // must share the address space with the serial path.
        let serial = base
            .clone()
            .with_l_selection(LReductionPolicy::new(30).with_parallel(false));
        let parallel = base
            .clone()
            .with_l_selection(LReductionPolicy::new(30).with_parallel(true));
        assert_eq!(policy_fingerprint(&serial), policy_fingerprint(&parallel));
    }

    fn sample_l_block() -> CachedBlock {
        CachedBlock {
            shapes: CachedShapes::L {
                shapes: vec![
                    LShape::new(10, 4, 8, 3).expect("canonical"),
                    LShape::new(7, 7, 9, 9).expect("degenerate rect"),
                ],
                prov: vec![(0, 1), (2, 3)],
                chains: vec![(0, 2)],
            },
            degradations: vec![
                DegradationEvent {
                    block: 5,
                    attempt: 2,
                    reason: RescueReason::Budget {
                        live: 40,
                        limit: 32,
                    },
                    live_at_trip: 40,
                    k1: Some(16),
                    k2: None,
                    theta_millis: 1500,
                    prefilter: Some(8),
                },
                DegradationEvent {
                    block: 6,
                    attempt: 3,
                    reason: RescueReason::Fault { allocation: 1234 },
                    live_at_trip: 7,
                    k1: None,
                    k2: Some(12),
                    theta_millis: 0,
                    prefilter: None,
                },
            ],
        }
    }

    #[test]
    fn codec_round_trips_both_shape_kinds() {
        let rect_block = CachedBlock {
            shapes: CachedShapes::Rect {
                rects: vec![Rect::new(6, 2), Rect::new(4, 3), Rect::new(2, 8)],
                prov: vec![(0, 0), (1, 2), (3, 1)],
            },
            degradations: Vec::new(),
        };
        for block in [rect_block, sample_l_block()] {
            let mut bytes = Vec::new();
            block.encode(&mut bytes);
            let decoded = CachedBlock::decode(&bytes).expect("round trip");
            assert_eq!(decoded, block);
            // Canonical encodings are byte-stable (required for the
            // crash suite's byte-identity assertions).
            let mut again = Vec::new();
            decoded.encode(&mut again);
            assert_eq!(again, bytes);
        }
    }

    #[test]
    fn codec_rejects_malformed_bytes_without_panicking() {
        let mut bytes = Vec::new();
        sample_l_block().encode(&mut bytes);
        // Truncation at every boundary, bogus tags, and trailing junk
        // must all decode to None — never panic, never a wrong value.
        for cut in 0..bytes.len() {
            let _ = CachedBlock::decode(&bytes[..cut]);
        }
        assert!(CachedBlock::decode(&[]).is_none());
        assert!(CachedBlock::decode(&[9, 0, 0, 0, 0]).is_none());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(
            CachedBlock::decode(&trailing).is_none(),
            "trailing bytes are not canonical"
        );
        // A non-canonical L tuple (w1 < w2) must be rejected even
        // though the container structure parses.
        let mut bad_l = Vec::new();
        bad_l.push(1u8); // L tag
        bad_l.extend_from_slice(&1u32.to_le_bytes());
        for v in [3u64, 9, 8, 2] {
            bad_l.extend_from_slice(&v.to_le_bytes());
        }
        bad_l.extend_from_slice(&1u32.to_le_bytes()); // prov len 1
        bad_l.extend_from_slice(&0u64.to_le_bytes()); // prov pair
        bad_l.extend_from_slice(&0u32.to_le_bytes()); // chains len 0
        bad_l.extend_from_slice(&0u32.to_le_bytes()); // degradations len 0
        assert!(CachedBlock::decode(&bad_l).is_none());
    }

    #[test]
    fn shared_cache_round_trips_blocks() {
        let cache = shared_cache(1 << 20);
        let block = CachedBlock {
            shapes: CachedShapes::Rect {
                rects: vec![Rect::new(4, 2), Rect::new(2, 4)],
                prov: vec![(0, 0), (1, 1)],
            },
            degradations: Vec::new(),
        };
        assert!(cache.lookup(7).is_none());
        cache.store(7, block.clone());
        assert_eq!(cache.lookup(7), Some(block));
        let stats = shared_cache_stats(&cache);
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
    }
}
