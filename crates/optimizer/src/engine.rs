//! The bottom-up optimization engine.

use core::fmt;
use std::time::{Duration, Instant};

use fp_geom::{Area, LShape, Rect};
use fp_select::{LReductionPolicy, RReductionPolicy};
use fp_shape::combine::{combine_with_provenance, Compose};
use fp_shape::{LList, LListSet, RList};
use fp_tree::layout::Assignment;
use fp_tree::restructure::{restructure, BinNode, BinOp, BinaryTree};
use fp_tree::{FloorplanTree, ModuleLibrary, TreeError};

use crate::joins;
use crate::meter::{BudgetExhausted, MemoryMeter};

/// What the optimizer minimizes over the root implementation list.
///
/// The bottom-up enumeration is objective-agnostic (it keeps every
/// non-redundant implementation), so the objective only decides which
/// root implementation is traced back — any monotone cost works.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Minimize the enveloping rectangle's area (the paper's objective).
    #[default]
    MinArea,
    /// Minimize the half-perimeter `w + h` (favours square floorplans;
    /// a common proxy for wirelength).
    MinHalfPerimeter,
}

impl Objective {
    /// The cost of a candidate envelope (lower is better); ties break
    /// towards smaller width for determinism.
    #[must_use]
    fn cost(self, r: Rect) -> (Area, u64) {
        match self {
            Objective::MinArea => (r.area(), r.w),
            Objective::MinHalfPerimeter => (r.half_perimeter(), r.w),
        }
    }
}

/// Configuration of an optimization run.
///
/// The default runs the plain DAC'90 algorithm (no selection) under a
/// 10-million-implementation budget — large enough for the small and
/// medium benchmarks, and the deterministic stand-in for the paper
/// machine's physical memory on the large ones.
#[derive(Debug, Clone)]
pub struct OptimizeConfig {
    /// `R_Selection` policy for rectangular blocks (`K₁`), if any.
    pub r_policy: Option<RReductionPolicy>,
    /// `L_Selection` policy for L-shaped blocks (`K₂`, θ, `S`), if any.
    pub l_policy: Option<LReductionPolicy>,
    /// Implementation budget; `None` is truly unlimited (can exhaust the
    /// host machine on large floorplans — that is the paper's point).
    pub memory_limit: Option<usize>,
    /// Cross-chain dominance pruning of L-blocks. `Some(t)` runs the cheap
    /// same-`w2` prune always and the full (quadratic worst case) 4-D
    /// prune while the block holds at most `t` implementations; `Some(0)`
    /// keeps only the cheap pass; `None` disables both (per-chain pruning
    /// only — an ablation mode that mimics a naive implementation).
    pub global_l_prune: Option<usize>,
    /// What to minimize at the root.
    pub objective: Objective,
    /// Fixed-outline constraint: only root implementations fitting inside
    /// this rectangle qualify. [`OptError::NoFeasibleOutline`] when none
    /// does.
    pub outline: Option<Rect>,
}

impl OptimizeConfig {
    /// The default budget used by [`OptimizeConfig::default`].
    pub const DEFAULT_MEMORY_LIMIT: usize = 10_000_000;

    /// The default cross-chain pruning threshold.
    pub const DEFAULT_GLOBAL_L_PRUNE: usize = 50_000;

    /// Plain run (no selection) with the default budget.
    #[must_use]
    pub fn plain() -> Self {
        OptimizeConfig {
            r_policy: None,
            l_policy: None,
            memory_limit: Some(Self::DEFAULT_MEMORY_LIMIT),
            global_l_prune: Some(Self::DEFAULT_GLOBAL_L_PRUNE),
            objective: Objective::MinArea,
            outline: None,
        }
    }

    /// Sets the root objective.
    #[must_use]
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Constrains the floorplan to fit inside `outline`.
    #[must_use]
    pub fn with_outline(mut self, outline: Rect) -> Self {
        self.outline = Some(outline);
        self
    }

    /// Overrides the global L-block pruning threshold.
    #[must_use]
    pub fn with_global_l_prune(mut self, threshold: Option<usize>) -> Self {
        self.global_l_prune = threshold;
        self
    }

    /// Run with `R_Selection` at limit `k1`.
    #[must_use]
    pub fn with_r_selection(mut self, k1: usize) -> Self {
        self.r_policy = Some(RReductionPolicy::new(k1));
        self
    }

    /// Run with `L_Selection` under the given policy.
    #[must_use]
    pub fn with_l_selection(mut self, policy: LReductionPolicy) -> Self {
        self.l_policy = Some(policy);
        self
    }

    /// Overrides the implementation budget.
    #[must_use]
    pub fn with_memory_limit(mut self, limit: Option<usize>) -> Self {
        self.memory_limit = limit;
        self
    }
}

impl Default for OptimizeConfig {
    fn default() -> Self {
        OptimizeConfig::plain()
    }
}

/// Errors reported by [`optimize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptError {
    /// The floorplan tree is structurally invalid.
    Tree(TreeError),
    /// The tree has no modules.
    EmptyFloorplan,
    /// A leaf references a module that is missing from the library.
    MissingModule {
        /// The module id.
        module: usize,
    },
    /// A module has an empty implementation list.
    NoImplementations {
        /// The module id.
        module: usize,
    },
    /// No root implementation fits inside the requested fixed outline.
    NoFeasibleOutline {
        /// The requested outline.
        outline: Rect,
        /// The smallest-area implementation that was available.
        best_available: Rect,
    },
    /// The implementation budget was exhausted — the reproduction of the
    /// paper's "\[9\] failed to run due to insufficient memory space".
    OutOfMemory {
        /// Implementations live at failure.
        live: usize,
        /// The configured budget.
        limit: usize,
        /// Peak live count reached before failing (the `> M` the paper
        /// reports for failed runs).
        peak: usize,
    },
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::Tree(e) => write!(f, "invalid floorplan tree: {e}"),
            OptError::EmptyFloorplan => write!(f, "floorplan has no modules"),
            OptError::MissingModule { module } => write!(f, "module {module} missing from library"),
            OptError::NoImplementations { module } => {
                write!(f, "module {module} has no implementations")
            }
            OptError::NoFeasibleOutline {
                outline,
                best_available,
            } => write!(
                f,
                "no implementation fits the {outline} outline (best available: {best_available})"
            ),
            OptError::OutOfMemory { live, limit, peak } => write!(
                f,
                "out of memory: {live} implementations live (budget {limit}, peak {peak})"
            ),
        }
    }
}

impl std::error::Error for OptError {}

impl From<TreeError> for OptError {
    fn from(e: TreeError) -> Self {
        OptError::Tree(e)
    }
}

/// Instrumentation of a run (the quantities of the paper's tables).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// `M`: the peak number of implementations stored at once.
    pub peak_impls: usize,
    /// Implementations still stored at the end of the run.
    pub final_impls: usize,
    /// Total candidates ever generated (pre-pruning).
    pub generated: u64,
    /// How many times `R_Selection` fired.
    pub r_reductions: usize,
    /// How many times the L-block reduction fired.
    pub l_reductions: usize,
    /// The largest rectangular block's final implementation count.
    pub max_r_block: usize,
    /// The largest L-shaped block's final implementation count — the
    /// paper's §5 observation is that this dwarfs [`RunStats::max_r_block`]
    /// on wheel-rich floorplans, which is why `L_Selection` exists.
    pub max_l_block: usize,
    /// Wall-clock time of the optimization proper.
    pub elapsed: Duration,
}

/// The result of a successful optimization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// The minimal floorplan area found.
    pub area: Area,
    /// The enveloping rectangle realizing it.
    pub root_impl: Rect,
    /// One implementation choice per module (in
    /// [`FloorplanTree::leaves_in_order`] order), realizable via
    /// [`fp_tree::layout::realize`].
    pub assignment: Assignment,
    /// Run instrumentation.
    pub stats: RunStats,
}

/// Borrowed view of an L-block: shapes, provenance, chain segments.
type LView<'a> = (&'a [LShape], &'a [(u32, u32)], &'a [(u32, u32)]);

/// Per-node shape storage. `prov` maps each stored implementation to the
/// indices of the child implementations that produced it (empty at
/// leaves, where the index itself is the module's implementation choice).
enum Shapes {
    Rect {
        list: RList,
        prov: Vec<(u32, u32)>,
    },
    L {
        shapes: Vec<LShape>,
        prov: Vec<(u32, u32)>,
        /// Contiguous `(start, end)` chain segments; each is an
        /// irreducible L-list.
        chains: Vec<(u32, u32)>,
    },
}

impl Shapes {
    fn len(&self) -> usize {
        match self {
            Shapes::Rect { list, .. } => list.len(),
            Shapes::L { shapes, .. } => shapes.len(),
        }
    }

    fn as_rect(&self) -> (&RList, &[(u32, u32)]) {
        match self {
            Shapes::Rect { list, prov } => (list, prov),
            Shapes::L { .. } => unreachable!("expected a rectangular block"),
        }
    }

    fn as_l(&self) -> LView<'_> {
        match self {
            Shapes::L {
                shapes,
                prov,
                chains,
            } => (shapes, prov, chains),
            Shapes::Rect { .. } => unreachable!("expected an L-shaped block"),
        }
    }
}

/// The full solution frontier of an optimization run: every non-redundant
/// implementation of the whole floorplan, each traceable to a realizable
/// per-module assignment.
///
/// The root R-list is the floorplan's *feasible-envelope trade-off curve*
/// (every width/height compromise the topology admits); a [`Frontier`]
/// lets callers query it repeatedly — different objectives, different
/// fixed outlines — without re-running the bottom-up enumeration.
///
/// # Example
///
/// ```
/// use fp_geom::Rect;
/// use fp_optimizer::{optimize_frontier, Objective, OptimizeConfig};
/// use fp_tree::generators;
///
/// let bench = generators::fig1();
/// let lib = generators::module_library(&bench.tree, 4, 2);
/// let frontier = optimize_frontier(&bench.tree, &lib, &OptimizeConfig::default())?;
/// let free = frontier.best(Objective::MinArea, None)?;
/// // Any envelope on the frontier traces back to a concrete assignment.
/// for i in 0..frontier.envelopes().len() {
///     let out = frontier.outcome(i);
///     assert_eq!(out.root_impl, frontier.envelopes()[i]);
/// }
/// assert!(frontier.best(Objective::MinArea, Some(Rect::new(1, 1))).is_err());
/// # drop(free);
/// # Ok::<(), fp_optimizer::OptError>(())
/// ```
pub struct Frontier {
    bin: BinaryTree,
    store: Vec<Shapes>,
    stats: RunStats,
    /// Maps tree leaf ids to assignment slots.
    slot_of: Vec<usize>,
    leaves: usize,
}

impl Frontier {
    /// The non-redundant envelope implementations of the whole floorplan
    /// (width descending).
    #[must_use]
    pub fn envelopes(&self) -> &RList {
        let (list, _) = self.store[self.bin.root()].as_rect();
        list
    }

    /// Run statistics of the enumeration that built this frontier.
    #[must_use]
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Traces the `index`-th envelope back to a full outcome.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for [`Frontier::envelopes`].
    #[must_use]
    pub fn outcome(&self, index: usize) -> Outcome {
        let envelope = self.envelopes()[index];
        let assignment = trace_back_with(&self.bin, &self.store, index, &self.slot_of, self.leaves);
        Outcome {
            area: envelope.area(),
            root_impl: envelope,
            assignment,
            stats: self.stats.clone(),
        }
    }

    /// The best outcome under `objective`, optionally constrained to fit
    /// `outline`.
    ///
    /// # Errors
    ///
    /// [`OptError::NoFeasibleOutline`] when no envelope fits `outline`.
    pub fn best(&self, objective: Objective, outline: Option<Rect>) -> Result<Outcome, OptError> {
        let list = self.envelopes();
        let pick = list
            .iter()
            .enumerate()
            .filter(|(_, r)| outline.is_none_or(|o| r.fits_in(o)))
            .min_by_key(|(_, r)| objective.cost(**r))
            .map(|(i, _)| i);
        match pick {
            Some(i) => Ok(self.outcome(i)),
            None => Err(OptError::NoFeasibleOutline {
                outline: outline.expect("only the outline filter can empty the list"),
                best_available: list
                    .iter()
                    .copied()
                    .min_by_key(|r| r.area())
                    .expect("joins of non-empty lists are non-empty"),
            }),
        }
    }
}

/// Runs the bottom-up enumeration and returns the whole solution
/// [`Frontier`] instead of a single outcome.
///
/// # Errors
///
/// Same as [`optimize`], except outline infeasibility (which is deferred
/// to [`Frontier::best`]).
pub fn optimize_frontier(
    tree: &FloorplanTree,
    library: &ModuleLibrary,
    config: &OptimizeConfig,
) -> Result<Frontier, OptError> {
    let start = Instant::now();
    let bin = restructure(tree)?;
    if bin.is_empty() {
        return Err(OptError::EmptyFloorplan);
    }

    let mut meter = match config.memory_limit {
        Some(limit) => MemoryMeter::with_limit(limit),
        None => MemoryMeter::unbounded(),
    };
    let mut stats = RunStats::default();

    let oom = |meter: &MemoryMeter, e: BudgetExhausted| OptError::OutOfMemory {
        live: e.live,
        limit: e.limit,
        peak: meter.peak(),
    };

    // Bottom-up evaluation over the topologically ordered binary nodes.
    let mut store: Vec<Shapes> = Vec::with_capacity(bin.len());
    for node in bin.nodes() {
        let shapes = match node {
            BinNode::Leaf { module, .. } => {
                let m = library
                    .get(*module)
                    .ok_or(OptError::MissingModule { module: *module })?;
                let list = m.implementations().clone();
                if list.is_empty() {
                    return Err(OptError::NoImplementations { module: *module });
                }
                meter.charge(list.len()).map_err(|e| oom(&meter, e))?;
                Shapes::Rect {
                    list,
                    prov: Vec::new(),
                }
            }
            BinNode::Join { op, left, right } => {
                let result = match op {
                    BinOp::Slice(how) => {
                        slice_join(&store[*left], &store[*right], *how, &mut meter)
                    }
                    BinOp::WheelS1 => wheel_s1(&store[*left], &store[*right], &mut meter),
                    BinOp::WheelS2 => {
                        wheel_s23(&store[*left], &store[*right], joins::stage2, &mut meter)
                    }
                    BinOp::WheelS3 => wheel_s3(&store[*left], &store[*right], &mut meter),
                    BinOp::WheelS4 => wheel_s4(&store[*left], &store[*right], &mut meter),
                };
                let mut shapes = result.map_err(|e| oom(&meter, e))?;
                global_l_prune(&mut shapes, config, &mut meter);
                apply_policies(&mut shapes, config, &mut meter, &mut stats);
                match &shapes {
                    Shapes::Rect { list, .. } => {
                        stats.max_r_block = stats.max_r_block.max(list.len());
                    }
                    Shapes::L { shapes: l, .. } => {
                        stats.max_l_block = stats.max_l_block.max(l.len());
                    }
                }
                shapes
            }
        };
        meter.commit(shapes.len());
        store.push(shapes);
    }

    stats.peak_impls = meter.peak();
    stats.final_impls = meter.live();
    stats.generated = meter.generated();
    stats.elapsed = start.elapsed();

    // Map tree leaf node ids to assignment slots once, for all trace-backs.
    let leaves = tree.leaves_in_order();
    let mut slot_of = vec![usize::MAX; tree.len()];
    for (slot, &leaf) in leaves.iter().enumerate() {
        slot_of[leaf] = slot;
    }

    Ok(Frontier {
        bin,
        store,
        stats,
        slot_of,
        leaves: leaves.len(),
    })
}

/// Runs the floorplan area optimizer.
///
/// Returns the best implementation of the whole floorplan under the
/// configured objective and outline (exact when no selection policy is
/// configured; near-optimal under selection) together with a realizable
/// per-module assignment and run statistics. Use [`optimize_frontier`] to
/// query several objectives/outlines from one enumeration.
///
/// # Errors
///
/// See [`OptError`]; in particular [`OptError::OutOfMemory`] reproduces
/// the paper's memory-exhaustion failures deterministically.
pub fn optimize(
    tree: &FloorplanTree,
    library: &ModuleLibrary,
    config: &OptimizeConfig,
) -> Result<Outcome, OptError> {
    let frontier = optimize_frontier(tree, library, config)?;
    frontier.best(config.objective, config.outline)
}

/// Slicing combination of two rectangular blocks (Stockmeyer merge).
fn slice_join(
    left: &Shapes,
    right: &Shapes,
    how: Compose,
    meter: &mut MemoryMeter,
) -> Result<Shapes, BudgetExhausted> {
    let (a, _) = left.as_rect();
    let (b, _) = right.as_rect();
    let combined = combine_with_provenance(a, b, how);
    meter.charge(combined.len())?;
    let mut rects = Vec::with_capacity(combined.len());
    let mut prov = Vec::with_capacity(combined.len());
    for c in combined {
        rects.push(c.rect);
        prov.push((c.left as u32, c.right as u32));
    }
    let list = RList::from_sorted(rects).expect("Stockmeyer merge output is a staircase");
    Ok(Shapes::Rect { list, prov })
}

/// Incremental within-chain dominance pruning for L-shape chains whose
/// candidates arrive with `w1` non-increasing, `w2` constant, and
/// `(h1, h2)` non-decreasing: a tie in `w1` makes the newcomer redundant;
/// a tie in both heights makes the previous element redundant.
fn push_l_chain(
    shapes: &mut Vec<LShape>,
    prov: &mut Vec<(u32, u32)>,
    chain_start: usize,
    cand: LShape,
    p: (u32, u32),
    meter: &mut MemoryMeter,
) -> Result<(), BudgetExhausted> {
    meter.charge(1)?;
    if shapes.len() > chain_start {
        let last = shapes[shapes.len() - 1];
        debug_assert_eq!(last.w2, cand.w2);
        debug_assert!(cand.w1 <= last.w1 && cand.h1 >= last.h1 && cand.h2 >= last.h2);
        if cand.w1 == last.w1 {
            meter.discard(1);
            return Ok(()); // cand dominates last: redundant
        }
        if cand.h1 == last.h1 && cand.h2 == last.h2 {
            shapes.pop();
            prov.pop();
            meter.discard(1); // last dominated cand: last redundant
        }
    }
    shapes.push(cand);
    prov.push(p);
    Ok(())
}

/// Same pruning discipline for rectangle chains (`w` non-increasing,
/// `h` non-decreasing).
fn push_rect_chain(
    out: &mut Vec<(Rect, (u32, u32))>,
    chain_start: usize,
    cand: Rect,
    p: (u32, u32),
    meter: &mut MemoryMeter,
) -> Result<(), BudgetExhausted> {
    meter.charge(1)?;
    if out.len() > chain_start {
        let (last, _) = out[out.len() - 1];
        debug_assert!(cand.w <= last.w && cand.h >= last.h);
        if cand.w == last.w {
            meter.discard(1);
            return Ok(());
        }
        if cand.h == last.h {
            out.pop();
            meter.discard(1);
        }
    }
    out.push((cand, p));
    Ok(())
}

/// Wheel stage 1: `A × E → L`. One chain per `A` implementation.
fn wheel_s1(
    left: &Shapes,
    right: &Shapes,
    meter: &mut MemoryMeter,
) -> Result<Shapes, BudgetExhausted> {
    let (a_list, _) = left.as_rect();
    let (e_list, _) = right.as_rect();
    let mut shapes = Vec::new();
    let mut prov = Vec::new();
    let mut chains = Vec::new();
    for (ai, &a) in a_list.iter().enumerate() {
        let start = shapes.len();
        for (ei, &e) in e_list.iter().enumerate() {
            push_l_chain(
                &mut shapes,
                &mut prov,
                start,
                joins::stage1(a, e),
                (ai as u32, ei as u32),
                meter,
            )?;
        }
        if shapes.len() > start {
            chains.push((start as u32, shapes.len() as u32));
        }
    }
    Ok(Shapes::L {
        shapes,
        prov,
        chains,
    })
}

/// Wheel stage 2 (and the shared machinery): for each stored L
/// implementation, a chain over the attached arm's R-list.
fn wheel_s23(
    left: &Shapes,
    right: &Shapes,
    stage: fn(LShape, Rect) -> LShape,
    meter: &mut MemoryMeter,
) -> Result<Shapes, BudgetExhausted> {
    let (l_shapes, _, _) = left.as_l();
    let (r_list, _) = right.as_rect();
    let mut shapes = Vec::new();
    let mut prov = Vec::new();
    let mut chains = Vec::new();
    for (li, &l) in l_shapes.iter().enumerate() {
        let start = shapes.len();
        for (ri, &r) in r_list.iter().enumerate() {
            push_l_chain(
                &mut shapes,
                &mut prov,
                start,
                stage(l, r),
                (li as u32, ri as u32),
                meter,
            )?;
        }
        if shapes.len() > start {
            chains.push((start as u32, shapes.len() as u32));
        }
    }
    Ok(Shapes::L {
        shapes,
        prov,
        chains,
    })
}

/// Wheel stage 3: chains run over the *parent chain* for each fixed `C`
/// implementation (that orientation keeps `w2 = w_C` constant and the
/// monotonicity the chain prune needs).
fn wheel_s3(
    left: &Shapes,
    right: &Shapes,
    meter: &mut MemoryMeter,
) -> Result<Shapes, BudgetExhausted> {
    let (l_shapes, _, l_chains) = left.as_l();
    let (c_list, _) = right.as_rect();
    let mut shapes = Vec::new();
    let mut prov = Vec::new();
    let mut chains = Vec::new();
    for &(cs, ce) in l_chains {
        for (ci, &c) in c_list.iter().enumerate() {
            let start = shapes.len();
            for li in cs..ce {
                let cand = joins::stage3(l_shapes[li as usize], c);
                push_l_chain(&mut shapes, &mut prov, start, cand, (li, ci as u32), meter)?;
            }
            if shapes.len() > start {
                chains.push((start as u32, shapes.len() as u32));
            }
        }
    }
    Ok(Shapes::L {
        shapes,
        prov,
        chains,
    })
}

/// Wheel stage 4: `L × D → R`, with per-chain pruning then a global
/// staircase prune.
fn wheel_s4(
    left: &Shapes,
    right: &Shapes,
    meter: &mut MemoryMeter,
) -> Result<Shapes, BudgetExhausted> {
    let (l_shapes, _, _) = left.as_l();
    let (d_list, _) = right.as_rect();
    let mut out: Vec<(Rect, (u32, u32))> = Vec::new();
    for (li, &l) in l_shapes.iter().enumerate() {
        let start = out.len();
        for (di, &d) in d_list.iter().enumerate() {
            push_rect_chain(
                &mut out,
                start,
                joins::stage4(l, d),
                (li as u32, di as u32),
                meter,
            )?;
        }
    }
    let before = out.len();
    let pruned = fp_shape::prune::pareto_min_rects_by(out, |&(r, _)| r);
    meter.discard(before - pruned.len());
    let mut rects = Vec::with_capacity(pruned.len());
    let mut prov = Vec::with_capacity(pruned.len());
    for (r, p) in pruned {
        rects.push(r);
        prov.push(p);
    }
    let list = RList::from_sorted(rects).expect("pruned output is a staircase");
    Ok(Shapes::Rect { list, prov })
}

/// Cross-chain dominance pruning of an L-block: the per-chain discipline
/// leaves implementations that a *different* chain dominates (e.g. a wider
/// `A` arm whose heights bring no benefit). The full 4-D prune removes
/// them and re-chains the survivors — this is what keeps the plain
/// algorithm's non-redundant counts at \[9\]'s scale. Skipped above the
/// configured threshold (the prune is `O(n·front)`).
fn global_l_prune(shapes: &mut Shapes, config: &OptimizeConfig, meter: &mut MemoryMeter) {
    let Shapes::L {
        shapes: l_shapes,
        prov,
        chains,
    } = shapes
    else {
        return;
    };
    if l_shapes.is_empty() || config.global_l_prune.is_none() {
        return;
    }
    let before = l_shapes.len();
    let tagged: Vec<(LShape, (u32, u32))> =
        l_shapes.iter().copied().zip(prov.iter().copied()).collect();

    // Pass 1 (always): same-w2 dominance, O(n log n).
    let mut pruned = fp_shape::prune::pareto_min_lshapes_within_w2_by(tagged, |&(l, _)| l);

    // Pass 2 (bounded): full cross-w2 dominance, O(n·front).
    if config.global_l_prune.is_some_and(|t| pruned.len() <= t) {
        pruned = fp_shape::prune::pareto_min_lshapes_by(pruned, |&(l, _)| l);
    }

    if pruned.len() == before {
        // Nothing was redundant; keep the existing (already valid) chains.
        return;
    }
    let survivors: Vec<LShape> = pruned.iter().map(|&(l, _)| l).collect();
    let idx_chains = fp_shape::chain_indices(&survivors);
    let mut new_shapes = Vec::with_capacity(survivors.len());
    let mut new_prov = Vec::with_capacity(survivors.len());
    let mut new_chains = Vec::with_capacity(idx_chains.len());
    for chain in idx_chains {
        let start = new_shapes.len();
        for i in chain {
            new_shapes.push(pruned[i].0);
            new_prov.push(pruned[i].1);
        }
        new_chains.push((start as u32, new_shapes.len() as u32));
    }
    meter.discard(before - new_shapes.len());
    *l_shapes = new_shapes;
    *prov = new_prov;
    *chains = new_chains;
}

/// Applies the configured selection policies to a freshly built block.
fn apply_policies(
    shapes: &mut Shapes,
    config: &OptimizeConfig,
    meter: &mut MemoryMeter,
    stats: &mut RunStats,
) {
    match shapes {
        Shapes::Rect { list, prov } => {
            let Some(policy) = &config.r_policy else {
                return;
            };
            let Some(sel) = policy.apply(list) else {
                return;
            };
            let dropped = list.len() - sel.positions.len();
            let new_list = list.subset(&sel.positions);
            let new_prov = if prov.is_empty() {
                Vec::new()
            } else {
                sel.positions.iter().map(|&i| prov[i]).collect()
            };
            *list = new_list;
            *prov = new_prov;
            meter.discard(dropped);
            stats.r_reductions += 1;
        }
        Shapes::L {
            shapes: l_shapes,
            prov,
            chains,
        } => {
            let Some(policy) = &config.l_policy else {
                return;
            };
            // View the chains as an LListSet for the policy layer.
            let lists: Vec<LList> = chains
                .iter()
                .map(|&(s, e)| {
                    LList::from_sorted(l_shapes[s as usize..e as usize].to_vec())
                        .expect("engine chains are irreducible L-lists")
                })
                .collect();
            let set = LListSet::from_lists(lists);
            let Some(kept) = policy.apply(&set) else {
                return;
            };
            let mut new_shapes = Vec::new();
            let mut new_prov = Vec::new();
            let mut new_chains = Vec::new();
            for (&(s, _), positions) in chains.iter().zip(&kept) {
                let start = new_shapes.len();
                for &p in positions {
                    let global = s as usize + p;
                    new_shapes.push(l_shapes[global]);
                    new_prov.push(prov[global]);
                }
                if new_shapes.len() > start {
                    new_chains.push((start as u32, new_shapes.len() as u32));
                }
            }
            let dropped = l_shapes.len() - new_shapes.len();
            *l_shapes = new_shapes;
            *prov = new_prov;
            *chains = new_chains;
            meter.discard(dropped);
            stats.l_reductions += 1;
        }
    }
}

/// Traces the chosen root implementation back to per-module choices.
fn trace_back_with(
    bin: &BinaryTree,
    store: &[Shapes],
    root_idx: usize,
    slot_of: &[usize],
    leaves: usize,
) -> Assignment {
    let mut choices = vec![0usize; leaves];
    let mut stack = vec![(bin.root(), root_idx)];
    while let Some((node, idx)) = stack.pop() {
        match bin.node(node).expect("valid binary tree") {
            BinNode::Leaf { tree_leaf, .. } => {
                choices[slot_of[*tree_leaf]] = idx;
            }
            BinNode::Join { left, right, .. } => {
                let (li, ri) = match &store[node] {
                    Shapes::Rect { prov, .. } => prov[idx],
                    Shapes::L { prov, .. } => prov[idx],
                };
                stack.push((*left, li as usize));
                stack.push((*right, ri as usize));
            }
        }
    }
    Assignment::new(choices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_select::Metric;
    use fp_tree::layout::{realize, Assignment as LayoutAssignment};
    use fp_tree::{generators, Chirality, CutDir, Module};
    use proptest::prelude::*;

    fn run(tree: &FloorplanTree, lib: &ModuleLibrary, config: &OptimizeConfig) -> Outcome {
        optimize(tree, lib, config).expect("optimization succeeds")
    }

    #[test]
    fn single_leaf_floorplan() {
        let mut t = FloorplanTree::new();
        t.leaf(0);
        let lib: ModuleLibrary = [Module::new("m", vec![Rect::new(4, 2), Rect::new(2, 3)])]
            .into_iter()
            .collect();
        let out = run(&t, &lib, &OptimizeConfig::default());
        assert_eq!(out.area, 6);
        assert_eq!(out.root_impl, Rect::new(2, 3));
        assert_eq!(out.assignment, LayoutAssignment::new(vec![1]));
    }

    #[test]
    fn two_module_stack_picks_best_pairing() {
        let mut t = FloorplanTree::new();
        let a = t.leaf(0);
        let b = t.leaf(1);
        t.slice(CutDir::Horizontal, vec![a, b]);
        let lib: ModuleLibrary = [
            Module::new("a", vec![Rect::new(4, 2), Rect::new(2, 4)]),
            Module::new("b", vec![Rect::new(4, 1), Rect::new(1, 4)]),
        ]
        .into_iter()
        .collect();
        let out = run(&t, &lib, &OptimizeConfig::default());
        // Best stack: (4,2)+(4,1) => 4x3 = 12.
        assert_eq!(out.area, 12);
        let layout = realize(&t, &lib, &out.assignment).expect("valid");
        assert_eq!(layout.area(), 12);
        assert_eq!(layout.validate(), None);
    }

    #[test]
    fn domino_wheel_is_tight() {
        let mut t = FloorplanTree::new();
        let ids: Vec<_> = (0..5).map(|m| t.leaf(m)).collect();
        t.wheel(
            Chirality::Clockwise,
            [ids[0], ids[1], ids[2], ids[3], ids[4]],
        );
        let lib: ModuleLibrary = [
            Module::hard("a", Rect::new(1, 2), true),
            Module::hard("b", Rect::new(2, 1), true),
            Module::hard("c", Rect::new(1, 2), true),
            Module::hard("d", Rect::new(2, 1), true),
            Module::hard("e", Rect::new(1, 1), false),
        ]
        .into_iter()
        .collect();
        let out = run(&t, &lib, &OptimizeConfig::default());
        assert_eq!(out.area, 9);
        let layout = realize(&t, &lib, &out.assignment).expect("valid");
        assert_eq!(layout.area(), 9);
        assert_eq!(layout.dead_space(), 0);
    }

    #[test]
    fn reported_area_matches_realized_layout_on_benchmarks() {
        for bench in [generators::fig1(), generators::fp1()] {
            let lib = generators::module_library(&bench.tree, 3, 5);
            let out = run(&bench.tree, &lib, &OptimizeConfig::default());
            let layout = realize(&bench.tree, &lib, &out.assignment).expect("valid");
            assert_eq!(layout.area(), out.area, "{}", bench.name);
            assert_eq!(layout.validate(), None, "{}", bench.name);
        }
    }

    #[test]
    fn selection_trades_area_for_memory() {
        let bench = generators::fp1();
        let lib = generators::module_library(&bench.tree, 6, 3);
        let plain = run(&bench.tree, &lib, &OptimizeConfig::default());
        let reduced_cfg = OptimizeConfig::default().with_r_selection(8);
        let reduced = run(&bench.tree, &lib, &reduced_cfg);
        assert!(reduced.stats.peak_impls <= plain.stats.peak_impls);
        assert!(reduced.stats.r_reductions > 0);
        assert!(reduced.area >= plain.area);
        // Still realizable.
        let layout = realize(&bench.tree, &lib, &reduced.assignment).expect("valid");
        assert_eq!(layout.area(), reduced.area);
    }


    #[test]
    fn l_selection_reduces_wheel_blocks() {
        let bench = generators::fp1();
        let lib = generators::module_library(&bench.tree, 6, 3);
        let cfg = OptimizeConfig::default()
            .with_r_selection(10)
            .with_l_selection(LReductionPolicy::new(30).with_metric(Metric::L1));
        let out = run(&bench.tree, &lib, &cfg);
        assert!(out.stats.l_reductions > 0);
        let layout = realize(&bench.tree, &lib, &out.assignment).expect("valid");
        assert_eq!(layout.area(), out.area);
        assert_eq!(layout.validate(), None);
    }

    #[test]
    fn memory_budget_reproduces_paper_failures() {
        let bench = generators::fp1();
        let lib = generators::module_library(&bench.tree, 6, 3);
        // Find the plain run's peak, then set the budget just under it:
        // the plain run dies the way the paper's SPARCstation memory did.
        let plain = run(&bench.tree, &lib, &OptimizeConfig::default());
        let budget = plain.stats.peak_impls * 3 / 4;
        let tiny = OptimizeConfig::default().with_memory_limit(Some(budget));
        match optimize(&bench.tree, &lib, &tiny) {
            Err(OptError::OutOfMemory { live, limit, peak }) => {
                assert_eq!(limit, budget);
                assert!(live > budget);
                assert!(peak >= budget);
            }
            other => panic!("expected OutOfMemory, got {other:?}"),
        }
        // The same run with selection squeezes under the budget.
        let rescued = OptimizeConfig::default()
            .with_memory_limit(Some(budget))
            .with_r_selection(3)
            .with_l_selection(LReductionPolicy::new(30));
        let out = optimize(&bench.tree, &lib, &rescued).expect("selection rescues the run");
        assert!(out.stats.peak_impls <= budget);
    }

    #[test]
    fn frontier_outcomes_all_realize() {
        let bench = generators::fp1();
        let lib = generators::module_library(&bench.tree, 4, 9);
        let frontier =
            optimize_frontier(&bench.tree, &lib, &OptimizeConfig::default()).expect("runs");
        let n = frontier.envelopes().len();
        assert!(n >= 2, "wheel floorplans have several envelope compromises");
        for i in 0..n {
            let out = frontier.outcome(i);
            let layout = realize(&bench.tree, &lib, &out.assignment).expect("valid");
            assert_eq!(layout.area(), out.area, "frontier entry {i}");
            assert_eq!(layout.validate(), None, "frontier entry {i}");
        }
        // best() agrees with the one-shot API.
        let one_shot = run(&bench.tree, &lib, &OptimizeConfig::default());
        let via_frontier = frontier
            .best(Objective::MinArea, None)
            .expect("unconstrained is feasible");
        assert_eq!(one_shot.area, via_frontier.area);
        assert_eq!(one_shot.assignment, via_frontier.assignment);
    }

    #[test]
    fn frontier_outline_queries_are_consistent() {
        let bench = generators::fig1();
        let lib = generators::module_library(&bench.tree, 5, 4);
        let frontier =
            optimize_frontier(&bench.tree, &lib, &OptimizeConfig::default()).expect("runs");
        for &env in frontier.envelopes().iter() {
            // Constraining to exactly this envelope must return it (it is
            // non-redundant, so nothing else fits strictly inside).
            let out = frontier
                .best(Objective::MinArea, Some(env))
                .expect("feasible");
            assert!(out.root_impl.fits_in(env));
        }
    }

    #[test]
    fn census_records_block_extremes() {
        let bench = generators::fp1();
        let lib = generators::module_library(&bench.tree, 6, 3);
        let out = run(&bench.tree, &lib, &OptimizeConfig::default());
        // The paper's §5 observation: L-blocks dwarf rectangular blocks.
        assert!(out.stats.max_l_block > out.stats.max_r_block);
        assert!(out.stats.max_r_block > 0);
        // A slicing-only floorplan has no L-blocks at all.
        let slicing = generators::fig1();
        let slib = generators::module_library(&slicing.tree, 4, 3);
        let sout = run(&slicing.tree, &slib, &OptimizeConfig::default());
        assert_eq!(sout.stats.max_l_block, 0);
        assert!(sout.stats.max_r_block > 0);
    }

    #[test]
    fn objective_half_perimeter_prefers_square() {
        // Two implementations with equal area but different shapes after a
        // stack: MinArea ties on cost and picks by width; MinHalfPerimeter
        // must pick the squarer envelope.
        let mut t = FloorplanTree::new();
        let a = t.leaf(0);
        let b = t.leaf(1);
        t.slice(CutDir::Horizontal, vec![a, b]);
        let lib: ModuleLibrary = [
            Module::new("a", vec![Rect::new(8, 2), Rect::new(4, 4)]),
            Module::new("b", vec![Rect::new(8, 2), Rect::new(4, 4)]),
        ]
        .into_iter()
        .collect();
        // Candidates: 8x4 (area 32, hp 12) and 4x8 (area 32, hp 12)... and
        // mixed 8x6 (48, 14). Area optimum = 32 either way.
        let area_out = run(
            &t,
            &lib,
            &OptimizeConfig::default().with_objective(Objective::MinArea),
        );
        assert_eq!(area_out.area, 32);
        let hp = OptimizeConfig::default().with_objective(Objective::MinHalfPerimeter);
        let hp_out = run(&t, &lib, &hp);
        assert_eq!(hp_out.root_impl.half_perimeter(), 12);
        // Realizes under either objective.
        let layout = realize(&t, &lib, &hp_out.assignment).expect("valid");
        assert_eq!(layout.area(), hp_out.area);
    }

    #[test]
    fn outline_constraint_filters_and_errors() {
        let mut t = FloorplanTree::new();
        let a = t.leaf(0);
        let b = t.leaf(1);
        t.slice(CutDir::Horizontal, vec![a, b]);
        let lib: ModuleLibrary = [
            Module::new("a", vec![Rect::new(8, 2), Rect::new(2, 8)]),
            Module::new("b", vec![Rect::new(8, 2), Rect::new(2, 8)]),
        ]
        .into_iter()
        .collect();
        // Unconstrained best: 8x4 = 32.
        let free = run(&t, &lib, &OptimizeConfig::default());
        assert_eq!(free.area, 32);
        // A narrow outline forces the tall stacking (2..x16 = 32? no:
        // stacking 2x8 + 2x8 = 2x16, area 32).
        let narrow = OptimizeConfig::default().with_outline(Rect::new(3, 20));
        let out = run(&t, &lib, &narrow);
        assert!(out.root_impl.fits_in(Rect::new(3, 20)));
        assert_eq!(out.root_impl, Rect::new(2, 16));
        // An impossible outline reports the best available implementation.
        let impossible = OptimizeConfig::default().with_outline(Rect::new(3, 3));
        match optimize(&t, &lib, &impossible) {
            Err(OptError::NoFeasibleOutline {
                outline,
                best_available,
            }) => {
                assert_eq!(outline, Rect::new(3, 3));
                assert!(best_available.area() >= 32);
            }
            other => panic!("expected NoFeasibleOutline, got {other:?}"),
        }
    }

    #[test]
    fn error_cases() {
        let empty = FloorplanTree::new();
        assert_eq!(
            optimize(&empty, &ModuleLibrary::new(), &OptimizeConfig::default()),
            Err(OptError::EmptyFloorplan)
        );
        let mut t = FloorplanTree::new();
        t.leaf(3);
        assert_eq!(
            optimize(&t, &ModuleLibrary::new(), &OptimizeConfig::default()),
            Err(OptError::MissingModule { module: 3 })
        );
        let mut t2 = FloorplanTree::new();
        t2.leaf(0);
        let lib: ModuleLibrary = [Module::new("empty", vec![])].into_iter().collect();
        assert_eq!(
            optimize(&t2, &lib, &OptimizeConfig::default()),
            Err(OptError::NoImplementations { module: 0 })
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// On random floorplans the optimizer's reported area always equals
        /// the realized layout's area, and the layout is physically valid.
        #[test]
        fn outcome_is_always_realizable(tree_seed in 0u64..40, lib_seed in 0u64..20,
                                        leaves in 2usize..14) {
            let bench = generators::random_floorplan(leaves, 0.5, tree_seed);
            let lib = generators::module_library(&bench.tree, 3, lib_seed);
            let out = run(&bench.tree, &lib, &OptimizeConfig::default());
            let layout = realize(&bench.tree, &lib, &out.assignment).expect("valid");
            prop_assert_eq!(layout.area(), out.area);
            prop_assert_eq!(layout.validate(), None);
        }

        /// Selection never improves on the plain optimum and always stays
        /// realizable.
        #[test]
        fn selection_is_sound(tree_seed in 0u64..20, leaves in 5usize..12) {
            let bench = generators::random_floorplan(leaves, 0.6, tree_seed);
            let lib = generators::module_library(&bench.tree, 4, 77);
            let plain = run(&bench.tree, &lib, &OptimizeConfig::default());
            let cfg = OptimizeConfig::default()
                .with_r_selection(5)
                .with_l_selection(LReductionPolicy::new(12));
            let sel = run(&bench.tree, &lib, &cfg);
            prop_assert!(sel.area >= plain.area);
            let layout = realize(&bench.tree, &lib, &sel.assignment).expect("valid");
            prop_assert_eq!(layout.area(), sel.area);
        }
    }
}
