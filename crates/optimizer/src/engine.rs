//! The bottom-up optimization engine.

use core::fmt;
use std::time::{Duration, Instant};

use fp_geom::{Area, LShape, Rect};
use fp_select::{LReductionPolicy, RReductionPolicy};
use fp_shape::combine::{combine_with_provenance_scratch, Compose};
use fp_shape::{JoinScratch, LList, LListSet, RList};
use fp_tree::layout::Assignment;
use fp_tree::restructure::{restructure, BinNode, BinOp, BinaryTree};
use fp_tree::{FloorplanTree, ModuleLibrary, TreeError};

use fp_trace::{PhaseName, SolverKind, TraceEvent, Tracer};

use crate::cache::{policy_fingerprint, BlockCache, CachedBlock, CachedShapes};
use crate::governor::{CancelToken, FaultPlan, Governor, ResourceGovernor, Trip};
use crate::joins;

/// The engine-internal tracing handle: an optional [`Tracer`] plus the
/// emitting worker's id, threaded by value through the hot path. With
/// no tracer attached every emission is a `None` check; with an
/// unsubscribed tracer it is one more branch — either way cheap enough
/// to instrument unconditionally.
#[derive(Clone, Copy)]
pub(crate) struct TraceCtx<'a> {
    pub(crate) tracer: Option<&'a Tracer>,
    pub(crate) worker: u32,
}

impl<'a> TraceCtx<'a> {
    /// The main-thread context over an optional tracer.
    pub(crate) fn main(tracer: Option<&'a Tracer>) -> Self {
        TraceCtx { tracer, worker: 0 }
    }

    /// Whether events are actually recorded (gates the few emission
    /// sites that must compute extra data, like cache-eviction deltas).
    #[inline]
    pub(crate) fn on(&self) -> bool {
        self.tracer.is_some_and(Tracer::is_subscribed)
    }

    #[inline]
    pub(crate) fn emit(&self, event: TraceEvent) {
        if let Some(tracer) = self.tracer {
            tracer.emit(self.worker, event);
        }
    }

    /// Emits a completed [`PhaseName`] span.
    #[inline]
    pub(crate) fn phase(&self, name: PhaseName, dur: Duration) {
        self.emit(TraceEvent::Phase {
            name,
            dur_ns: u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX),
        });
    }
}

/// Saturating nanosecond conversion for event fields.
pub(crate) fn ns(dur: Duration) -> u64 {
    u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX)
}

/// What the optimizer minimizes over the root implementation list.
///
/// The bottom-up enumeration is objective-agnostic (it keeps every
/// non-redundant implementation), so the objective only decides which
/// root implementation is traced back — any monotone cost works.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Minimize the enveloping rectangle's area (the paper's objective).
    #[default]
    MinArea,
    /// Minimize the half-perimeter `w + h` (favours square floorplans;
    /// a common proxy for wirelength).
    MinHalfPerimeter,
}

impl Objective {
    /// The cost of a candidate envelope (lower is better); ties break
    /// towards smaller width for determinism.
    #[must_use]
    fn cost(self, r: Rect) -> (Area, u64) {
        match self {
            Objective::MinArea => (r.area(), r.w),
            Objective::MinHalfPerimeter => (r.half_perimeter(), r.w),
        }
    }
}

/// Configuration of an optimization run.
///
/// The default runs the plain DAC'90 algorithm (no selection) under a
/// 10-million-implementation budget — large enough for the small and
/// medium benchmarks, and the deterministic stand-in for the paper
/// machine's physical memory on the large ones.
#[derive(Debug, Clone)]
pub struct OptimizeConfig {
    /// `R_Selection` policy for rectangular blocks (`K₁`), if any.
    pub r_policy: Option<RReductionPolicy>,
    /// `L_Selection` policy for L-shaped blocks (`K₂`, θ, `S`), if any.
    pub l_policy: Option<LReductionPolicy>,
    /// Implementation budget; `None` is truly unlimited (can exhaust the
    /// host machine on large floorplans — that is the paper's point).
    pub memory_limit: Option<usize>,
    /// Cross-chain dominance pruning of L-blocks. `Some(t)` runs the cheap
    /// same-`w2` prune always and the full (quadratic worst case) 4-D
    /// prune while the block holds at most `t` implementations; `Some(0)`
    /// keeps only the cheap pass; `None` disables both (per-chain pruning
    /// only — an ablation mode that mimics a naive implementation).
    pub global_l_prune: Option<usize>,
    /// What to minimize at the root.
    pub objective: Objective,
    /// Fixed-outline constraint: only root implementations fitting inside
    /// this rectangle qualify. [`OptError::NoFeasibleOutline`] when none
    /// does.
    pub outline: Option<Rect>,
    /// When a budget (or injected fault) trips mid-block, retry the block
    /// under progressively stricter selection policies instead of failing.
    /// Every degradation is recorded in [`RunStats::degradations`].
    pub auto_rescue: bool,
    /// Wall-clock deadline for the whole run; [`OptError::DeadlineExceeded`]
    /// when it passes. Never rescued — time does not come back.
    pub deadline: Option<Duration>,
    /// Cooperative cancellation token; [`OptError::Cancelled`] once
    /// triggered. Never rescued.
    pub cancel: Option<CancelToken>,
    /// Deterministic fault-injection plan (testing aid): charges fail at
    /// the configured allocation ordinals as if the budget had tripped.
    pub fault_plan: Option<FaultPlan>,
    /// How many rescue retries the whole run may spend before the original
    /// trip is reported anyway.
    pub max_rescue_attempts: u32,
    /// Worker threads for the tree-level scheduler: `1` runs the classic
    /// serial bottom-up pass, `n > 1` dispatches independent sibling
    /// subtrees to a work-stealing pool of `n` threads, and `0` resolves
    /// to the host's available parallelism. Results are byte-identical to
    /// the serial path at any thread count (a run whose serial schedule
    /// would trip a resource limit is transparently re-run serially).
    /// Defaults to the `FP_THREADS` environment variable, else `1`.
    pub threads: usize,
    /// Scheduler split granularity, in restructured binary-tree nodes.
    /// Subtrees smaller than this run inline as one serial task instead
    /// of being split into per-node tasks, and whole trees smaller than
    /// [`OptimizeConfig::AUTO_SERIAL_FACTOR`] times this threshold skip
    /// the worker pool entirely (auto-serial) even when `threads > 1`.
    /// `0` disables both heuristics: per-node scheduling, never
    /// auto-serial (testing aid — results are identical either way).
    pub split_threshold: usize,
    /// Extra salt folded into the cache's policy fingerprint. `0` (the
    /// default) leaves the fingerprint byte-identical to earlier
    /// releases; multi-objective runs set it to the netlist fingerprint
    /// so area-only and wirelength-aware results never share cache
    /// addresses.
    pub extra_salt: u128,
}

impl OptimizeConfig {
    /// The default budget used by [`OptimizeConfig::default`].
    pub const DEFAULT_MEMORY_LIMIT: usize = 10_000_000;

    /// The default cross-chain pruning threshold.
    pub const DEFAULT_GLOBAL_L_PRUNE: usize = 50_000;

    /// The default scheduler split granularity (binary-tree nodes per
    /// inline task). Calibrated so a stolen task amortizes its queue
    /// round-trip over a few hundred joins rather than one.
    pub const DEFAULT_SPLIT_THRESHOLD: usize = 256;

    /// Whole trees below `AUTO_SERIAL_FACTOR * split_threshold` binary
    /// nodes resolve to the serial path even when `threads > 1`: at that
    /// size the pool spin-up, restructure-twice fallback risk, and
    /// steal traffic provably cost more than the parallelism returns.
    pub const AUTO_SERIAL_FACTOR: usize = 16;

    /// The default cap on run-wide rescue retries. Under a brutally tight
    /// budget every join of a large tree can trip once at the ladder's
    /// floor (re-selecting its operands each time), so the cap must
    /// comfortably exceed the ladder's rung count plus the block count of
    /// the paper's benchmarks.
    pub const DEFAULT_MAX_RESCUE_ATTEMPTS: u32 = 256;

    /// Plain run (no selection) with the default budget.
    #[must_use]
    pub fn plain() -> Self {
        OptimizeConfig {
            r_policy: None,
            l_policy: None,
            memory_limit: Some(Self::DEFAULT_MEMORY_LIMIT),
            global_l_prune: Some(Self::DEFAULT_GLOBAL_L_PRUNE),
            objective: Objective::MinArea,
            outline: None,
            auto_rescue: false,
            deadline: None,
            cancel: None,
            fault_plan: None,
            max_rescue_attempts: Self::DEFAULT_MAX_RESCUE_ATTEMPTS,
            threads: default_threads(),
            split_threshold: Self::DEFAULT_SPLIT_THRESHOLD,
            extra_salt: 0,
        }
    }

    /// Sets the scheduler thread count (`0` = available parallelism, `1`
    /// = serial). The thread count never changes results — only how the
    /// tree's independent subtrees are scheduled.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The effective worker count this configuration runs with: `0`
    /// resolves to the host's available parallelism at call time.
    #[must_use]
    pub fn resolved_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            n => n,
        }
    }

    /// Overrides the scheduler split granularity (see
    /// [`OptimizeConfig::split_threshold`]). `0` disables inline
    /// batching and the auto-serial fallback — every node becomes its
    /// own task, exactly the pre-granularity scheduler.
    #[must_use]
    pub fn with_split_threshold(mut self, threshold: usize) -> Self {
        self.split_threshold = threshold;
        self
    }

    /// `true` when a tree with `modules` leaf modules resolves to the
    /// serial path despite `threads > 1`: its restructured binary tree
    /// (`2·modules − 1` nodes) is below the auto-serial bound, where
    /// pool overhead cannot pay off. The decision never changes results
    /// — parallel and serial runs are byte-identical by contract.
    #[must_use]
    pub fn auto_serial_for(&self, modules: usize) -> bool {
        let bin_nodes = 2 * modules.max(1) - 1;
        self.resolved_threads() > 1
            && self.split_threshold > 0
            && bin_nodes
                < self
                    .split_threshold
                    .saturating_mul(Self::AUTO_SERIAL_FACTOR)
    }

    /// Sets the root objective.
    #[must_use]
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Constrains the floorplan to fit inside `outline`.
    #[must_use]
    pub fn with_outline(mut self, outline: Rect) -> Self {
        self.outline = Some(outline);
        self
    }

    /// Overrides the global L-block pruning threshold.
    #[must_use]
    pub fn with_global_l_prune(mut self, threshold: Option<usize>) -> Self {
        self.global_l_prune = threshold;
        self
    }

    /// Run with `R_Selection` at limit `k1`.
    #[must_use]
    pub fn with_r_selection(mut self, k1: usize) -> Self {
        self.r_policy = Some(RReductionPolicy::new(k1));
        self
    }

    /// Run with `L_Selection` under the given policy.
    #[must_use]
    pub fn with_l_selection(mut self, policy: LReductionPolicy) -> Self {
        self.l_policy = Some(policy);
        self
    }

    /// Overrides the implementation budget.
    #[must_use]
    pub fn with_memory_limit(mut self, limit: Option<usize>) -> Self {
        self.memory_limit = limit;
        self
    }

    /// Enables (or disables) the degrade-and-retry rescue ladder.
    #[must_use]
    pub fn with_auto_rescue(mut self, enabled: bool) -> Self {
        self.auto_rescue = enabled;
        self
    }

    /// Sets a wall-clock deadline for the run.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Attaches a cooperative cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, cancel: Option<CancelToken>) -> Self {
        self.cancel = cancel;
        self
    }

    /// Attaches a deterministic fault-injection plan.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: Option<FaultPlan>) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Caps run-wide rescue retries.
    #[must_use]
    pub fn with_max_rescue_attempts(mut self, attempts: u32) -> Self {
        self.max_rescue_attempts = attempts;
        self
    }

    /// Folds `salt` into the cache's policy fingerprint (see
    /// [`OptimizeConfig::extra_salt`]). `0` restores the default,
    /// salt-free fingerprint.
    #[must_use]
    pub fn with_extra_salt(mut self, salt: u128) -> Self {
        self.extra_salt = salt;
        self
    }

    /// Resolves every environment-sensitive knob to the concrete value
    /// the run will actually execute with. This is the **one documented
    /// precedence order** for configuration:
    ///
    /// 1. **explicit builder values** — [`OptimizeConfig::with_threads`]
    ///    and [`LReductionPolicy::with_workers`] always win;
    /// 2. **environment variables** — `$FP_THREADS` seeds the scheduler
    ///    default and `$FP_LRED_WORKERS` the standalone L-reduction
    ///    pool (both read once per process);
    /// 3. **defaults** — a serial scheduler, an all-cores L-reduction
    ///    pool.
    ///
    /// In the returned config `threads` is never `0` (available
    /// parallelism is resolved at call time) and any L-policy carries a
    /// concrete worker budget. Binaries, the batch server, and trace
    /// metadata echo this resolved config instead of re-deriving the
    /// precedence themselves. Resolution never changes results — only
    /// scheduling.
    #[must_use]
    pub fn resolve(&self) -> OptimizeConfig {
        let mut resolved = self.clone();
        resolved.threads = self.resolved_threads();
        resolved.l_policy = self.l_policy.clone().map(|l| {
            let workers = l.resolved_workers();
            l.with_workers(workers)
        });
        resolved
    }

    /// [`OptimizeConfig::resolve`] plus the tree-aware scheduling
    /// decision: when [`OptimizeConfig::auto_serial_for`] fires for
    /// `tree`'s module count, the returned config's `threads` is
    /// clamped to `1` — the worker count the run actually executes
    /// with. Binaries and the batch server echo this resolved view so
    /// "why didn't it parallelize?" is answerable from a reply alone.
    #[must_use]
    pub fn resolve_for(&self, tree: &FloorplanTree) -> OptimizeConfig {
        let mut resolved = self.resolve();
        if self.auto_serial_for(tree.module_count()) {
            resolved.threads = 1;
        }
        resolved
    }
}

impl Default for OptimizeConfig {
    fn default() -> Self {
        OptimizeConfig::plain()
    }
}

/// The process-wide default scheduler thread count: the `FP_THREADS`
/// environment variable when set to a valid `usize` (`0` = available
/// parallelism), else `1` (serial). Read once and cached — the CI matrix
/// uses this to run the whole test suite through the parallel scheduler
/// without touching every call site.
fn default_threads() -> usize {
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("FP_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(1)
    })
}

/// Errors reported by [`optimize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptError {
    /// The floorplan tree is structurally invalid.
    Tree(TreeError),
    /// The tree has no modules.
    EmptyFloorplan,
    /// A leaf references a module that is missing from the library.
    MissingModule {
        /// The module id.
        module: usize,
    },
    /// A module has an empty implementation list.
    NoImplementations {
        /// The module id.
        module: usize,
    },
    /// No root implementation fits inside the requested fixed outline.
    NoFeasibleOutline {
        /// The requested outline.
        outline: Rect,
        /// The smallest-area implementation that was available.
        best_available: Rect,
    },
    /// The implementation budget was exhausted — the reproduction of the
    /// paper's "\[9\] failed to run due to insufficient memory space".
    OutOfMemory {
        /// Implementations live at failure.
        live: usize,
        /// The configured budget.
        limit: usize,
        /// Peak live count reached before failing (the `> M` the paper
        /// reports for failed runs).
        peak: usize,
        /// The binary-tree block under construction when the budget
        /// tripped (an index into the restructured tree's node order).
        block: usize,
    },
    /// An injected fault point fired (deterministic stand-in for memory
    /// pressure; only produced under a configured [`FaultPlan`]).
    FaultInjected {
        /// The allocation ordinal that tripped.
        allocation: u64,
        /// The block under construction at the trip.
        block: usize,
        /// Implementations live at the trip.
        live: usize,
        /// Peak live count reached before the trip.
        peak: usize,
    },
    /// The wall-clock deadline passed before the run finished.
    DeadlineExceeded {
        /// Time elapsed when the trip was detected.
        elapsed: Duration,
        /// The configured deadline.
        deadline: Duration,
        /// The block under construction at the trip.
        block: usize,
    },
    /// The run's [`CancelToken`] was cancelled.
    Cancelled {
        /// The block under construction at the trip.
        block: usize,
    },
    /// An engine invariant was violated (a bug, not a user error).
    Internal {
        /// Which invariant broke.
        what: &'static str,
        /// The block under construction when it broke.
        block: usize,
    },
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::Tree(e) => write!(f, "invalid floorplan tree: {e}"),
            OptError::EmptyFloorplan => write!(f, "floorplan has no modules"),
            OptError::MissingModule { module } => write!(f, "module {module} missing from library"),
            OptError::NoImplementations { module } => {
                write!(f, "module {module} has no implementations")
            }
            OptError::NoFeasibleOutline {
                outline,
                best_available,
            } => write!(
                f,
                "no implementation fits the {outline} outline (best available: {best_available})"
            ),
            OptError::OutOfMemory {
                live,
                limit,
                peak,
                block,
            } => write!(
                f,
                "out of memory at block {block}: {live} implementations live (budget {limit}, peak {peak})"
            ),
            OptError::FaultInjected {
                allocation,
                block,
                live,
                peak,
            } => write!(
                f,
                "injected fault at allocation {allocation} (block {block}, {live} live, peak {peak})"
            ),
            OptError::DeadlineExceeded {
                elapsed,
                deadline,
                block,
            } => write!(
                f,
                "deadline exceeded at block {block}: {elapsed:?} elapsed (deadline {deadline:?})"
            ),
            OptError::Cancelled { block } => write!(f, "cancelled at block {block}"),
            OptError::Internal { what, block } => {
                write!(f, "internal invariant violated at block {block}: {what}")
            }
        }
    }
}

impl std::error::Error for OptError {}

impl From<TreeError> for OptError {
    fn from(e: TreeError) -> Self {
        OptError::Tree(e)
    }
}

/// Instrumentation of a run (the quantities of the paper's tables).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// `M`: the peak number of implementations stored at once.
    pub peak_impls: usize,
    /// Implementations still stored at the end of the run.
    pub final_impls: usize,
    /// Total candidates ever generated (pre-pruning).
    pub generated: u64,
    /// How many times `R_Selection` fired.
    pub r_reductions: usize,
    /// How many times the L-block reduction fired.
    pub l_reductions: usize,
    /// The largest rectangular block's final implementation count.
    pub max_r_block: usize,
    /// The largest L-shaped block's final implementation count — the
    /// paper's §5 observation is that this dwarfs [`RunStats::max_r_block`]
    /// on wheel-rich floorplans, which is why `L_Selection` exists.
    pub max_l_block: usize,
    /// Wall-clock time of the optimization proper.
    pub elapsed: Duration,
    /// Wall-clock spent inside the R/L selection kernels (a subset of
    /// [`RunStats::elapsed`]; on parallel runs it is the *sum* across
    /// workers and can exceed the wall-clock).
    pub selection_time: Duration,
    /// Every policy degradation the rescue ladder applied, in order.
    /// Empty when the run never tripped (or rescue was off).
    pub degradations: Vec<DegradationEvent>,
    /// Rescue retries spent (equals `degradations.len()` on success).
    pub rescue_attempts: u32,
    /// Join blocks reconstituted from a [`BlockCache`] instead of being
    /// rebuilt (always 0 on uncached runs). A cached block's candidates
    /// are never generated, so `generated`/`peak_impls` on warm runs
    /// undercount what a cold run would report.
    pub cache_hits: usize,
    /// Join blocks looked up in a [`BlockCache`] but rebuilt from scratch
    /// (always 0 on uncached runs). After `update_module` on one leaf,
    /// this equals the number of joins on the leaf's root path — the
    /// instrumented proof that incremental re-optimization rebuilds
    /// `O(depth)` blocks, not `O(n)`.
    pub cache_misses: usize,
}

/// Why the rescue ladder fired for one degradation step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RescueReason {
    /// The real implementation budget tripped.
    Budget {
        /// Implementations live at the trip.
        live: usize,
        /// The configured budget.
        limit: usize,
    },
    /// An injected fault point fired.
    Fault {
        /// The allocation ordinal that tripped.
        allocation: u64,
    },
}

impl fmt::Display for RescueReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RescueReason::Budget { live, limit } => {
                write!(f, "budget exhausted ({live} live > {limit})")
            }
            RescueReason::Fault { allocation } => {
                write!(f, "injected fault at allocation {allocation}")
            }
        }
    }
}

/// One rung of the rescue ladder: the policies the run degraded *to*
/// after a trip. The sequence across a run is monotone — `k1`/`k2` never
/// grow, θ never shrinks — so the report reads as a tightening schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradationEvent {
    /// The block whose construction tripped.
    pub block: usize,
    /// 1-based attempt number across the whole run.
    pub attempt: u32,
    /// What tripped.
    pub reason: RescueReason,
    /// Implementations live at the moment of the trip (before rollback).
    pub live_at_trip: usize,
    /// `R_Selection` limit `K₁` now in force, if any.
    pub k1: Option<usize>,
    /// `L_Selection` limit `K₂` now in force, if any.
    pub k2: Option<usize>,
    /// `L_Selection` trigger θ now in force, in thousandths (1000 = 1.0).
    pub theta_millis: u32,
    /// `L_Selection` heuristic prefilter `S` now in force, if any.
    pub prefilter: Option<usize>,
}

impl fmt::Display for DegradationEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "block {} attempt {}: {} -> K1={}, K2={}, theta={}.{:03}, prefilter {}",
            self.block,
            self.attempt,
            self.reason,
            self.k1.map_or_else(|| "off".into(), |k| k.to_string()),
            self.k2.map_or_else(|| "off".into(), |k| k.to_string()),
            self.theta_millis / 1000,
            self.theta_millis % 1000,
            self.prefilter
                .map_or_else(|| "off".into(), |s| s.to_string()),
        )
    }
}

/// A successful run plus its fault-tolerance report: whether the rescue
/// ladder fired and what it degraded. Returned by [`optimize_report`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// The optimization result (its `stats.degradations` carries the
    /// full degradation log).
    pub outcome: Outcome,
    /// Whether the rescue ladder fired at least once.
    pub rescued: bool,
}

impl RunOutcome {
    /// The degradation log, in the order the ladder applied it.
    #[must_use]
    pub fn degradations(&self) -> &[DegradationEvent] {
        &self.outcome.stats.degradations
    }
}

/// The result of a successful optimization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// The minimal floorplan area found.
    pub area: Area,
    /// The enveloping rectangle realizing it.
    pub root_impl: Rect,
    /// One implementation choice per module (in
    /// [`FloorplanTree::leaves_in_order`] order), realizable via
    /// [`fp_tree::layout::realize`].
    pub assignment: Assignment,
    /// Run instrumentation.
    pub stats: RunStats,
}

/// Borrowed view of an L-block: shapes, provenance, chain segments.
type LView<'a> = (&'a [LShape], &'a [(u32, u32)], &'a [(u32, u32)]);

/// Borrowed view of a rectangular block: list and provenance.
type RectView<'a> = (&'a RList, &'a [(u32, u32)]);

/// Per-node shape storage. `prov` maps each stored implementation to the
/// indices of the child implementations that produced it (empty at
/// leaves, where the index itself is the module's implementation choice).
pub(crate) enum Shapes {
    Rect {
        list: RList,
        prov: Vec<(u32, u32)>,
    },
    L {
        shapes: Vec<LShape>,
        prov: Vec<(u32, u32)>,
        /// Contiguous `(start, end)` chain segments; each is an
        /// irreducible L-list.
        chains: Vec<(u32, u32)>,
    },
}

impl Shapes {
    pub(crate) fn len(&self) -> usize {
        match self {
            Shapes::Rect { list, .. } => list.len(),
            Shapes::L { shapes, .. } => shapes.len(),
        }
    }

    fn as_rect(&self) -> Result<RectView<'_>, Trip> {
        match self {
            Shapes::Rect { list, prov } => Ok((list, prov)),
            Shapes::L { .. } => Err(Trip::Internal("expected a rectangular block")),
        }
    }

    fn as_l(&self) -> Result<LView<'_>, Trip> {
        match self {
            Shapes::L {
                shapes,
                prov,
                chains,
            } => Ok((shapes, prov, chains)),
            Shapes::Rect { .. } => Err(Trip::Internal("expected an L-shaped block")),
        }
    }
}

/// Fallback for [`Frontier::envelopes`] should the root block ever not be
/// rectangular — `optimize_frontier` verifies that invariant before
/// constructing a [`Frontier`], so this is unreachable in practice but
/// keeps the accessor panic-free.
static EMPTY_RLIST: RList = RList::new();

/// The full solution frontier of an optimization run: every non-redundant
/// implementation of the whole floorplan, each traceable to a realizable
/// per-module assignment.
///
/// The root R-list is the floorplan's *feasible-envelope trade-off curve*
/// (every width/height compromise the topology admits); a [`Frontier`]
/// lets callers query it repeatedly — different objectives, different
/// fixed outlines — without re-running the bottom-up enumeration.
///
/// # Example
///
/// ```
/// use fp_geom::Rect;
/// use fp_optimizer::{Objective, OptimizeConfig, Optimizer};
/// use fp_tree::generators;
///
/// let bench = generators::fig1();
/// let lib = generators::module_library(&bench.tree, 4, 2);
/// let frontier = Optimizer::new(&bench.tree, &lib)
///     .config(&OptimizeConfig::default())
///     .run_frontier()?;
/// let free = frontier.best(Objective::MinArea, None)?;
/// // Any envelope on the frontier traces back to a concrete assignment.
/// for i in 0..frontier.envelopes().len() {
///     let out = frontier.outcome(i);
///     assert_eq!(out.root_impl, frontier.envelopes()[i]);
/// }
/// assert!(frontier.best(Objective::MinArea, Some(Rect::new(1, 1))).is_err());
/// # drop(free);
/// # Ok::<(), fp_optimizer::OptError>(())
/// ```
pub struct Frontier {
    bin: BinaryTree,
    store: Vec<Shapes>,
    stats: RunStats,
    /// Maps tree leaf ids to assignment slots.
    slot_of: Vec<usize>,
    leaves: usize,
}

impl Frontier {
    /// Assembles a frontier from the scheduler's parts (same crate only;
    /// the public constructors are [`optimize_frontier`] and friends).
    pub(crate) fn from_parts(
        bin: BinaryTree,
        store: Vec<Shapes>,
        stats: RunStats,
        slot_of: Vec<usize>,
        leaves: usize,
    ) -> Self {
        Frontier {
            bin,
            store,
            stats,
            slot_of,
            leaves,
        }
    }

    /// The non-redundant envelope implementations of the whole floorplan
    /// (width descending).
    #[must_use]
    pub fn envelopes(&self) -> &RList {
        match self.store.get(self.bin.root()) {
            Some(Shapes::Rect { list, .. }) => list,
            _ => {
                debug_assert!(false, "frontier root is always rectangular");
                &EMPTY_RLIST
            }
        }
    }

    /// Run statistics of the enumeration that built this frontier.
    #[must_use]
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Traces the `index`-th envelope back to a full outcome.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for [`Frontier::envelopes`].
    #[must_use]
    pub fn outcome(&self, index: usize) -> Outcome {
        let envelope = self.envelopes()[index];
        let assignment = trace_back_with(&self.bin, &self.store, index, &self.slot_of, self.leaves);
        Outcome {
            area: envelope.area(),
            root_impl: envelope,
            assignment,
            stats: self.stats.clone(),
        }
    }

    /// The best outcome under `objective`, optionally constrained to fit
    /// `outline`.
    ///
    /// # Errors
    ///
    /// [`OptError::NoFeasibleOutline`] when no envelope fits `outline`.
    pub fn best(&self, objective: Objective, outline: Option<Rect>) -> Result<Outcome, OptError> {
        let list = self.envelopes();
        let pick = list
            .iter()
            .enumerate()
            .filter(|(_, r)| outline.is_none_or(|o| r.fits_in(o)))
            .min_by_key(|(_, r)| objective.cost(**r))
            .map(|(i, _)| i);
        match pick {
            Some(i) => Ok(self.outcome(i)),
            None => {
                // Only the outline filter can empty a non-empty list, and
                // joins of non-empty lists are non-empty — but report a
                // typed internal error rather than panic if either fails.
                let best_available = list.iter().copied().min_by_key(|r| r.area());
                match (outline, best_available) {
                    (Some(outline), Some(best_available)) => Err(OptError::NoFeasibleOutline {
                        outline,
                        best_available,
                    }),
                    _ => Err(OptError::Internal {
                        what: "solution frontier is empty",
                        block: self.bin.root(),
                    }),
                }
            }
        }
    }
}

/// The unified optimizer facade: one builder over every execution
/// regime — serial, work-stealing parallel, content-addressed caching,
/// and structured tracing — replacing the historical `optimize*`
/// entry-point family.
///
/// ```
/// use fp_optimizer::{Optimizer, OptimizeConfig};
/// use fp_tree::generators;
///
/// let bench = generators::fp1();
/// let library = generators::module_library(&bench.tree, 4, 1);
/// let outcome = Optimizer::new(&bench.tree, &library)
///     .config(&OptimizeConfig::default())
///     .run_best()?;
/// assert!(outcome.area > 0);
/// # Ok::<(), fp_optimizer::OptError>(())
/// ```
///
/// Attach a cache ([`Optimizer::cache`]) to memoize committed join
/// blocks across runs, and a tracer ([`Optimizer::tracer`]) to collect
/// the structured event stream (joins, selections with solver kinds,
/// cache traffic, steals, rescues) for JSON-lines export, metrics, or
/// the per-phase profiler. Neither changes results: every combination
/// is byte-identical to the plain serial run.
#[derive(Clone)]
pub struct Optimizer<'a> {
    pub(crate) tree: &'a FloorplanTree,
    pub(crate) library: &'a ModuleLibrary,
    pub(crate) config: OptimizeConfig,
    pub(crate) cache: Option<&'a (dyn BlockCache + Sync)>,
    pub(crate) tracer: Option<&'a Tracer>,
}

impl<'a> Optimizer<'a> {
    /// A facade over `tree`/`library` with the default configuration,
    /// no cache, and no tracer.
    #[must_use]
    pub fn new(tree: &'a FloorplanTree, library: &'a ModuleLibrary) -> Self {
        Optimizer {
            tree,
            library,
            config: OptimizeConfig::default(),
            cache: None,
            tracer: None,
        }
    }

    /// Sets the run configuration (cloned; the builder owns its copy).
    #[must_use]
    pub fn config(mut self, config: &OptimizeConfig) -> Self {
        self.config = config.clone();
        self
    }

    /// Attaches a content-addressed [`BlockCache`], consulted before —
    /// and populated after — every join block build. Every join block
    /// of the restructured tree is addressed by its canonical
    /// fingerprint (child fingerprints + combining op + module lists +
    /// [`policy_fingerprint`]); a hit short-circuits the block's
    /// enumeration, pruning, and selection entirely. Caching is
    /// disabled for the remainder of a run at the first resource trip:
    /// rescued blocks are built under tightened policies that no longer
    /// match the address salt.
    #[must_use]
    pub fn cache(mut self, cache: &'a (dyn BlockCache + Sync)) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Attaches a [`Tracer`]: the run emits the structured event
    /// vocabulary (`join_start`/`join_done`, `selection` with the CSPP
    /// solver kind, `cache_hit`/`miss`/`evict`, `steal`,
    /// `replay_discard`, `rescue`, `deadline_trip`, phase spans) into
    /// its ring buffers. An unsubscribed tracer costs one branch per
    /// emission site; tracing never changes results.
    #[must_use]
    pub fn tracer(mut self, tracer: &'a Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Runs the bottom-up enumeration and returns the whole solution
    /// [`Frontier`] (every non-redundant root implementation), for
    /// querying several objectives/outlines from one enumeration.
    ///
    /// # Errors
    ///
    /// See [`OptError`]; outline infeasibility is deferred to
    /// [`Frontier::best`].
    pub fn run_frontier(self) -> Result<Frontier, OptError> {
        optimize_frontier_impl(
            self.tree,
            self.library,
            &self.config,
            self.cache,
            self.tracer,
        )
    }

    /// Runs the optimizer and returns the best implementation under the
    /// configured objective and outline (exact when no selection policy
    /// is configured; near-optimal under selection), together with a
    /// realizable per-module assignment and run statistics.
    ///
    /// # Errors
    ///
    /// See [`OptError`]; in particular [`OptError::OutOfMemory`]
    /// reproduces the paper's memory-exhaustion failures
    /// deterministically.
    pub fn run_best(self) -> Result<Outcome, OptError> {
        let objective = self.config.objective;
        let outline = self.config.outline;
        let tc = TraceCtx::main(self.tracer);
        let frontier = self.run_frontier()?;
        let started = Instant::now();
        let best = frontier.best(objective, outline);
        tc.phase(PhaseName::TraceBack, started.elapsed());
        best
    }

    /// Like [`Optimizer::run_best`], wrapped in a [`RunOutcome`]
    /// carrying the fault-tolerance report (whether the rescue ladder
    /// fired, and the full degradation log in
    /// `outcome.stats.degradations`).
    ///
    /// # Errors
    ///
    /// Same as [`Optimizer::run_best`].
    pub fn run(self) -> Result<RunOutcome, OptError> {
        let outcome = self.run_best()?;
        let rescued = !outcome.stats.degradations.is_empty();
        Ok(RunOutcome { outcome, rescued })
    }
}

fn optimize_frontier_impl(
    tree: &FloorplanTree,
    library: &ModuleLibrary,
    config: &OptimizeConfig,
    cache: Option<&(dyn BlockCache + Sync)>,
    tracer: Option<&Tracer>,
) -> Result<Frontier, OptError> {
    let start = Instant::now();
    if config.resolved_threads() > 1 && !config.auto_serial_for(tree.module_count()) {
        // The scheduler returns `None` whenever the serial path must run
        // instead — tiny trees, invalid inputs (whose error order the
        // serial loop defines), or a run whose serial schedule would trip
        // a resource limit (the rescue ladder is inherently sequential).
        if let Some(frontier) =
            crate::sched::try_parallel(tree, library, config, cache, start, tracer)?
        {
            return Ok(frontier);
        }
    }
    serial_frontier(tree, library, config, cache, start, TraceCtx::main(tracer))
}

/// The classic serial bottom-up pass. `start` is the run's epoch: the
/// parallel scheduler backdates it when falling back so deadlines keep
/// their original budget.
pub(crate) fn serial_frontier(
    tree: &FloorplanTree,
    library: &ModuleLibrary,
    config: &OptimizeConfig,
    cache: Option<&(dyn BlockCache + Sync)>,
    start: Instant,
    tc: TraceCtx<'_>,
) -> Result<Frontier, OptError> {
    let restructure_started = Instant::now();
    let bin = restructure(tree)?;
    tc.phase(PhaseName::Restructure, restructure_started.elapsed());
    if bin.is_empty() {
        return Err(OptError::EmptyFloorplan);
    }

    // Canonical block addresses, only when a cache is wired in. The salt
    // folds in every configuration knob that can change committed block
    // content, so differently configured runs never alias.
    let fps = cache.map(|_| {
        fp_tree::fingerprint::block_fingerprints(&bin, library, policy_fingerprint(config))
    });
    // Lookups and stores stop at the first resource trip: blocks rebuilt
    // by the rescue ladder deviate from the salt's policies.
    let mut caching = cache.is_some();

    let mut gov = ResourceGovernor::new(config.memory_limit)
        .with_start(start)
        .with_deadline(config.deadline)
        .with_cancel(config.cancel.clone())
        .with_faults(config.fault_plan.clone());
    let mut stats = RunStats::default();
    let mut scratch = JoinScratch::new();
    // The policies actually in force; the rescue ladder tightens these.
    let mut eff = EffectivePolicies {
        r: config.r_policy,
        l: config.l_policy.clone(),
    };

    // Each block's consuming join (usize::MAX for the root): blocks whose
    // parent has not been built yet form the committed *frontier*, the
    // set the rescue ladder may legally re-select (consumed blocks must
    // keep their lists — their parents' provenance indexes into them).
    let mut parent = vec![usize::MAX; bin.len()];
    for (i, n) in bin.nodes().iter().enumerate() {
        if let BinNode::Join { left, right, .. } = n {
            parent[*left] = i;
            parent[*right] = i;
        }
    }

    // Bottom-up evaluation over the topologically ordered binary nodes.
    let enumerate_started = Instant::now();
    // Eviction counts are only observable as deltas of the cache's own
    // stats, and only worth polling when someone is listening.
    let mut last_evictions = if tc.on() {
        cache.and_then(BlockCache::stats).map(|s| s.evictions)
    } else {
        None
    };
    let mut store: Vec<Shapes> = Vec::with_capacity(bin.len());
    for (index, node) in bin.nodes().iter().enumerate() {
        // Input validation happens once, outside the retry loop: these
        // errors are not resource trips and are never rescued.
        if let BinNode::Leaf { module, .. } = node {
            let m = library
                .get(*module)
                .ok_or(OptError::MissingModule { module: *module })?;
            if m.implementations().is_empty() {
                return Err(OptError::NoImplementations { module: *module });
            }
        }

        let node_fp = fps.as_ref().and_then(|f| f.get(index)).copied();
        let shapes = loop {
            let result = gov.poll().and_then(|()| {
                // Per-block cache hook: a hit replaces the whole
                // build/prune/select pipeline with a reconstitution of
                // the committed list (still charged against the budget —
                // cached implementations are as live as built ones).
                if caching && matches!(node, BinNode::Join { .. }) {
                    if let (Some(cache), Some(fp)) = (cache, node_fp) {
                        if let Some(hit) = cache.lookup(fp) {
                            gov.charge(hit.len())?;
                            stats.cache_hits += 1;
                            tc.emit(TraceEvent::CacheHit {
                                node: index as u32,
                                len: hit.len() as u32,
                            });
                            stats.degradations.extend(hit.degradations.iter().cloned());
                            return cached_to_shapes(hit.shapes);
                        }
                        stats.cache_misses += 1;
                        tc.emit(TraceEvent::CacheMiss { node: index as u32 });
                    }
                }
                match node {
                    BinNode::Leaf { module, .. } => {
                        // Validated above; re-fetch to keep the borrow local.
                        let list = library.get(*module).map(|m| m.implementations().clone());
                        match list {
                            Some(list) => {
                                gov.charge(list.len())?;
                                Ok(Shapes::Rect {
                                    list,
                                    prov: Vec::new(),
                                })
                            }
                            None => Err(Trip::Internal("leaf module vanished mid-run")),
                        }
                    }
                    BinNode::Join { op, left, right } => {
                        let shapes = build_join(
                            *op,
                            &store[*left],
                            &store[*right],
                            config,
                            &eff,
                            &mut gov,
                            &mut stats,
                            &mut scratch,
                            index as u32,
                            tc,
                        )?;
                        if caching {
                            if let (Some(cache), Some(fp)) = (cache, node_fp) {
                                cache.store(fp, shapes_to_cached(&shapes));
                                if let Some(last) = last_evictions.as_mut() {
                                    let now = cache.stats().map_or(*last, |s| s.evictions);
                                    if now > *last {
                                        tc.emit(TraceEvent::CacheEvict { count: now - *last });
                                        *last = now;
                                    }
                                }
                            }
                        }
                        Ok(shapes)
                    }
                }
            });
            match result {
                Ok(shapes) => break shapes,
                Err(trip) => {
                    caching = false;
                    let live_at_trip = gov.live();
                    gov.abort_block();
                    if matches!(trip, Trip::Deadline { .. }) {
                        tc.emit(TraceEvent::DeadlineTrip {
                            block: index as u32,
                            elapsed_ns: ns(start.elapsed()),
                        });
                    }
                    let exhausted = stats.rescue_attempts >= config.max_rescue_attempts;
                    if !(config.auto_rescue && trip.is_rescuable()) || exhausted {
                        return Err(trip_error(trip, index, live_at_trip, gov.peak()));
                    }
                    let tightened = tighten(&mut eff);
                    // Post-hoc selection on the retried block cannot avoid
                    // a mid-generation trip (candidates are charged before
                    // policies fire), so shrink the *inputs*: re-select
                    // every frontier block (this join's operands and all
                    // committed blocks awaiting a future join) under the
                    // tightened policies. Subsetting list+prov in place
                    // keeps the grandchild provenance indices valid.
                    let live_before = gov.live();
                    for (b, shapes) in store.iter_mut().enumerate() {
                        if parent.get(b).is_none_or(|&p| p < index) {
                            continue; // consumed: its parent's prov needs it
                        }
                        reselect_committed(
                            shapes,
                            &eff,
                            &mut gov,
                            &mut stats,
                            &mut scratch,
                            b as u32,
                            tc,
                        )
                        .map_err(|t| trip_error(t, b, gov.live(), gov.peak()))?;
                    }
                    // Progress requires a new rung on the ladder or freed
                    // capacity from the operand re-selection; with neither,
                    // the retry would trip identically — give up.
                    if !tightened && gov.live() >= live_before {
                        return Err(trip_error(trip, index, live_at_trip, gov.peak()));
                    }
                    stats.rescue_attempts += 1;
                    let reason = match &trip {
                        Trip::Budget(e) => RescueReason::Budget {
                            live: e.live,
                            limit: e.limit,
                        },
                        Trip::Fault { allocation } => RescueReason::Fault {
                            allocation: *allocation,
                        },
                        // Unreachable: non-rescuable trips returned above.
                        _ => RescueReason::Budget {
                            live: live_at_trip,
                            limit: gov.limit().unwrap_or(0),
                        },
                    };
                    tc.emit(TraceEvent::Rescue {
                        block: index as u32,
                        attempt: stats.rescue_attempts,
                        live: live_at_trip as u64,
                    });
                    stats.degradations.push(DegradationEvent {
                        block: index,
                        attempt: stats.rescue_attempts,
                        reason,
                        live_at_trip,
                        k1: eff.r.as_ref().map(RReductionPolicy::limit),
                        k2: eff.l.as_ref().map(LReductionPolicy::k2),
                        theta_millis: eff.l.as_ref().map_or(1000, |l| theta_millis(l.theta())),
                        prefilter: eff.l.as_ref().and_then(LReductionPolicy::prefilter),
                    });
                }
            }
        };

        match &shapes {
            Shapes::Rect { list, .. } => {
                if !matches!(node, BinNode::Leaf { .. }) {
                    stats.max_r_block = stats.max_r_block.max(list.len());
                }
            }
            Shapes::L { shapes: l, .. } => {
                stats.max_l_block = stats.max_l_block.max(l.len());
            }
        }
        gov.commit(shapes.len());
        store.push(shapes);
    }

    // The restructured root is always a rectangular block; verify rather
    // than assume so `Frontier::envelopes` stays panic-free.
    if !matches!(store.get(bin.root()), Some(Shapes::Rect { .. })) {
        return Err(OptError::Internal {
            what: "root block is not rectangular",
            block: bin.root(),
        });
    }

    stats.peak_impls = gov.peak();
    stats.final_impls = gov.live();
    stats.generated = gov.generated();
    stats.elapsed = start.elapsed();
    // Enumerate covers the whole bottom-up pass; Selection (accumulated
    // by `select_shapes`) and Run mirror `RunStats` exactly so the
    // profile reconciles with the stats report to the nanosecond.
    tc.phase(PhaseName::Enumerate, enumerate_started.elapsed());
    tc.phase(PhaseName::Selection, stats.selection_time);
    tc.phase(PhaseName::Run, stats.elapsed);

    // Map tree leaf node ids to assignment slots once, for all trace-backs.
    let leaves = tree.leaves_in_order();
    let mut slot_of = vec![usize::MAX; tree.len()];
    for (slot, &leaf) in leaves.iter().enumerate() {
        slot_of[leaf] = slot;
    }

    Ok(Frontier {
        bin,
        store,
        stats,
        slot_of,
        leaves: leaves.len(),
    })
}

/// Snapshot of a committed block for the cross-run cache (clones the
/// lists: the cache must not alias the run's own store, which the rescue
/// ladder may later re-select in place).
pub(crate) fn shapes_to_cached(shapes: &Shapes) -> CachedBlock {
    let shapes = match shapes {
        Shapes::Rect { list, prov } => CachedShapes::Rect {
            rects: list.as_slice().to_vec(),
            prov: prov.clone(),
        },
        Shapes::L {
            shapes,
            prov,
            chains,
        } => CachedShapes::L {
            shapes: shapes.clone(),
            prov: prov.clone(),
            chains: chains.clone(),
        },
    };
    CachedBlock {
        shapes,
        degradations: Vec::new(),
    }
}

/// Reconstitutes a cached block into per-node storage, revalidating the
/// staircase invariant the rest of the engine relies on.
pub(crate) fn cached_to_shapes(shapes: CachedShapes) -> Result<Shapes, Trip> {
    match shapes {
        CachedShapes::Rect { rects, prov } => {
            let list = RList::from_sorted(rects)
                .map_err(|_| Trip::Internal("cached rectangular block is not a staircase"))?;
            Ok(Shapes::Rect { list, prov })
        }
        CachedShapes::L {
            shapes,
            prov,
            chains,
        } => Ok(Shapes::L {
            shapes,
            prov,
            chains,
        }),
    }
}

/// The selection policies currently in force — starts as the configured
/// pair and only ever tightens (the rescue ladder's state).
#[derive(Clone)]
pub(crate) struct EffectivePolicies {
    pub(crate) r: Option<RReductionPolicy>,
    pub(crate) l: Option<LReductionPolicy>,
}

/// θ as thousandths, for the integer-only degradation report.
fn theta_millis(theta: f64) -> u32 {
    (theta * 1000.0).round() as u32
}

/// Floor below which the ladder refuses to halve a selection limit.
const POLICY_FLOOR: usize = 2;
/// `K₁` introduced by the first rung when `R_Selection` was off.
const RESCUE_SEED_K1: usize = 32;
/// `K₂` introduced by the first rung when `L_Selection` was off.
const RESCUE_SEED_K2: usize = 128;
/// Prefilter `S` introduced alongside [`RESCUE_SEED_K2`].
const RESCUE_SEED_PREFILTER: usize = 256;

/// One rung down the rescue ladder: tightens the effective policies
/// monotonically. Returns `false` when already at the floor (the ladder
/// is out of rungs and the trip must be reported).
fn tighten(eff: &mut EffectivePolicies) -> bool {
    let mut changed = false;
    match &mut eff.r {
        None => {
            eff.r = Some(RReductionPolicy::new(RESCUE_SEED_K1));
            changed = true;
        }
        Some(r) => {
            let k1 = r.limit();
            if k1 > POLICY_FLOOR {
                *r = RReductionPolicy::new((k1 / 2).max(POLICY_FLOOR));
                changed = true;
            }
        }
    }
    match &mut eff.l {
        None => {
            eff.l =
                Some(LReductionPolicy::new(RESCUE_SEED_K2).with_prefilter(RESCUE_SEED_PREFILTER));
            changed = true;
        }
        Some(l) => {
            let mut k2 = l.k2();
            let mut theta = l.theta();
            let mut prefilter = l.prefilter();
            let metric = l.metric();
            let parallel = l.parallel();
            let workers = l.workers();
            // Tighten the trigger and the heuristic first, then the limit.
            if theta < 1.0 {
                theta = 1.0;
                changed = true;
            } else if prefilter.is_none() {
                prefilter = Some(2 * k2.max(POLICY_FLOOR));
                changed = true;
            } else if k2 > POLICY_FLOOR {
                k2 = (k2 / 2).max(POLICY_FLOOR);
                changed = true;
            }
            let mut next = LReductionPolicy::new(k2)
                .with_theta(theta)
                .with_metric(metric)
                .with_parallel(parallel);
            if let Some(w) = workers {
                next = next.with_workers(w);
            }
            if let Some(s) = prefilter {
                next = next.with_prefilter(s.max(k2));
            }
            *l = next;
        }
    }
    changed
}

/// Maps a governor [`Trip`] to the public error for the block it stopped.
pub(crate) fn trip_error(trip: Trip, block: usize, live: usize, peak: usize) -> OptError {
    match trip {
        Trip::Budget(e) => OptError::OutOfMemory {
            live: e.live,
            limit: e.limit,
            peak,
            block,
        },
        Trip::Fault { allocation } => OptError::FaultInjected {
            allocation,
            block,
            live,
            peak,
        },
        Trip::Deadline { elapsed, deadline } => OptError::DeadlineExceeded {
            elapsed,
            deadline,
            block,
        },
        Trip::Cancelled => OptError::Cancelled { block },
        Trip::Internal(what) => OptError::Internal { what, block },
    }
}

/// Builds one join block under the governor: dispatch to the join kind,
/// then global pruning and the effective selection policies. Generic
/// over [`Governor`] so the serial loop and the scheduler's per-worker
/// governors share one copy of the join machinery; `scratch` is the
/// caller's reusable join arena (one per worker).
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_join<G: Governor>(
    op: BinOp,
    left: &Shapes,
    right: &Shapes,
    config: &OptimizeConfig,
    eff: &EffectivePolicies,
    gov: &mut G,
    stats: &mut RunStats,
    scratch: &mut JoinScratch,
    node: u32,
    tc: TraceCtx<'_>,
) -> Result<Shapes, Trip> {
    tc.emit(TraceEvent::JoinStart {
        node,
        left_len: left.len() as u32,
        right_len: right.len() as u32,
    });
    let started = tc.on().then(Instant::now);
    let mut shapes = match op {
        BinOp::Slice(how) => slice_join(left, right, how, gov, scratch)?,
        BinOp::WheelS1 => wheel_s1(left, right, gov)?,
        BinOp::WheelS2 => wheel_s23(left, right, joins::stage2, gov)?,
        BinOp::WheelS3 => wheel_s3(left, right, gov)?,
        BinOp::WheelS4 => wheel_s4(left, right, gov)?,
    };
    global_l_prune(&mut shapes, config, gov, scratch);
    let dropped = select_shapes(&mut shapes, eff, stats, scratch, node, tc)?;
    gov.discard(dropped);
    if let Some(started) = started {
        tc.emit(TraceEvent::JoinDone {
            node,
            out_len: shapes.len() as u32,
            dur_ns: ns(started.elapsed()),
        });
    }
    Ok(shapes)
}

/// Slicing combination of two rectangular blocks (Stockmeyer merge).
fn slice_join<G: Governor>(
    left: &Shapes,
    right: &Shapes,
    how: Compose,
    meter: &mut G,
    scratch: &mut JoinScratch,
) -> Result<Shapes, Trip> {
    let (a, _) = left.as_rect()?;
    let (b, _) = right.as_rect()?;
    let combined = combine_with_provenance_scratch(a, b, how, scratch);
    meter.charge(combined.len())?;
    let rects: Vec<Rect> = combined.iter().map(|c| c.rect).collect();
    let prov: Vec<(u32, u32)> = combined
        .iter()
        .map(|c| (c.left as u32, c.right as u32))
        .collect();
    let list = RList::from_sorted(rects)
        .map_err(|_| Trip::Internal("Stockmeyer merge output is not a staircase"))?;
    Ok(Shapes::Rect { list, prov })
}

/// Incremental within-chain dominance pruning for L-shape chains whose
/// candidates arrive with `w1` non-increasing, `w2` constant, and
/// `(h1, h2)` non-decreasing: a tie in `w1` makes the newcomer redundant;
/// a tie in both heights makes the previous element redundant.
fn push_l_chain<G: Governor>(
    shapes: &mut Vec<LShape>,
    prov: &mut Vec<(u32, u32)>,
    chain_start: usize,
    cand: LShape,
    p: (u32, u32),
    meter: &mut G,
) -> Result<(), Trip> {
    meter.charge(1)?;
    if shapes.len() > chain_start {
        let last = shapes[shapes.len() - 1];
        debug_assert_eq!(last.w2, cand.w2);
        debug_assert!(cand.w1 <= last.w1 && cand.h1 >= last.h1 && cand.h2 >= last.h2);
        if cand.w1 == last.w1 {
            meter.discard(1);
            return Ok(()); // cand dominates last: redundant
        }
        if cand.h1 == last.h1 && cand.h2 == last.h2 {
            shapes.pop();
            prov.pop();
            meter.discard(1); // last dominated cand: last redundant
        }
    }
    shapes.push(cand);
    prov.push(p);
    Ok(())
}

/// Same pruning discipline for rectangle chains (`w` non-increasing,
/// `h` non-decreasing).
fn push_rect_chain<G: Governor>(
    out: &mut Vec<(Rect, (u32, u32))>,
    chain_start: usize,
    cand: Rect,
    p: (u32, u32),
    meter: &mut G,
) -> Result<(), Trip> {
    meter.charge(1)?;
    if out.len() > chain_start {
        let (last, _) = out[out.len() - 1];
        debug_assert!(cand.w <= last.w && cand.h >= last.h);
        if cand.w == last.w {
            meter.discard(1);
            return Ok(());
        }
        if cand.h == last.h {
            out.pop();
            meter.discard(1);
        }
    }
    out.push((cand, p));
    Ok(())
}

/// Wheel stage 1: `A × E → L`. One chain per `A` implementation.
fn wheel_s1<G: Governor>(left: &Shapes, right: &Shapes, meter: &mut G) -> Result<Shapes, Trip> {
    let (a_list, _) = left.as_rect()?;
    let (e_list, _) = right.as_rect()?;
    // Capacity hints are part of the new allocation discipline; the
    // legacy ablation keeps the pre-SoA from-zero growth.
    let hint = if fp_shape::legacy::legacy_kernels() {
        0
    } else {
        a_list.len() + e_list.len()
    };
    let mut shapes = Vec::with_capacity(hint);
    let mut prov = Vec::with_capacity(hint);
    let mut chains = Vec::with_capacity(hint.min(a_list.len()));
    for (ai, &a) in a_list.iter().enumerate() {
        let start = shapes.len();
        for (ei, &e) in e_list.iter().enumerate() {
            push_l_chain(
                &mut shapes,
                &mut prov,
                start,
                joins::stage1(a, e),
                (ai as u32, ei as u32),
                meter,
            )?;
        }
        if shapes.len() > start {
            chains.push((start as u32, shapes.len() as u32));
        }
    }
    Ok(Shapes::L {
        shapes,
        prov,
        chains,
    })
}

/// Wheel stage 2 (and the shared machinery): for each stored L
/// implementation, a chain over the attached arm's R-list.
fn wheel_s23<G: Governor>(
    left: &Shapes,
    right: &Shapes,
    stage: fn(LShape, Rect) -> LShape,
    meter: &mut G,
) -> Result<Shapes, Trip> {
    let (l_shapes, _, _) = left.as_l()?;
    let (r_list, _) = right.as_rect()?;
    let hint = if fp_shape::legacy::legacy_kernels() {
        0
    } else {
        l_shapes.len() + r_list.len()
    };
    let mut shapes = Vec::with_capacity(hint);
    let mut prov = Vec::with_capacity(hint);
    let mut chains = Vec::with_capacity(hint.min(l_shapes.len()));
    for (li, &l) in l_shapes.iter().enumerate() {
        let start = shapes.len();
        for (ri, &r) in r_list.iter().enumerate() {
            push_l_chain(
                &mut shapes,
                &mut prov,
                start,
                stage(l, r),
                (li as u32, ri as u32),
                meter,
            )?;
        }
        if shapes.len() > start {
            chains.push((start as u32, shapes.len() as u32));
        }
    }
    Ok(Shapes::L {
        shapes,
        prov,
        chains,
    })
}

/// Wheel stage 3: chains run over the *parent chain* for each fixed `C`
/// implementation (that orientation keeps `w2 = w_C` constant and the
/// monotonicity the chain prune needs).
fn wheel_s3<G: Governor>(left: &Shapes, right: &Shapes, meter: &mut G) -> Result<Shapes, Trip> {
    let (l_shapes, _, l_chains) = left.as_l()?;
    let (c_list, _) = right.as_rect()?;
    let hint = if fp_shape::legacy::legacy_kernels() {
        0
    } else {
        l_shapes.len() + c_list.len()
    };
    let mut shapes = Vec::with_capacity(hint);
    let mut prov = Vec::with_capacity(hint);
    let mut chains = Vec::with_capacity(hint.min(l_chains.len() * c_list.len()));
    for &(cs, ce) in l_chains {
        for (ci, &c) in c_list.iter().enumerate() {
            let start = shapes.len();
            for li in cs..ce {
                let cand = joins::stage3(l_shapes[li as usize], c);
                push_l_chain(&mut shapes, &mut prov, start, cand, (li, ci as u32), meter)?;
            }
            if shapes.len() > start {
                chains.push((start as u32, shapes.len() as u32));
            }
        }
    }
    Ok(Shapes::L {
        shapes,
        prov,
        chains,
    })
}

/// Wheel stage 4: `L × D → R`, with per-chain pruning then a global
/// staircase prune.
fn wheel_s4<G: Governor>(left: &Shapes, right: &Shapes, meter: &mut G) -> Result<Shapes, Trip> {
    let (l_shapes, _, _) = left.as_l()?;
    let (d_list, _) = right.as_rect()?;
    let hint = if fp_shape::legacy::legacy_kernels() {
        0
    } else {
        l_shapes.len() + d_list.len()
    };
    let mut out: Vec<(Rect, (u32, u32))> = Vec::with_capacity(hint);
    for (li, &l) in l_shapes.iter().enumerate() {
        let start = out.len();
        for (di, &d) in d_list.iter().enumerate() {
            push_rect_chain(
                &mut out,
                start,
                joins::stage4(l, d),
                (li as u32, di as u32),
                meter,
            )?;
        }
    }
    let before = out.len();
    fp_shape::prune::pareto_min_rects_in_place(&mut out, |&(r, _)| r);
    meter.discard(before - out.len());
    let rects: Vec<Rect> = out.iter().map(|&(r, _)| r).collect();
    let prov: Vec<(u32, u32)> = out.iter().map(|&(_, p)| p).collect();
    let list = RList::from_sorted(rects)
        .map_err(|_| Trip::Internal("pruned stage-4 output is not a staircase"))?;
    Ok(Shapes::Rect { list, prov })
}

/// Cross-chain dominance pruning of an L-block: the per-chain discipline
/// leaves implementations that a *different* chain dominates (e.g. a wider
/// `A` arm whose heights bring no benefit). The full 4-D prune removes
/// them and re-chains the survivors — this is what keeps the plain
/// algorithm's non-redundant counts at \[9\]'s scale. Skipped above the
/// configured threshold (the prune is `O(n·front)`).
fn global_l_prune<G: Governor>(
    shapes: &mut Shapes,
    config: &OptimizeConfig,
    meter: &mut G,
    scratch: &mut JoinScratch,
) {
    let Shapes::L {
        shapes: l_shapes,
        prov,
        chains,
    } = shapes
    else {
        return;
    };
    if l_shapes.is_empty() || config.global_l_prune.is_none() {
        return;
    }
    let before = l_shapes.len();
    if fp_shape::legacy::legacy_kernels() {
        return global_l_prune_legacy(l_shapes, prov, chains, config, meter, &mut scratch.front);
    }
    // The zipped pair buffer lives in the arena: every wheel join runs
    // this prune, and the collect was a per-block allocation.
    let pruned = &mut scratch.lprune;
    pruned.clear();
    pruned.extend(l_shapes.iter().copied().zip(prov.iter().copied()));

    // Pass 1 (always): same-w2 dominance, O(n log n), against the
    // arena's reusable staircase-front buffer; the canonical variant
    // restores output order with an O(n) group reversal instead of a
    // second sort.
    fp_shape::prune::pareto_min_lshapes_within_w2_canonical_scratch(
        pruned,
        |&(l, _)| l,
        &mut scratch.front,
    );

    // Pass 2 (bounded): full cross-w2 dominance, O(n·front). Pass 1
    // left the list grouped by w2 with no same-w2 dominance — exactly
    // the precondition of the fused group sweep, which prunes in place
    // with no sorts and no allocations.
    if config.global_l_prune.is_some_and(|t| pruned.len() <= t) {
        fp_shape::prune::pareto_min_lshapes_grouped_scratch(
            pruned,
            |&(l, _)| l,
            &mut scratch.lfront,
        );
    }
    if pruned.len() == before {
        // Nothing was redundant; keep the existing (already valid) chains.
        return;
    }
    // Re-chain the survivors through the flat decomposition arena and
    // rebuild into the block's own buffers — the whole rebuild reuses
    // existing capacity instead of allocating per-chain vectors.
    scratch.chain.partition(pruned, |&(l, _)| l);
    l_shapes.clear();
    prov.clear();
    chains.clear();
    for &i in &scratch.chain.perm {
        let (l, p) = pruned[i as usize];
        l_shapes.push(l);
        prov.push(p);
    }
    chains.extend_from_slice(&scratch.chain.spans);
    meter.discard(before - l_shapes.len());
}

/// Pre-arena cross-chain prune, kept verbatim behind
/// [`fp_shape::legacy::legacy_kernels`] as the ablation baseline: a
/// fresh `collect` per block and the sort-based cross-`w2` pass instead
/// of the fused group sweep. Results are identical to
/// [`global_l_prune`]; only allocation and sweep strategy differ.
fn global_l_prune_legacy<G: Governor>(
    l_shapes: &mut Vec<LShape>,
    prov: &mut Vec<(u32, u32)>,
    chains: &mut Vec<(u32, u32)>,
    config: &OptimizeConfig,
    meter: &mut G,
    front: &mut Vec<(u64, u64)>,
) {
    let before = l_shapes.len();
    let mut pruned: Vec<(LShape, (u32, u32))> =
        l_shapes.iter().copied().zip(prov.iter().copied()).collect();

    fp_shape::prune::pareto_min_lshapes_within_w2_scratch(&mut pruned, |&(l, _)| l, front);

    if config.global_l_prune.is_some_and(|t| pruned.len() <= t) {
        pruned = fp_shape::prune::pareto_min_lshapes_by(pruned, |&(l, _)| l);
    }

    if pruned.len() == before {
        return;
    }
    let survivors: Vec<LShape> = pruned.iter().map(|&(l, _)| l).collect();
    let idx_chains = fp_shape::chain_indices(&survivors);
    let mut new_shapes = Vec::with_capacity(survivors.len());
    let mut new_prov = Vec::with_capacity(survivors.len());
    let mut new_chains = Vec::with_capacity(idx_chains.len());
    for chain in idx_chains {
        let start = new_shapes.len();
        for i in chain {
            new_shapes.push(pruned[i].0);
            new_prov.push(pruned[i].1);
        }
        new_chains.push((start as u32, new_shapes.len() as u32));
    }
    meter.discard(before - new_shapes.len());
    *l_shapes = new_shapes;
    *prov = new_prov;
    *chains = new_chains;
}

/// Applies the effective selection policies to a block in place,
/// returning how many implementations were dropped (for the caller to
/// account against the governor as `discard` or `release`).
fn select_shapes(
    shapes: &mut Shapes,
    eff: &EffectivePolicies,
    stats: &mut RunStats,
    scratch: &mut JoinScratch,
    node: u32,
    tc: TraceCtx<'_>,
) -> Result<usize, Trip> {
    match shapes {
        Shapes::Rect { list, prov } => {
            let Some(policy) = &eff.r else {
                return Ok(0);
            };
            let n = list.len();
            let before = scratch.cspp.int.counters();
            let started = Instant::now();
            let sel = policy.apply_scratch(list, &mut scratch.cspp.int);
            let spent = started.elapsed();
            stats.selection_time += spent;
            let delta = scratch.cspp.int.counters().since(before);
            let Some(sel) = sel else {
                return Ok(0);
            };
            emit_selection(tc, node, delta, policy.limit(), n, spent);
            let dropped = list.len() - sel.positions.len();
            let new_list = list.subset(&sel.positions);
            let new_prov = if prov.is_empty() {
                Vec::new()
            } else {
                sel.positions.iter().map(|&i| prov[i]).collect()
            };
            *list = new_list;
            *prov = new_prov;
            stats.r_reductions += 1;
            Ok(dropped)
        }
        Shapes::L {
            shapes: l_shapes,
            prov,
            chains,
        } => {
            let Some(policy) = &eff.l else {
                return Ok(0);
            };
            // View the chains as an LListSet for the policy layer.
            let mut lists = Vec::with_capacity(chains.len());
            for &(s, e) in chains.iter() {
                let list = LList::from_sorted(l_shapes[s as usize..e as usize].to_vec())
                    .map_err(|_| Trip::Internal("engine chain is not an irreducible L-list"))?;
                lists.push(list);
            }
            let set = LListSet::from_lists(lists);
            let n = l_shapes.len();
            let before = scratch.cspp.counters();
            let started = Instant::now();
            let kept = policy.apply_scratch(&set, &mut scratch.cspp);
            let spent = started.elapsed();
            stats.selection_time += spent;
            let delta = scratch.cspp.counters().since(before);
            let Some(kept) = kept else {
                return Ok(0);
            };
            emit_selection(tc, node, delta, policy.k2(), n, spent);
            let mut new_shapes = Vec::new();
            let mut new_prov = Vec::new();
            let mut new_chains = Vec::new();
            for (&(s, _), positions) in chains.iter().zip(&kept) {
                let start = new_shapes.len();
                for &p in positions {
                    let global = s as usize + p;
                    new_shapes.push(l_shapes[global]);
                    new_prov.push(prov[global]);
                }
                if new_shapes.len() > start {
                    new_chains.push((start as u32, new_shapes.len() as u32));
                }
            }
            let dropped = l_shapes.len() - new_shapes.len();
            *l_shapes = new_shapes;
            *prov = new_prov;
            *chains = new_chains;
            stats.l_reductions += 1;
            Ok(dropped)
        }
    }
}

/// Emits the `selection` (and, when any solves fell back, the
/// `monge_fallback`) event for one *effective* policy application —
/// declined applications (the block already fits) stay silent, so the
/// event count equals `RunStats::{r,l}_reductions`. The dominant solver
/// kind is classified from the arena's dispatch-counter delta; the
/// error-budget R mode bypasses the arena entirely (zero delta), which
/// reports as the legacy kind.
fn emit_selection(
    tc: TraceCtx<'_>,
    node: u32,
    delta: fp_cspp::SolveCounters,
    k: usize,
    n: usize,
    dur: Duration,
) {
    if !tc.on() {
        return;
    }
    let solver = if delta.divide_conquer > 0 {
        SolverKind::Monge
    } else if delta.dense > 0 {
        SolverKind::Dense
    } else {
        SolverKind::Legacy
    };
    tc.emit(TraceEvent::Selection {
        node,
        solver,
        legacy: delta.legacy as u32,
        dense: delta.dense as u32,
        monge: delta.divide_conquer as u32,
        k: k as u32,
        n: n as u32,
        dur_ns: ns(dur),
    });
    if delta.monge_fallbacks > 0 {
        tc.emit(TraceEvent::MongeFallback {
            node,
            count: delta.monge_fallbacks as u32,
        });
    }
}

/// Rescue-ladder shrink of an already *committed* block: re-applies the
/// tightened policies to its list and releases the dropped storage.
///
/// Leaf blocks are built with empty provenance (their implementation
/// index *is* the module choice), so before subsetting one we seed the
/// identity provenance — trace-back then maps the surviving indices back
/// to original module choices through it.
fn reselect_committed(
    shapes: &mut Shapes,
    eff: &EffectivePolicies,
    gov: &mut ResourceGovernor,
    stats: &mut RunStats,
    scratch: &mut JoinScratch,
    node: u32,
    tc: TraceCtx<'_>,
) -> Result<(), Trip> {
    if let Shapes::Rect { list, prov } = shapes {
        if prov.is_empty() && !list.is_empty() {
            *prov = (0..list.len() as u32).map(|i| (i, 0)).collect();
        }
    }
    let dropped = select_shapes(shapes, eff, stats, scratch, node, tc)?;
    gov.release(dropped);
    Ok(())
}

/// Traces the chosen root implementation back to per-module choices.
fn trace_back_with(
    bin: &BinaryTree,
    store: &[Shapes],
    root_idx: usize,
    slot_of: &[usize],
    leaves: usize,
) -> Assignment {
    let mut choices = vec![0usize; leaves];
    let mut stack = vec![(bin.root(), root_idx)];
    while let Some((node, idx)) = stack.pop() {
        let Some(bin_node) = bin.node(node) else {
            debug_assert!(false, "trace-back reached an out-of-range node");
            continue;
        };
        match bin_node {
            BinNode::Leaf { tree_leaf, .. } => {
                // A leaf re-selected by the rescue ladder carries identity
                // provenance mapping surviving indices to module choices;
                // an untouched leaf's index is the choice itself.
                let choice = match store.get(node) {
                    Some(Shapes::Rect { prov, .. }) if !prov.is_empty() => {
                        prov.get(idx).map_or(idx, |p| p.0 as usize)
                    }
                    _ => idx,
                };
                if let Some(slot) = slot_of.get(*tree_leaf).copied() {
                    if let Some(c) = choices.get_mut(slot) {
                        *c = choice;
                    }
                }
            }
            BinNode::Join { left, right, .. } => {
                let prov = match store.get(node) {
                    Some(Shapes::Rect { prov, .. }) | Some(Shapes::L { prov, .. }) => prov,
                    None => {
                        debug_assert!(false, "trace-back reached an unbuilt block");
                        continue;
                    }
                };
                let Some(&(li, ri)) = prov.get(idx) else {
                    debug_assert!(false, "provenance index out of range");
                    continue;
                };
                stack.push((*left, li as usize));
                stack.push((*right, ri as usize));
            }
        }
    }
    Assignment::new(choices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_select::Metric;
    use fp_tree::layout::{realize, Assignment as LayoutAssignment};
    use fp_tree::{generators, Chirality, CutDir, Module};
    use proptest::prelude::*;

    /// Facade shorthand keeping this suite's call sites compact.
    fn optimize(
        tree: &FloorplanTree,
        lib: &ModuleLibrary,
        config: &OptimizeConfig,
    ) -> Result<Outcome, OptError> {
        Optimizer::new(tree, lib).config(config).run_best()
    }

    /// Facade shorthand keeping this suite's call sites compact.
    fn optimize_frontier(
        tree: &FloorplanTree,
        lib: &ModuleLibrary,
        config: &OptimizeConfig,
    ) -> Result<Frontier, OptError> {
        Optimizer::new(tree, lib).config(config).run_frontier()
    }

    fn run(tree: &FloorplanTree, lib: &ModuleLibrary, config: &OptimizeConfig) -> Outcome {
        optimize(tree, lib, config).expect("optimization succeeds")
    }

    #[test]
    fn single_leaf_floorplan() {
        let mut t = FloorplanTree::new();
        t.leaf(0);
        let lib: ModuleLibrary = [Module::new("m", vec![Rect::new(4, 2), Rect::new(2, 3)])]
            .into_iter()
            .collect();
        let out = run(&t, &lib, &OptimizeConfig::default());
        assert_eq!(out.area, 6);
        assert_eq!(out.root_impl, Rect::new(2, 3));
        assert_eq!(out.assignment, LayoutAssignment::new(vec![1]));
    }

    #[test]
    fn two_module_stack_picks_best_pairing() {
        let mut t = FloorplanTree::new();
        let a = t.leaf(0);
        let b = t.leaf(1);
        t.slice(CutDir::Horizontal, vec![a, b]);
        let lib: ModuleLibrary = [
            Module::new("a", vec![Rect::new(4, 2), Rect::new(2, 4)]),
            Module::new("b", vec![Rect::new(4, 1), Rect::new(1, 4)]),
        ]
        .into_iter()
        .collect();
        let out = run(&t, &lib, &OptimizeConfig::default());
        // Best stack: (4,2)+(4,1) => 4x3 = 12.
        assert_eq!(out.area, 12);
        let layout = realize(&t, &lib, &out.assignment).expect("valid");
        assert_eq!(layout.area(), 12);
        assert_eq!(layout.validate(), None);
    }

    #[test]
    fn domino_wheel_is_tight() {
        let mut t = FloorplanTree::new();
        let ids: Vec<_> = (0..5).map(|m| t.leaf(m)).collect();
        t.wheel(
            Chirality::Clockwise,
            [ids[0], ids[1], ids[2], ids[3], ids[4]],
        );
        let lib: ModuleLibrary = [
            Module::hard("a", Rect::new(1, 2), true),
            Module::hard("b", Rect::new(2, 1), true),
            Module::hard("c", Rect::new(1, 2), true),
            Module::hard("d", Rect::new(2, 1), true),
            Module::hard("e", Rect::new(1, 1), false),
        ]
        .into_iter()
        .collect();
        let out = run(&t, &lib, &OptimizeConfig::default());
        assert_eq!(out.area, 9);
        let layout = realize(&t, &lib, &out.assignment).expect("valid");
        assert_eq!(layout.area(), 9);
        assert_eq!(layout.dead_space(), 0);
    }

    #[test]
    fn reported_area_matches_realized_layout_on_benchmarks() {
        for bench in [generators::fig1(), generators::fp1()] {
            let lib = generators::module_library(&bench.tree, 3, 5);
            let out = run(&bench.tree, &lib, &OptimizeConfig::default());
            let layout = realize(&bench.tree, &lib, &out.assignment).expect("valid");
            assert_eq!(layout.area(), out.area, "{}", bench.name);
            assert_eq!(layout.validate(), None, "{}", bench.name);
        }
    }

    #[test]
    fn selection_trades_area_for_memory() {
        let bench = generators::fp1();
        let lib = generators::module_library(&bench.tree, 6, 3);
        let plain = run(&bench.tree, &lib, &OptimizeConfig::default());
        let reduced_cfg = OptimizeConfig::default().with_r_selection(8);
        let reduced = run(&bench.tree, &lib, &reduced_cfg);
        assert!(reduced.stats.peak_impls <= plain.stats.peak_impls);
        assert!(reduced.stats.r_reductions > 0);
        assert!(reduced.area >= plain.area);
        // Still realizable.
        let layout = realize(&bench.tree, &lib, &reduced.assignment).expect("valid");
        assert_eq!(layout.area(), reduced.area);
    }

    #[test]
    fn l_selection_reduces_wheel_blocks() {
        let bench = generators::fp1();
        let lib = generators::module_library(&bench.tree, 6, 3);
        let cfg = OptimizeConfig::default()
            .with_r_selection(10)
            .with_l_selection(LReductionPolicy::new(30).with_metric(Metric::L1));
        let out = run(&bench.tree, &lib, &cfg);
        assert!(out.stats.l_reductions > 0);
        let layout = realize(&bench.tree, &lib, &out.assignment).expect("valid");
        assert_eq!(layout.area(), out.area);
        assert_eq!(layout.validate(), None);
    }

    #[test]
    fn memory_budget_reproduces_paper_failures() {
        let bench = generators::fp1();
        let lib = generators::module_library(&bench.tree, 6, 3);
        // Find the plain run's peak, then set the budget just under it:
        // the plain run dies the way the paper's SPARCstation memory did.
        let plain = run(&bench.tree, &lib, &OptimizeConfig::default());
        let budget = plain.stats.peak_impls * 3 / 4;
        let tiny = OptimizeConfig::default().with_memory_limit(Some(budget));
        match optimize(&bench.tree, &lib, &tiny) {
            Err(OptError::OutOfMemory {
                live, limit, peak, ..
            }) => {
                assert_eq!(limit, budget);
                assert!(live > budget);
                assert!(peak >= budget);
            }
            other => panic!("expected OutOfMemory, got {other:?}"),
        }
        // The same run with selection squeezes under the budget.
        let rescued = OptimizeConfig::default()
            .with_memory_limit(Some(budget))
            .with_r_selection(3)
            .with_l_selection(LReductionPolicy::new(30));
        let out = optimize(&bench.tree, &lib, &rescued).expect("selection rescues the run");
        assert!(out.stats.peak_impls <= budget);
    }

    #[test]
    fn frontier_outcomes_all_realize() {
        let bench = generators::fp1();
        let lib = generators::module_library(&bench.tree, 4, 9);
        let frontier =
            optimize_frontier(&bench.tree, &lib, &OptimizeConfig::default()).expect("runs");
        let n = frontier.envelopes().len();
        assert!(n >= 2, "wheel floorplans have several envelope compromises");
        for i in 0..n {
            let out = frontier.outcome(i);
            let layout = realize(&bench.tree, &lib, &out.assignment).expect("valid");
            assert_eq!(layout.area(), out.area, "frontier entry {i}");
            assert_eq!(layout.validate(), None, "frontier entry {i}");
        }
        // best() agrees with the one-shot API.
        let one_shot = run(&bench.tree, &lib, &OptimizeConfig::default());
        let via_frontier = frontier
            .best(Objective::MinArea, None)
            .expect("unconstrained is feasible");
        assert_eq!(one_shot.area, via_frontier.area);
        assert_eq!(one_shot.assignment, via_frontier.assignment);
    }

    #[test]
    fn frontier_outline_queries_are_consistent() {
        let bench = generators::fig1();
        let lib = generators::module_library(&bench.tree, 5, 4);
        let frontier =
            optimize_frontier(&bench.tree, &lib, &OptimizeConfig::default()).expect("runs");
        for &env in frontier.envelopes().iter() {
            // Constraining to exactly this envelope must return it (it is
            // non-redundant, so nothing else fits strictly inside).
            let out = frontier
                .best(Objective::MinArea, Some(env))
                .expect("feasible");
            assert!(out.root_impl.fits_in(env));
        }
    }

    #[test]
    fn census_records_block_extremes() {
        let bench = generators::fp1();
        let lib = generators::module_library(&bench.tree, 6, 3);
        let out = run(&bench.tree, &lib, &OptimizeConfig::default());
        // The paper's §5 observation: L-blocks dwarf rectangular blocks.
        assert!(out.stats.max_l_block > out.stats.max_r_block);
        assert!(out.stats.max_r_block > 0);
        // A slicing-only floorplan has no L-blocks at all.
        let slicing = generators::fig1();
        let slib = generators::module_library(&slicing.tree, 4, 3);
        let sout = run(&slicing.tree, &slib, &OptimizeConfig::default());
        assert_eq!(sout.stats.max_l_block, 0);
        assert!(sout.stats.max_r_block > 0);
    }

    #[test]
    fn objective_half_perimeter_prefers_square() {
        // Two implementations with equal area but different shapes after a
        // stack: MinArea ties on cost and picks by width; MinHalfPerimeter
        // must pick the squarer envelope.
        let mut t = FloorplanTree::new();
        let a = t.leaf(0);
        let b = t.leaf(1);
        t.slice(CutDir::Horizontal, vec![a, b]);
        let lib: ModuleLibrary = [
            Module::new("a", vec![Rect::new(8, 2), Rect::new(4, 4)]),
            Module::new("b", vec![Rect::new(8, 2), Rect::new(4, 4)]),
        ]
        .into_iter()
        .collect();
        // Candidates: 8x4 (area 32, hp 12) and 4x8 (area 32, hp 12)... and
        // mixed 8x6 (48, 14). Area optimum = 32 either way.
        let area_out = run(
            &t,
            &lib,
            &OptimizeConfig::default().with_objective(Objective::MinArea),
        );
        assert_eq!(area_out.area, 32);
        let hp = OptimizeConfig::default().with_objective(Objective::MinHalfPerimeter);
        let hp_out = run(&t, &lib, &hp);
        assert_eq!(hp_out.root_impl.half_perimeter(), 12);
        // Realizes under either objective.
        let layout = realize(&t, &lib, &hp_out.assignment).expect("valid");
        assert_eq!(layout.area(), hp_out.area);
    }

    #[test]
    fn outline_constraint_filters_and_errors() {
        let mut t = FloorplanTree::new();
        let a = t.leaf(0);
        let b = t.leaf(1);
        t.slice(CutDir::Horizontal, vec![a, b]);
        let lib: ModuleLibrary = [
            Module::new("a", vec![Rect::new(8, 2), Rect::new(2, 8)]),
            Module::new("b", vec![Rect::new(8, 2), Rect::new(2, 8)]),
        ]
        .into_iter()
        .collect();
        // Unconstrained best: 8x4 = 32.
        let free = run(&t, &lib, &OptimizeConfig::default());
        assert_eq!(free.area, 32);
        // A narrow outline forces the tall stacking (2..x16 = 32? no:
        // stacking 2x8 + 2x8 = 2x16, area 32).
        let narrow = OptimizeConfig::default().with_outline(Rect::new(3, 20));
        let out = run(&t, &lib, &narrow);
        assert!(out.root_impl.fits_in(Rect::new(3, 20)));
        assert_eq!(out.root_impl, Rect::new(2, 16));
        // An impossible outline reports the best available implementation.
        let impossible = OptimizeConfig::default().with_outline(Rect::new(3, 3));
        match optimize(&t, &lib, &impossible) {
            Err(OptError::NoFeasibleOutline {
                outline,
                best_available,
            }) => {
                assert_eq!(outline, Rect::new(3, 3));
                assert!(best_available.area() >= 32);
            }
            other => panic!("expected NoFeasibleOutline, got {other:?}"),
        }
    }

    #[test]
    fn error_cases() {
        let empty = FloorplanTree::new();
        assert_eq!(
            optimize(&empty, &ModuleLibrary::new(), &OptimizeConfig::default()),
            Err(OptError::EmptyFloorplan)
        );
        let mut t = FloorplanTree::new();
        t.leaf(3);
        assert_eq!(
            optimize(&t, &ModuleLibrary::new(), &OptimizeConfig::default()),
            Err(OptError::MissingModule { module: 3 })
        );
        let mut t2 = FloorplanTree::new();
        t2.leaf(0);
        let lib: ModuleLibrary = [Module::new("empty", vec![])].into_iter().collect();
        assert_eq!(
            optimize(&t2, &lib, &OptimizeConfig::default()),
            Err(OptError::NoImplementations { module: 0 })
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// On random floorplans the optimizer's reported area always equals
        /// the realized layout's area, and the layout is physically valid.
        #[test]
        fn outcome_is_always_realizable(tree_seed in 0u64..40, lib_seed in 0u64..20,
                                        leaves in 2usize..14) {
            let bench = generators::random_floorplan(leaves, 0.5, tree_seed);
            let lib = generators::module_library(&bench.tree, 3, lib_seed);
            let out = run(&bench.tree, &lib, &OptimizeConfig::default());
            let layout = realize(&bench.tree, &lib, &out.assignment).expect("valid");
            prop_assert_eq!(layout.area(), out.area);
            prop_assert_eq!(layout.validate(), None);
        }

        /// Selection never improves on the plain optimum and always stays
        /// realizable.
        #[test]
        fn selection_is_sound(tree_seed in 0u64..20, leaves in 5usize..12) {
            let bench = generators::random_floorplan(leaves, 0.6, tree_seed);
            let lib = generators::module_library(&bench.tree, 4, 77);
            let plain = run(&bench.tree, &lib, &OptimizeConfig::default());
            let cfg = OptimizeConfig::default()
                .with_r_selection(5)
                .with_l_selection(LReductionPolicy::new(12));
            let sel = run(&bench.tree, &lib, &cfg);
            prop_assert!(sel.area >= plain.area);
            let layout = realize(&bench.tree, &lib, &sel.assignment).expect("valid");
            prop_assert_eq!(layout.area(), sel.area);
        }
    }
}
