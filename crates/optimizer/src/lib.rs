//! Floorplan area optimization: a reconstruction of the Wang–Wong DAC'90
//! optimal algorithm ("\[9\]" in the DAC'92 paper) with the DAC'92
//! implementation-selection algorithms wired in as policies.
//!
//! The optimizer walks the restructured binary tree `T'` bottom-up,
//! maintaining every block's set of non-redundant implementations:
//! irreducible R-lists at rectangular blocks (slicing joins use the
//! Stockmeyer merge) and sets of irreducible L-lists at the partial-wheel
//! L-shaped blocks (the [`joins`] algebra). Whenever a block's set exceeds
//! the configured limits, `R_Selection` / `L_Selection` optimally shrink it
//! (paper §3); a configurable memory budget reproduces the "\[9\] failed to
//! run" behaviour of the paper's Tables 3–4 deterministically.
//!
//! # Example
//!
//! ```
//! use fp_optimizer::{Optimizer, OptimizeConfig};
//! use fp_tree::generators;
//!
//! let bench = generators::fp1();
//! let lib = generators::module_library(&bench.tree, 3, 1);
//! let outcome = Optimizer::new(&bench.tree, &lib)
//!     .config(&OptimizeConfig::default())
//!     .run_best()?;
//! assert!(outcome.area > 0);
//! // The assignment realizes to a layout with exactly the reported area.
//! let layout = fp_tree::layout::realize(&bench.tree, &lib, &outcome.assignment)
//!     .expect("assignment is valid");
//! assert_eq!(layout.area(), outcome.area);
//! assert_eq!(layout.validate(), None);
//! # Ok::<(), fp_optimizer::OptError>(())
//! ```
//!
//! # Observability
//!
//! Attach an [`fp_trace::Tracer`] via [`Optimizer::tracer`] to collect
//! the structured event stream (joins, CSPP solver selections, cache
//! traffic, steals, rescues, phase spans). Drain it into a
//! [`fp_trace::Trace`] for JSON-lines export, a [`TraceSummary`] of
//! counters, or a [`ProfileReport`] per-phase wall-time breakdown.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod direct;
mod engine;
pub mod exec;
pub mod governor;
pub mod joins;
mod meter;
mod multi;
pub mod oracle;
mod sched;
pub mod serve;
pub mod stockmeyer;

pub use cache::{
    policy_fingerprint, shared_cache, shared_cache_stats, BlockCache, CachedBlock, CachedShapes,
    SharedBlockCache,
};
pub use engine::{
    DegradationEvent, Frontier, Objective, OptError, OptimizeConfig, Optimizer, Outcome,
    RescueReason, RunOutcome, RunStats,
};
pub use exec::{Executor, JobHandle, Lease};
pub use governor::{CancelToken, FaultPlan, ResourceGovernor, Trip};
pub use multi::{CompositeObjective, MultiOutcome, ParetoSet};
// Re-exported so wirelength-aware callers (CLIs, the batch server, the
// annealer) don't need a direct `fp-netlist` dependency.
pub use fp_netlist::{
    hypervolume, netlist_fingerprint, parse_netlist, random_netlist, BoundNetlist, HpwlEvaluator,
    Netlist, ParetoPoint,
};
pub use meter::{BudgetExhausted, MemoryMeter};
// Persistence vocabulary re-exported so cache users (CLIs, the session
// layer, fpserved) don't need a direct `fp-memo` dependency.
pub use fp_memo::{IoFaultPlan, PersistError, PersistOptions, PersistStats, RecoveryReport};
// Re-exported so downstream users of the facade's tracing hooks don't
// need a direct `fp-trace` dependency.
pub use fp_trace::{
    JobClass, MetricsRegistry, MetricsSnapshot, PhaseName, ProfileReport, SolverKind, Trace,
    TraceEvent, TraceSummary, Tracer,
};

/// The one-stop import for typical callers.
///
/// `use fp_optimizer::prelude::*;` brings in the [`Optimizer`] facade
/// with its configuration and result vocabulary, the shared block
/// cache, tracing hooks, and the typed serve protocol — everything a
/// CLI, server, or test harness needs to run the optimizer and speak
/// its wire format. The legacy free-function entry points
/// (`optimize`, `optimize_cached`, …) are gone; the facade is the only
/// way in.
///
/// # Example
///
/// ```
/// use fp_optimizer::prelude::*;
/// use fp_tree::generators;
///
/// let bench = generators::fp1();
/// let lib = generators::module_library(&bench.tree, 3, 1);
/// let outcome = Optimizer::new(&bench.tree, &lib)
///     .config(&OptimizeConfig::default())
///     .run_best()?;
/// assert!(outcome.area > 0);
/// # Ok::<(), fp_optimizer::OptError>(())
/// ```
pub mod prelude {
    pub use crate::cache::{BlockCache, SharedBlockCache};
    pub use crate::engine::{
        Frontier, Objective, OptError, OptimizeConfig, Optimizer, Outcome, RunOutcome, RunStats,
    };
    pub use crate::multi::{CompositeObjective, MultiOutcome, ParetoSet};
    pub use crate::serve::{
        handle_line, parse_request, Method, Reply, Request, RequestError, RequestId, ServeState,
        PROTO_VERSION,
    };
    pub use fp_trace::{Trace, TraceSummary, Tracer};
}
