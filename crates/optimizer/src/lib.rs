//! Floorplan area optimization: a reconstruction of the Wang–Wong DAC'90
//! optimal algorithm ("\[9\]" in the DAC'92 paper) with the DAC'92
//! implementation-selection algorithms wired in as policies.
//!
//! The optimizer walks the restructured binary tree `T'` bottom-up,
//! maintaining every block's set of non-redundant implementations:
//! irreducible R-lists at rectangular blocks (slicing joins use the
//! Stockmeyer merge) and sets of irreducible L-lists at the partial-wheel
//! L-shaped blocks (the [`joins`] algebra). Whenever a block's set exceeds
//! the configured limits, `R_Selection` / `L_Selection` optimally shrink it
//! (paper §3); a configurable memory budget reproduces the "\[9\] failed to
//! run" behaviour of the paper's Tables 3–4 deterministically.
//!
//! # Example
//!
//! ```
//! use fp_optimizer::{Optimizer, OptimizeConfig};
//! use fp_tree::generators;
//!
//! let bench = generators::fp1();
//! let lib = generators::module_library(&bench.tree, 3, 1);
//! let outcome = Optimizer::new(&bench.tree, &lib)
//!     .config(&OptimizeConfig::default())
//!     .run_best()?;
//! assert!(outcome.area > 0);
//! // The assignment realizes to a layout with exactly the reported area.
//! let layout = fp_tree::layout::realize(&bench.tree, &lib, &outcome.assignment)
//!     .expect("assignment is valid");
//! assert_eq!(layout.area(), outcome.area);
//! assert_eq!(layout.validate(), None);
//! # Ok::<(), fp_optimizer::OptError>(())
//! ```
//!
//! # Observability
//!
//! Attach an [`fp_trace::Tracer`] via [`Optimizer::tracer`] to collect
//! the structured event stream (joins, CSPP solver selections, cache
//! traffic, steals, rescues, phase spans). Drain it into a
//! [`fp_trace::Trace`] for JSON-lines export, a [`TraceSummary`] of
//! counters, or a [`ProfileReport`] per-phase wall-time breakdown.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod direct;
mod engine;
pub mod exec;
pub mod governor;
pub mod joins;
mod meter;
mod multi;
pub mod oracle;
mod sched;
pub mod serve;
pub mod stockmeyer;

pub use cache::{
    policy_fingerprint, shared_cache, shared_cache_stats, BlockCache, CachedBlock, CachedShapes,
    SharedBlockCache,
};
#[allow(deprecated)]
pub use engine::{
    optimize, optimize_cached, optimize_frontier, optimize_frontier_cached, optimize_report,
    optimize_report_cached,
};
pub use engine::{
    DegradationEvent, Frontier, Objective, OptError, OptimizeConfig, Optimizer, Outcome,
    RescueReason, RunOutcome, RunStats,
};
pub use exec::{Executor, JobHandle, Lease};
pub use governor::{CancelToken, FaultPlan, ResourceGovernor, Trip};
pub use multi::{CompositeObjective, MultiOutcome, ParetoSet};
// Re-exported so wirelength-aware callers (CLIs, the batch server, the
// annealer) don't need a direct `fp-netlist` dependency.
pub use fp_netlist::{
    hypervolume, netlist_fingerprint, parse_netlist, random_netlist, BoundNetlist, HpwlEvaluator,
    Netlist, ParetoPoint,
};
pub use meter::{BudgetExhausted, MemoryMeter};
// Persistence vocabulary re-exported so cache users (CLIs, the session
// layer, fpserved) don't need a direct `fp-memo` dependency.
pub use fp_memo::{IoFaultPlan, PersistError, PersistOptions, PersistStats, RecoveryReport};
// Re-exported so downstream users of the facade's tracing hooks don't
// need a direct `fp-trace` dependency.
pub use fp_trace::{
    JobClass, MetricsRegistry, MetricsSnapshot, PhaseName, ProfileReport, SolverKind, Trace,
    TraceEvent, TraceSummary, Tracer,
};
