//! The wheel join algebra: closed-form composition of partial pinwheels.
//!
//! A wheel `[A, B, C, D, E]` (see [`fp_tree::NodeKind`]) is assembled as
//! `(((A ⊕ E) ⊕ B) ⊕ C) ⊕ D`. Each stage's partial assembly is an L-shaped
//! block whose implementation 4-tuple carries exactly the measurements the
//! remaining stages need; the final stage completes the enveloping
//! rectangle. The formulas below are derived from the wheel's region
//! constraints (see [`fp_tree::wheel`]) so that
//!
//! ```text
//! stage4(stage3(stage2(stage1(a, e), b), c), d)
//!     == fp_tree::wheel::min_envelope([a, b, c, d, e])
//! ```
//!
//! for **every** combination of child sizes — a property test below checks
//! this exhaustively. Each stage is monotone in every tuple coordinate,
//! which is what makes dominance pruning of the intermediate L-lists sound.
//!
//! # Tuple semantics per stage
//!
//! * **Stage 1** (`A ⊕ E`, bottom-aligned): the canonical tall-left L.
//!   `w1 = w_A + w_E`, `w2 = w_A`, `h1 = max(h_A, h_E)`, `h2 = h_E`.
//! * **Stage 2** (`+ B` on top): a top-heavy L. `w1` = full (top) width,
//!   `w2` = bottom width, `h1` = total height, `h2` = top-strip height.
//! * **Stage 3** (`+ C` on the right): a bottom-right-hanging L. `w1` =
//!   full width, `w2` = hanging-column width, `h1` = right-edge (total)
//!   height, `h2` = upper-part height.
//! * **Stage 4** (`+ D` bottom-left): the completed rectangle
//!   `W = max(w1, w_D + w2)`, `H = max(h_D + h2, h1)`.

use fp_geom::{LShape, Rect};

/// Stage 1: arm `A` (left) beside centre `E` (right), bottom-aligned.
///
/// ```
/// use fp_geom::{LShape, Rect};
/// use fp_optimizer::joins::stage1;
///
/// let l = stage1(Rect::new(1, 2), Rect::new(1, 1));
/// assert_eq!(l, LShape::new(2, 1, 2, 1).expect("canonical"));
/// ```
#[inline]
#[must_use]
pub fn stage1(a: Rect, e: Rect) -> LShape {
    LShape::new_canonical(a.w + e.w, a.w, a.h.max(e.h), e.h)
}

/// Stage 2: the stage-1 L plus the top strip `B`.
#[inline]
#[must_use]
pub fn stage2(l: LShape, b: Rect) -> LShape {
    LShape::new_canonical((l.w2 + b.w).max(l.w1), l.w1, l.h1.max(l.h2 + b.h), b.h)
}

/// Stage 3: the stage-2 L plus the right column `C`.
#[inline]
#[must_use]
pub fn stage3(l: LShape, c: Rect) -> LShape {
    LShape::new_canonical(l.w1.max(l.w2 + c.w), c.w, l.h1.max(l.h2 + c.h), l.h1)
}

/// Stage 4: the stage-3 L plus the bottom strip `D`, completing the
/// enveloping rectangle.
#[inline]
#[must_use]
pub fn stage4(l: LShape, d: Rect) -> Rect {
    Rect::new(l.w1.max(d.w + l.w2), (d.h + l.h2).max(l.h1))
}

/// The full chain for one combination of child sizes; equals
/// [`fp_tree::wheel::min_envelope`].
#[inline]
#[must_use]
pub fn wheel_envelope_via_stages(children: [Rect; 5]) -> Rect {
    let [a, b, c, d, e] = children;
    stage4(stage3(stage2(stage1(a, e), b), c), d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_tree::wheel;
    use proptest::prelude::*;

    #[test]
    fn domino_pinwheel_through_stages() {
        let a = Rect::new(1, 2);
        let b = Rect::new(2, 1);
        let c = Rect::new(1, 2);
        let d = Rect::new(2, 1);
        let e = Rect::new(1, 1);
        let s1 = stage1(a, e);
        assert_eq!(s1, LShape::new_canonical(2, 1, 2, 1));
        let s2 = stage2(s1, b);
        assert_eq!(s2, LShape::new_canonical(3, 2, 2, 1));
        let s3 = stage3(s2, c);
        assert_eq!(s3, LShape::new_canonical(3, 1, 3, 2));
        assert_eq!(stage4(s3, d), Rect::new(3, 3));
    }

    #[test]
    fn all_stages_stay_canonical_on_extremes() {
        // Extreme aspect ratios must not break the canonical invariants.
        let combos = [
            [
                Rect::new(1, 100),
                Rect::new(100, 1),
                Rect::new(1, 100),
                Rect::new(100, 1),
                Rect::new(1, 1),
            ],
            [Rect::new(100, 1); 5],
            [Rect::new(1, 100); 5],
            [Rect::new(1, 1); 5],
        ];
        for [a, b, c, d, e] in combos {
            let s1 = stage1(a, e);
            let s2 = stage2(s1, b);
            let s3 = stage3(s2, c);
            let _ = stage4(s3, d); // new_canonical would have panicked
        }
    }

    fn arb_rect() -> impl Strategy<Value = Rect> {
        (1u64..40, 1u64..40).prop_map(|(w, h)| Rect::new(w, h))
    }

    proptest! {
        /// The incremental stage algebra reproduces the closed-form wheel
        /// envelope exactly, for every child-size combination.
        #[test]
        fn stages_match_closed_form(children in proptest::array::uniform5(arb_rect())) {
            prop_assert_eq!(
                wheel_envelope_via_stages(children),
                wheel::min_envelope(children)
            );
        }

        /// Every stage is monotone in each input coordinate (the property
        /// dominance pruning relies on).
        #[test]
        fn stages_are_monotone(children in proptest::array::uniform5(arb_rect()),
                               idx in 0usize..5, dw in 0u64..4, dh in 0u64..4) {
            let mut grown = children;
            grown[idx] = Rect::new(grown[idx].w + dw, grown[idx].h + dh);
            let base = wheel_envelope_via_stages(children);
            prop_assert!(wheel_envelope_via_stages(grown).dominates(base));
        }

        /// Dominance propagates through each single stage: if one stage-k
        /// input dominates another, so does the output (with the same
        /// attached rectangle).
        #[test]
        fn single_stage_dominance(la in proptest::array::uniform4(1u64..30),
                                  lb in proptest::array::uniform4(1u64..30),
                                  r in arb_rect()) {
            let mk = |t: [u64; 4]| {
                LShape::new_canonical(t[0].max(t[1]), t[0].min(t[1]),
                                      t[2].max(t[3]), t[2].min(t[3]))
            };
            let (x, y) = (mk(la), mk(lb));
            if x.dominates(y) {
                prop_assert!(stage2(x, r).dominates(stage2(y, r)));
                prop_assert!(stage3(x, r).dominates(stage3(y, r)));
                prop_assert!(stage4(x, r).dominates(stage4(y, r)));
            }
        }
    }
}
