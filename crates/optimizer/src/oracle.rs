//! Exhaustive oracle: enumerates every assignment and realizes each layout.
//!
//! Exponentially slow but trivially correct — it is the ground truth the
//! engine is tested against on small floorplans (including wheels, which
//! [`crate::stockmeyer`] cannot check).

use fp_geom::Area;
use fp_tree::layout::{realize, Assignment};
use fp_tree::{FloorplanTree, ModuleLibrary, NodeKind};

/// The exact optimal area and one optimal assignment, by brute force.
///
/// Returns `None` if the tree is empty or any module is missing/empty.
///
/// # Panics
///
/// Panics if the search space exceeds `max_combinations` — pick small
/// instances.
///
/// # Example
///
/// ```
/// use fp_optimizer::oracle::exhaustive_optimal;
/// use fp_tree::generators;
///
/// let bench = generators::fig1();
/// let lib = generators::module_library(&bench.tree, 2, 3);
/// let (area, _) = exhaustive_optimal(&bench.tree, &lib, 1 << 16).expect("solvable");
/// assert!(area > 0);
/// ```
#[must_use]
pub fn exhaustive_optimal(
    tree: &FloorplanTree,
    library: &ModuleLibrary,
    max_combinations: u64,
) -> Option<(Area, Assignment)> {
    if tree.is_empty() {
        return None;
    }
    let leaves = tree.leaves_in_order();
    let mut counts = Vec::with_capacity(leaves.len());
    for &leaf in &leaves {
        let module = match tree.node(leaf)?.kind {
            NodeKind::Leaf(m) => m,
            _ => return None,
        };
        let n = library.get(module)?.implementations().len();
        if n == 0 {
            return None;
        }
        counts.push(n);
    }
    let total: u64 = counts
        .iter()
        .try_fold(1u64, |acc, &n| acc.checked_mul(n as u64))?;
    assert!(
        total <= max_combinations,
        "search space {total} exceeds the oracle cap {max_combinations}"
    );

    let mut best: Option<(Area, Assignment)> = None;
    let mut choices = vec![0usize; counts.len()];
    loop {
        let assignment = Assignment::new(choices.clone());
        // Choices are in range by construction; treat a realize failure as
        // an unsolvable instance rather than panicking.
        let layout = realize(tree, library, &assignment).ok()?;
        debug_assert_eq!(layout.validate(), None);
        let area = layout.area();
        if best.as_ref().is_none_or(|(b, _)| area < *b) {
            best = Some((area, assignment));
        }
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == choices.len() {
                return best;
            }
            choices[i] += 1;
            if choices[i] < counts[i] {
                break;
            }
            choices[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OptimizeConfig, Optimizer};

    /// Facade shorthand keeping this module's call sites compact.
    fn optimize(
        tree: &fp_tree::FloorplanTree,
        library: &fp_tree::ModuleLibrary,
        config: &OptimizeConfig,
    ) -> Result<crate::Outcome, crate::OptError> {
        Optimizer::new(tree, library).config(config).run_best()
    }
    use fp_geom::Rect;
    use fp_tree::{generators, Chirality, Module};
    use proptest::prelude::*;

    #[test]
    fn domino_wheel_matches_engine() {
        let mut t = FloorplanTree::new();
        let ids: Vec<_> = (0..5).map(|m| t.leaf(m)).collect();
        t.wheel(
            Chirality::Clockwise,
            [ids[0], ids[1], ids[2], ids[3], ids[4]],
        );
        let lib: ModuleLibrary = (0..5)
            .map(|i| Module::hard(format!("m{i}"), Rect::new(1 + i % 2, 2 - i % 2), true))
            .collect();
        let (oracle_area, _) = exhaustive_optimal(&t, &lib, 1 << 20).expect("solvable");
        let engine = optimize(&t, &lib, &OptimizeConfig::default()).expect("solves");
        assert_eq!(engine.area, oracle_area);
    }

    #[test]
    #[should_panic(expected = "exceeds the oracle cap")]
    fn cap_is_enforced() {
        let bench = generators::fp1();
        let lib = generators::module_library(&bench.tree, 4, 1);
        let _ = exhaustive_optimal(&bench.tree, &lib, 1 << 10);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]
        /// The engine (no selection) is exactly optimal: it matches brute
        /// force on random mixed slicing/wheel floorplans.
        #[test]
        fn engine_is_optimal(tree_seed in 0u64..50, lib_seed in 0u64..20,
                             leaves in 2usize..9) {
            let bench = generators::random_floorplan(leaves, 0.7, tree_seed);
            let lib = generators::module_library(&bench.tree, 3, lib_seed);
            let (oracle_area, _) = exhaustive_optimal(&bench.tree, &lib, 1 << 22)
                .expect("solvable");
            let engine = optimize(&bench.tree, &lib, &OptimizeConfig::default())
                .expect("solves");
            prop_assert_eq!(engine.area, oracle_area);
        }
    }
}
