//! A direct (unstaged) optimizer used as an independent cross-check.
//!
//! The main engine assembles wheels through the four-stage L-shape join
//! pipeline; this baseline instead evaluates each wheel node by brute
//! force over the **full 5-way cross product** of its children's
//! implementation lists, using only the closed-form
//! [`fp_tree::wheel::min_envelope`]. No L-shapes, no chains, no staging —
//! a completely different code path that must produce the same optimal
//! areas. It is exponential in wheel fan-in sizes, so use it on small
//! instances (tests cap the work).

use fp_geom::Area;
use fp_shape::combine::{combine_with_provenance, Compose};
use fp_shape::prune::pareto_min_rects_by;
use fp_shape::RList;
use fp_tree::layout::Assignment;
use fp_tree::{wheel, CutDir, FloorplanTree, ModuleLibrary, NodeId, NodeKind};

use crate::stockmeyer::SlicingError;

/// Per-node solved state with enough provenance to trace any root
/// implementation back to the leaves.
struct Solved {
    list: RList,
    /// For each implementation: the child implementation indices that
    /// produced it (arity 0 for leaves, 2 for slices, 5 for wheels).
    prov: Vec<Vec<usize>>,
    children: Vec<Solved>,
    leaf: Option<NodeId>,
}

/// The optimal area and assignment by direct evaluation (slices via the
/// Stockmeyer merge, wheels via the full 5-way cross product).
///
/// # Errors
///
/// [`SlicingError::BadInput`] for invalid trees/libraries or when the
/// cross-product work would exceed `max_combos_per_wheel`.
pub fn direct_optimal(
    tree: &FloorplanTree,
    library: &ModuleLibrary,
    max_combos_per_wheel: u64,
) -> Result<(Area, Assignment), SlicingError> {
    tree.validate()
        .map_err(|e| SlicingError::BadInput(e.to_string()))?;
    if tree.is_empty() {
        return Err(SlicingError::BadInput("empty floorplan".into()));
    }
    let solved = solve(tree, library, tree.root(), max_combos_per_wheel)?;
    let (best_idx, best) = solved
        .list
        .iter()
        .enumerate()
        .min_by_key(|(_, r)| (r.area(), r.w))
        .map(|(i, r)| (i, *r))
        .ok_or_else(|| SlicingError::BadInput("empty implementation list".into()))?;

    let leaves = tree.leaves_in_order();
    let mut slot_of = vec![usize::MAX; tree.len()];
    for (slot, &leaf) in leaves.iter().enumerate() {
        slot_of[leaf] = slot;
    }
    let mut choices = vec![0usize; leaves.len()];
    backtrack(&solved, best_idx, &slot_of, &mut choices);
    Ok((best.area(), Assignment::new(choices)))
}

fn solve(
    tree: &FloorplanTree,
    library: &ModuleLibrary,
    id: NodeId,
    cap: u64,
) -> Result<Solved, SlicingError> {
    let node = tree
        .node(id)
        .ok_or_else(|| SlicingError::BadInput(format!("node {id} out of range")))?;
    match &node.kind {
        NodeKind::Leaf(m) => {
            let module = library
                .get(*m)
                .ok_or_else(|| SlicingError::BadInput(format!("missing module {m}")))?;
            if module.implementations().is_empty() {
                return Err(SlicingError::BadInput(format!(
                    "module {m} has no implementations"
                )));
            }
            Ok(Solved {
                list: module.implementations().clone(),
                prov: Vec::new(),
                children: Vec::new(),
                leaf: Some(id),
            })
        }
        NodeKind::Slice(dir) => {
            let how = match dir {
                CutDir::Vertical => Compose::Beside,
                CutDir::Horizontal => Compose::Stack,
            };
            let mut kids = Vec::new();
            for &child in &node.children {
                kids.push(solve(tree, library, child, cap)?);
            }
            let mut acc = kids.remove(0);
            for rhs in kids {
                let combined = combine_with_provenance(&acc.list, &rhs.list, how);
                let list = RList::from_sorted(combined.iter().map(|c| c.rect).collect()).map_err(
                    |_| SlicingError::BadInput("merge output is not a staircase".into()),
                )?;
                let prov = combined.iter().map(|c| vec![c.left, c.right]).collect();
                acc = Solved {
                    list,
                    prov,
                    children: vec![acc, rhs],
                    leaf: None,
                };
            }
            Ok(acc)
        }
        NodeKind::Wheel(_) => {
            let mut kids = Vec::new();
            for &child in &node.children {
                kids.push(solve(tree, library, child, cap)?);
            }
            let combos = kids.iter().map(|k| k.list.len() as u64).product::<u64>();
            if combos > cap {
                return Err(SlicingError::BadInput(format!(
                    "wheel at node {id} needs {combos} combinations (cap {cap})"
                )));
            }
            // Full cross product through the closed-form wheel envelope.
            let mut candidates = Vec::with_capacity(combos as usize);
            let sizes: Vec<usize> = kids.iter().map(|k| k.list.len()).collect();
            let mut idx = vec![0usize; 5];
            loop {
                let env = wheel::min_envelope([
                    kids[0].list[idx[0]],
                    kids[1].list[idx[1]],
                    kids[2].list[idx[2]],
                    kids[3].list[idx[3]],
                    kids[4].list[idx[4]],
                ]);
                candidates.push((env, idx.clone()));
                // Odometer.
                let mut i = 0;
                loop {
                    if i == 5 {
                        let pruned = pareto_min_rects_by(candidates, |&(r, _)| r);
                        let list = RList::from_sorted(pruned.iter().map(|&(r, _)| r).collect())
                            .map_err(|_| {
                                SlicingError::BadInput("pruned output is not a staircase".into())
                            })?;
                        let prov = pruned.into_iter().map(|(_, p)| p).collect();
                        return Ok(Solved {
                            list,
                            prov,
                            children: kids,
                            leaf: None,
                        });
                    }
                    idx[i] += 1;
                    if idx[i] < sizes[i] {
                        break;
                    }
                    idx[i] = 0;
                    i += 1;
                }
            }
        }
    }
}

fn backtrack(solved: &Solved, idx: usize, slot_of: &[usize], choices: &mut Vec<usize>) {
    if let Some(leaf) = solved.leaf {
        if let Some(c) = slot_of.get(leaf).and_then(|&slot| choices.get_mut(slot)) {
            *c = idx;
        }
        return;
    }
    let Some(prov) = solved.prov.get(idx) else {
        debug_assert!(false, "provenance index out of range");
        return;
    };
    for (child, &child_idx) in solved.children.iter().zip(prov) {
        backtrack(child, child_idx, slot_of, choices);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OptimizeConfig, Optimizer};

    /// Facade shorthand keeping this module's call sites compact.
    fn optimize(
        tree: &fp_tree::FloorplanTree,
        library: &fp_tree::ModuleLibrary,
        config: &OptimizeConfig,
    ) -> Result<crate::Outcome, crate::OptError> {
        Optimizer::new(tree, library).config(config).run_best()
    }
    use fp_tree::generators;
    use fp_tree::layout::realize;
    use proptest::prelude::*;

    #[test]
    fn caps_excessive_wheels() {
        let bench = generators::fp1();
        let lib = generators::module_library(&bench.tree, 6, 1);
        assert!(direct_optimal(&bench.tree, &lib, 100).is_err());
    }

    #[test]
    fn single_wheel_matches_engine() {
        use fp_tree::Chirality;
        let mut t = FloorplanTree::new();
        let ids: Vec<_> = (0..5).map(|m| t.leaf(m)).collect();
        t.wheel(
            Chirality::Clockwise,
            [ids[0], ids[1], ids[2], ids[3], ids[4]],
        );
        let lib = generators::module_library(&t, 5, 17);
        let (area, assignment) = direct_optimal(&t, &lib, 1 << 20).expect("solves");
        let engine = optimize(&t, &lib, &OptimizeConfig::default()).expect("runs");
        assert_eq!(area, engine.area);
        let layout = realize(&t, &lib, &assignment).expect("valid");
        assert_eq!(layout.area(), area);
        assert_eq!(layout.validate(), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// The staged L-join engine and the direct 5-way cross product are
        /// two independent implementations of wheel composition: they must
        /// agree on every random mixed floorplan.
        #[test]
        fn direct_matches_engine(tree_seed in 0u64..60, lib_seed in 0u64..20,
                                 leaves in 5usize..14) {
            let bench = generators::random_floorplan(leaves, 0.7, tree_seed);
            let lib = generators::module_library(&bench.tree, 3, lib_seed);
            let direct = direct_optimal(&bench.tree, &lib, 1 << 22);
            prop_assume!(direct.is_ok()); // skip over-cap instances
            let (area, assignment) = direct.expect("checked");
            let engine = optimize(&bench.tree, &lib, &OptimizeConfig::default())
                .expect("runs");
            prop_assert_eq!(area, engine.area);
            let layout = realize(&bench.tree, &lib, &assignment).expect("valid");
            prop_assert_eq!(layout.area(), area);
            prop_assert_eq!(layout.validate(), None);
        }
    }
}
