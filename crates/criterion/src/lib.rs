//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The workspace builds without network access, so it cannot pull the real
//! `criterion` crate from a registry. This shim provides the API subset the
//! benches under `crates/bench/benches/` use — groups, `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], `sample_size`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by plain
//! wall-clock timing. It reports the mean and best iteration time per
//! benchmark on stdout. Statistical analysis, plots, and baselines are out
//! of scope: the goal is that `cargo bench` runs and produces honest
//! comparative numbers, not publication-grade measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-exported opaque value barrier preventing the optimizer from deleting
/// benchmarked work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Identifies one benchmark within a group: an optional function name plus
/// an optional parameter rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: Some(function_name.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter rendering.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::new(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function_name: &str) -> Self {
        BenchmarkId {
            function: Some(function_name.to_owned()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function_name: String) -> Self {
        BenchmarkId {
            function: Some(function_name),
            parameter: None,
        }
    }
}

/// Times one closure repeatedly; handed to benchmark bodies.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    elapsed: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            elapsed: Vec::new(),
        }
    }

    /// Runs `routine` once as warm-up and then `sample_size` timed times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.elapsed.clear();
        self.elapsed.reserve(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.elapsed.push(start.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.elapsed.is_empty() {
            println!("{label:<48} (no samples)");
            return;
        }
        let total: Duration = self.elapsed.iter().sum();
        let mean = total / self.elapsed.len() as u32;
        let best = self.elapsed.iter().min().copied().unwrap_or_default();
        println!(
            "{label:<48} mean {:>12} best {:>12} ({} samples)",
            format_duration(mean),
            format_duration(best),
            self.elapsed.len()
        );
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// The top-level benchmark driver created by [`criterion_main!`].
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(DEFAULT_SAMPLE_SIZE);
        routine(&mut bencher);
        bencher.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// A named group of benchmarks sharing a sample-size setting.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark in the group runs.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().render());
        let mut bencher = Bencher::new(self.sample_size);
        routine(&mut bencher);
        bencher.report(&label);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.render());
        let mut bencher = Bencher::new(self.sample_size);
        routine(&mut bencher, input);
        bencher.report(&label);
        self
    }

    /// Ends the group. (The shim keeps no cross-group state; this exists
    /// for API compatibility.)
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` invoking each [`criterion_group!`]-defined group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("s", 4000).render(), "s/4000");
        assert_eq!(BenchmarkId::from_parameter(0.05).render(), "0.05");
        assert_eq!(BenchmarkId::from("off").render(), "off");
    }

    #[test]
    fn group_runs_every_sample() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        {
            let mut group = c.benchmark_group("shim");
            group.sample_size(7);
            group.bench_function("count", |b| b.iter(|| runs += 1));
            group.finish();
        }
        // One warm-up call plus seven timed samples.
        assert_eq!(runs, 8);
    }

    #[test]
    fn bench_with_input_passes_input_through() {
        let mut c = Criterion::default();
        let mut seen = 0u64;
        let mut group = c.benchmark_group("shim");
        group.sample_size(1);
        group.bench_with_input(BenchmarkId::new("n", 17), &17u64, |b, &n| {
            b.iter(|| seen = n);
        });
        group.finish();
        assert_eq!(seen, 17);
    }

    #[test]
    fn macros_expand() {
        fn bench_a(c: &mut Criterion) {
            c.bench_function("a", |b| b.iter(|| black_box(1 + 1)));
        }
        criterion_group!(benches, bench_a);
        benches();
    }
}
