//! The in-memory metrics registry: lifetime counters plus latency
//! histograms, rendered in the Prometheus text exposition format.
//!
//! The registry accumulates [`TraceSummary`] values — one per drained
//! run — so its counters are, by construction, the running sum of the
//! per-request `trace_summary` objects a server hands back.

use std::sync::Mutex;

use crate::TraceSummary;

/// Upper bounds (seconds) of the latency histogram buckets; the
/// implicit `+Inf` bucket completes the series.
const LATENCY_BOUNDS: [f64; 10] = [0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0];

/// One cumulative histogram over [`LATENCY_BOUNDS`].
#[derive(Debug, Clone, Default, PartialEq)]
struct Histogram {
    counts: [u64; LATENCY_BOUNDS.len() + 1],
    sum: f64,
    count: u64,
}

impl Histogram {
    fn observe(&mut self, seconds: f64) {
        let slot = LATENCY_BOUNDS
            .iter()
            .position(|&b| seconds <= b)
            .unwrap_or(LATENCY_BOUNDS.len());
        self.counts[slot] += 1;
        self.sum += seconds;
        self.count += 1;
    }

    fn render(&self, name: &str, out: &mut String) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0;
        for (slot, bound) in LATENCY_BOUNDS.iter().enumerate() {
            cumulative += self.counts[slot];
            let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        cumulative += self.counts[LATENCY_BOUNDS.len()];
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{name}_sum {}", self.sum);
        let _ = writeln!(out, "{name}_count {}", self.count);
    }
}

#[derive(Debug, Default)]
struct Inner {
    runs: u64,
    totals: TraceSummary,
    run_seconds: Histogram,
    selection_seconds: Histogram,
}

/// A consistent copy of the registry's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Runs absorbed.
    pub runs: u64,
    /// Summed per-run counters.
    pub totals: TraceSummary,
}

/// Lifetime counters + histograms for a long-lived process (the batch
/// server). Thread-safe; absorbing a run and rendering the exposition
/// both take one short lock.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Folds one run's summary into the lifetime counters and observes
    /// its run/selection latencies.
    pub fn absorb(&self, summary: &TraceSummary) {
        let Ok(mut inner) = self.inner.lock() else {
            return;
        };
        inner.runs += 1;
        let t = &mut inner.totals;
        t.events += summary.events;
        t.dropped += summary.dropped;
        t.joins += summary.joins;
        t.selections_legacy += summary.selections_legacy;
        t.selections_dense += summary.selections_dense;
        t.selections_monge += summary.selections_monge;
        t.monge_fallbacks += summary.monge_fallbacks;
        t.cache_hits += summary.cache_hits;
        t.cache_misses += summary.cache_misses;
        t.cache_evictions += summary.cache_evictions;
        t.steals += summary.steals;
        t.steal_batches += summary.steal_batches;
        t.split_inlines += summary.split_inlines;
        t.replay_discards += summary.replay_discards;
        t.rescues += summary.rescues;
        t.deadline_trips += summary.deadline_trips;
        t.hpwl_evals += summary.hpwl_evals;
        t.nets_touched += summary.nets_touched;
        t.pareto_inserts += summary.pareto_inserts;
        t.jobs += summary.jobs;
        t.jobs_shed += summary.jobs_shed;
        t.job_queue_ns += summary.job_queue_ns;
        t.job_ns += summary.job_ns;
        t.join_ns += summary.join_ns;
        t.selection_ns += summary.selection_ns;
        t.run_ns += summary.run_ns;
        let run_s = summary.run_ns as f64 / 1e9;
        let sel_s = summary.selection_ns as f64 / 1e9;
        inner.run_seconds.observe(run_s);
        inner.selection_seconds.observe(sel_s);
    }

    /// A copy of the current counters.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner.lock().map_or_else(
            |_| MetricsSnapshot::default(),
            |inner| MetricsSnapshot {
                runs: inner.runs,
                totals: inner.totals,
            },
        )
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (version 0.0.4). Counter names mirror the per-run
    /// [`TraceSummary`] field names as `fp_<field>_total`, except the
    /// three solver counters which share `fp_selections_total` with a
    /// `solver` label.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let Ok(inner) = self.inner.lock() else {
            return String::new();
        };
        let t = &inner.totals;
        let mut out = String::with_capacity(2048);
        let _ = writeln!(out, "# TYPE fp_runs_total counter");
        let _ = writeln!(out, "fp_runs_total {}", inner.runs);
        let _ = writeln!(out, "# TYPE fp_selections_total counter");
        for (solver, count) in [
            ("legacy", t.selections_legacy),
            ("dense", t.selections_dense),
            ("monge", t.selections_monge),
        ] {
            let _ = writeln!(out, "fp_selections_total{{solver=\"{solver}\"}} {count}");
        }
        for (name, value) in [
            ("events", t.events),
            ("dropped", t.dropped),
            ("joins", t.joins),
            ("monge_fallbacks", t.monge_fallbacks),
            ("cache_hits", t.cache_hits),
            ("cache_misses", t.cache_misses),
            ("cache_evictions", t.cache_evictions),
            ("steals", t.steals),
            ("steal_batches", t.steal_batches),
            ("split_inlines", t.split_inlines),
            ("replay_discards", t.replay_discards),
            ("rescues", t.rescues),
            ("deadline_trips", t.deadline_trips),
            ("hpwl_evals", t.hpwl_evals),
            ("nets_touched", t.nets_touched),
            ("pareto_inserts", t.pareto_inserts),
            ("jobs", t.jobs),
            ("jobs_shed", t.jobs_shed),
            ("job_queue_ns", t.job_queue_ns),
            ("job_ns", t.job_ns),
            ("join_ns", t.join_ns),
            ("selection_ns", t.selection_ns),
            ("run_ns", t.run_ns),
        ] {
            let _ = writeln!(out, "# TYPE fp_{name}_total counter");
            let _ = writeln!(out, "fp_{name}_total {value}");
        }
        inner
            .run_seconds
            .render("fp_run_duration_seconds", &mut out);
        inner
            .selection_seconds
            .render("fp_selection_duration_seconds", &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary() -> TraceSummary {
        TraceSummary {
            events: 10,
            joins: 4,
            selections_dense: 3,
            selections_monge: 1,
            cache_hits: 2,
            cache_misses: 2,
            run_ns: 2_000_000, // 2 ms
            selection_ns: 500_000,
            ..TraceSummary::default()
        }
    }

    #[test]
    fn absorb_sums_counters() {
        let registry = MetricsRegistry::new();
        registry.absorb(&summary());
        registry.absorb(&summary());
        let snap = registry.snapshot();
        assert_eq!(snap.runs, 2);
        assert_eq!(snap.totals.joins, 8);
        assert_eq!(snap.totals.selections_dense, 6);
        assert_eq!(snap.totals.run_ns, 4_000_000);
    }

    #[test]
    fn prometheus_rendering_carries_every_counter() {
        let registry = MetricsRegistry::new();
        registry.absorb(&summary());
        let text = registry.render_prometheus();
        assert!(text.contains("fp_runs_total 1"));
        assert!(text.contains("fp_joins_total 4"));
        assert!(text.contains("fp_selections_total{solver=\"dense\"} 3"));
        assert!(text.contains("fp_selections_total{solver=\"monge\"} 1"));
        assert!(text.contains("fp_cache_hits_total 2"));
        assert!(text.contains("fp_run_duration_seconds_bucket{le=\"0.005\"} 1"));
        assert!(text.contains("fp_run_duration_seconds_count 1"));
        // Every line is name<space>value or a comment: exposition-parseable.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split(' ').count() == 2,
                "{line}"
            );
        }
    }
}
