//! The self-profiler: reconstructs a per-phase wall-time tree from the
//! `phase` spans of one drained trace — the Table-1-style breakdown of
//! Wang–Wong DAC'92, produced from a single run instead of a benchmark
//! harness.

use std::fmt;

use crate::{PhaseName, Trace, TraceEvent};

/// Per-phase wall-time totals of one run, with the fixed two-level
/// hierarchy the pipeline actually has:
///
/// ```text
/// run
/// ├ restructure
/// ├ enumerate
/// │ └ selection
/// ├ replay
/// ├ cache_flush
/// ├ trace_back
/// └ other          (run − the named top-level phases)
/// ```
///
/// `run` is stamped from the engine's own `RunStats::elapsed` and
/// `selection` from `RunStats::selection_time`, so the report
/// reconciles with the run statistics exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfileReport {
    /// The root span (equals `RunStats::elapsed`).
    pub run_ns: u64,
    /// Tree restructuring.
    pub restructure_ns: u64,
    /// The bottom-up enumeration (selection included).
    pub enumerate_ns: u64,
    /// Selection solves (a child of `enumerate`; equals
    /// `RunStats::selection_time`).
    pub selection_ns: u64,
    /// Exact serial-schedule replay (parallel runs only).
    pub replay_ns: u64,
    /// Buffered cache-store flush (parallel cached runs only).
    pub cache_flush_ns: u64,
    /// Root trace-back to module choices.
    pub trace_back_ns: u64,
}

impl ProfileReport {
    /// `run` minus every named top-level phase: bookkeeping the
    /// pipeline does between phases (governor polling, store pushes,
    /// frontier assembly). Saturates at zero against clock jitter.
    #[must_use]
    pub fn other_ns(&self) -> u64 {
        self.run_ns.saturating_sub(
            self.restructure_ns
                + self.enumerate_ns
                + self.replay_ns
                + self.cache_flush_ns
                + self.trace_back_ns,
        )
    }

    /// Sum of the named top-level phases plus `other` — by construction
    /// equal to `run_ns` (up to the saturation above), which is the ≤1%
    /// reconciliation the profiler promises.
    #[must_use]
    pub fn accounted_ns(&self) -> u64 {
        self.restructure_ns
            + self.enumerate_ns
            + self.replay_ns
            + self.cache_flush_ns
            + self.trace_back_ns
            + self.other_ns()
    }
}

/// Builds the report by summing each phase's spans (a rescued or
/// replayed run can emit a phase more than once).
pub(crate) fn build(trace: &Trace) -> ProfileReport {
    let mut report = ProfileReport::default();
    for record in &trace.events {
        let TraceEvent::Phase { name, dur_ns } = record.event else {
            continue;
        };
        match name {
            PhaseName::Run => report.run_ns += dur_ns,
            PhaseName::Restructure => report.restructure_ns += dur_ns,
            PhaseName::Enumerate => report.enumerate_ns += dur_ns,
            PhaseName::Selection => report.selection_ns += dur_ns,
            PhaseName::Replay => report.replay_ns += dur_ns,
            PhaseName::CacheFlush => report.cache_flush_ns += dur_ns,
            PhaseName::TraceBack => report.trace_back_ns += dur_ns,
        }
    }
    report
}

fn line(f: &mut fmt::Formatter<'_>, prefix: &str, name: &str, ns: u64, run_ns: u64) -> fmt::Result {
    let millis = ns as f64 / 1e6;
    let share = if run_ns == 0 {
        0.0
    } else {
        100.0 * ns as f64 / run_ns as f64
    };
    writeln!(f, "{prefix}{name:<12} {millis:>10.3} ms {share:>6.1}%")
}

impl fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let run = self.run_ns;
        line(f, "", "run", run, run)?;
        line(f, "├ ", "restructure", self.restructure_ns, run)?;
        line(f, "├ ", "enumerate", self.enumerate_ns, run)?;
        line(f, "│ └ ", "selection", self.selection_ns, run)?;
        if self.replay_ns > 0 {
            line(f, "├ ", "replay", self.replay_ns, run)?;
        }
        if self.cache_flush_ns > 0 {
            line(f, "├ ", "cache_flush", self.cache_flush_ns, run)?;
        }
        line(f, "├ ", "trace_back", self.trace_back_ns, run)?;
        line(f, "└ ", "other", self.other_ns(), run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Record;

    fn phase(name: PhaseName, dur_ns: u64) -> Record {
        Record {
            t_ns: 0,
            worker: 0,
            event: TraceEvent::Phase { name, dur_ns },
        }
    }

    #[test]
    fn report_reconciles_with_the_run_span() {
        let trace = Trace {
            events: vec![
                phase(PhaseName::Restructure, 50),
                phase(PhaseName::Enumerate, 800),
                phase(PhaseName::Selection, 300),
                phase(PhaseName::TraceBack, 20),
                phase(PhaseName::Run, 1_000),
            ],
            dropped: 0,
        };
        let report = trace.profile();
        assert_eq!(report.run_ns, 1_000);
        assert_eq!(report.other_ns(), 130);
        assert_eq!(report.accounted_ns(), report.run_ns);
        let rendered = format!("{report}");
        assert!(rendered.contains("run"));
        assert!(rendered.contains("selection"));
        assert!(rendered.contains("100.0%"));
        // Parallel-only phases absent from a serial run's tree.
        assert!(!rendered.contains("replay"));
    }

    #[test]
    fn children_exceeding_run_saturate_other_at_zero() {
        let trace = Trace {
            events: vec![
                phase(PhaseName::Enumerate, 1_100),
                phase(PhaseName::Run, 1_000),
            ],
            dropped: 0,
        };
        assert_eq!(trace.profile().other_ns(), 0);
    }
}
