//! Structured observability for the floorplan optimizer.
//!
//! The engine's four execution regimes — serial, work-stealing parallel,
//! memoized, and the flat Monge CSPP kernel — each leave their own ad-hoc
//! breadcrumbs (`RunStats` counters, degradation logs, cache statistics).
//! This crate unifies them behind one *std-only, zero-dependency* event
//! pipeline:
//!
//! * a [`Tracer`]: a lock-cheap ring-buffer collector with per-worker
//!   buffers, drained post-run. When no subscriber is installed
//!   ([`Tracer::unsubscribed`]) every emission is a single branch on a
//!   pre-resolved boolean — cheap enough to leave the instrumentation
//!   compiled in unconditionally (the overhead budget is ≤2%, enforced
//!   by `trace_bench`);
//! * a stable event vocabulary ([`TraceEvent`]) covering the whole
//!   pipeline: joins, selections (with the CSPP solver kind that ran),
//!   Monge-certification fallbacks, cache traffic, work steals, serial
//!   replay discards, rescues, deadline trips, and phase spans;
//! * two sinks: JSON-lines export ([`Trace::write_jsonl`]) and an
//!   in-memory [`MetricsRegistry`] with Prometheus text rendering for
//!   the batch server;
//! * a self-profiler ([`Trace::profile`]): the Table-1-style per-phase
//!   wall-time breakdown reconstructed from one run's phase spans.
//!
//! ```
//! use fp_trace::{Tracer, TraceEvent, SolverKind};
//!
//! let tracer = Tracer::new();
//! tracer.emit(0, TraceEvent::CacheMiss { node: 3 });
//! tracer.emit(
//!     0,
//!     TraceEvent::Selection {
//!         node: 3,
//!         solver: SolverKind::Dense,
//!         legacy: 0,
//!         dense: 1,
//!         monge: 0,
//!         k: 8,
//!         n: 64,
//!         dur_ns: 1_000,
//!     },
//! );
//! let trace = tracer.drain();
//! assert_eq!(trace.events.len(), 2);
//! assert_eq!(trace.summary().selections_dense, 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

mod metrics;
mod profile;

pub use metrics::{MetricsRegistry, MetricsSnapshot};
pub use profile::ProfileReport;

/// Which CSPP solver produced a selection (the engine's three solve
/// paths).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    /// The legacy adjacency-list DAG DP (`constrained_shortest_path`).
    Legacy,
    /// The flat layered kernel's exhaustive dense layer.
    Dense,
    /// The flat kernel's divide-and-conquer row minima on a
    /// certified-Monge weight matrix.
    Monge,
}

impl SolverKind {
    /// Stable wire name (`legacy` / `dense` / `monge`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SolverKind::Legacy => "legacy",
            SolverKind::Dense => "dense",
            SolverKind::Monge => "monge",
        }
    }
}

/// The class of a batch-executor job (`fp_optimizer::exec`): which
/// subsystem submitted it. Labels the `job_start`/`job_done` events and
/// the per-class Prometheus gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobClass {
    /// A server request (one fpserved protocol line).
    Serve,
    /// One annealing chain of a multi-start run.
    Anneal,
    /// A session re-optimization.
    Session,
}

impl JobClass {
    /// Stable wire name (`serve` / `anneal` / `session`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JobClass::Serve => "serve",
            JobClass::Anneal => "anneal",
            JobClass::Session => "session",
        }
    }
}

/// A named phase of the optimization pipeline (the profiler's tree
/// nodes). `Run` is the root span and always equals the run's
/// `RunStats::elapsed`, so profile totals reconcile with the engine's
/// own accounting by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseName {
    /// The whole run (root span; equals `RunStats::elapsed`).
    Run,
    /// Tree restructuring (DAC'92 §3).
    Restructure,
    /// The bottom-up enumeration over all blocks.
    Enumerate,
    /// Time inside `R_Selection`/`L_Selection` solves (a child of
    /// `Enumerate`; equals `RunStats::selection_time`).
    Selection,
    /// The parallel scheduler's exact serial-schedule replay.
    Replay,
    /// Flushing buffered cache stores after a clean replay.
    CacheFlush,
    /// Tracing the chosen root implementation back to module choices.
    TraceBack,
}

impl PhaseName {
    /// Stable wire name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            PhaseName::Run => "run",
            PhaseName::Restructure => "restructure",
            PhaseName::Enumerate => "enumerate",
            PhaseName::Selection => "selection",
            PhaseName::Replay => "replay",
            PhaseName::CacheFlush => "cache_flush",
            PhaseName::TraceBack => "trace_back",
        }
    }
}

/// One structured event. The vocabulary is stable: names and fields are
/// part of the JSON-lines schema validated in CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A join block build began.
    JoinStart {
        /// Restructured-tree node id.
        node: u32,
        /// Left operand's implementation count.
        left_len: u32,
        /// Right operand's implementation count.
        right_len: u32,
    },
    /// A join block build finished (enumeration + pruning + selection).
    JoinDone {
        /// Restructured-tree node id.
        node: u32,
        /// Implementations committed by the block.
        out_len: u32,
        /// Wall time of the build.
        dur_ns: u64,
    },
    /// One `R_Selection`/`L_Selection` application (possibly many CSPP
    /// solves — one per L-chain).
    Selection {
        /// Restructured-tree node id.
        node: u32,
        /// The dominant solver kind of this application.
        solver: SolverKind,
        /// Legacy-DAG solves performed.
        legacy: u32,
        /// Dense flat-kernel solves performed.
        dense: u32,
        /// Divide-and-conquer (Monge) solves performed.
        monge: u32,
        /// The selection limit (`K₁` or `K₂`).
        k: u32,
        /// Input implementation count.
        n: u32,
        /// Wall time of the application.
        dur_ns: u64,
    },
    /// The flat kernel was D&C-eligible but Monge certification failed,
    /// forcing the dense layer.
    MongeFallback {
        /// Restructured-tree node id.
        node: u32,
        /// How many solves fell back within this selection.
        count: u32,
    },
    /// A join block was served from the content-addressed cache.
    CacheHit {
        /// Restructured-tree node id.
        node: u32,
        /// Implementations reconstituted.
        len: u32,
    },
    /// A join block was looked up but not found.
    CacheMiss {
        /// Restructured-tree node id.
        node: u32,
    },
    /// The cache evicted entries to stay under its byte budget.
    CacheEvict {
        /// Entries evicted since the previous snapshot.
        count: u64,
    },
    /// A scheduler worker stole a node from another worker's deque.
    Steal {
        /// The thief.
        worker: u32,
        /// The victim whose deque was popped.
        victim: u32,
    },
    /// A scheduler worker stole a batch of tasks from another worker's
    /// deque in one sweep (granularity-aware stealing; single-task
    /// steals emit [`TraceEvent::Steal`]).
    StealBatch {
        /// The thief.
        worker: u32,
        /// The victim whose deque was drained.
        victim: u32,
        /// Tasks moved in the sweep (always ≥ 2).
        count: u32,
    },
    /// A small subtree ran inline as one serial task instead of being
    /// split into per-node tasks (scheduler granularity control).
    SplitInline {
        /// Root node of the inline subtree (restructured-tree id).
        node: u32,
        /// Binary-tree nodes the task covered.
        nodes: u32,
    },
    /// The parallel pass was discarded and the run fell back to the
    /// serial path.
    ReplayDiscard {
        /// Why (`trip_fallback`, `replay_budget`, `worker_hole`, …).
        reason: &'static str,
    },
    /// The rescue ladder fired: a block is being retried under
    /// tightened policies.
    Rescue {
        /// The tripped block.
        block: u32,
        /// Run-wide rescue attempt ordinal (1-based).
        attempt: u32,
        /// Live implementations when the trip fired.
        live: u64,
    },
    /// The wall-clock deadline tripped (never rescued).
    DeadlineTrip {
        /// The block being built when the deadline passed.
        block: u32,
        /// Elapsed run time at the trip.
        elapsed_ns: u64,
    },
    /// One HPWL evaluation over a realized layout (full or
    /// incremental).
    HpwlEval {
        /// Nets in the bound netlist.
        nets: u32,
        /// Nets whose bounding boxes were actually recomputed (equals
        /// `nets` for a full evaluation).
        touched: u32,
        /// Wall time of the evaluation.
        dur_ns: u64,
    },
    /// A candidate survived non-dominated insertion into a Pareto
    /// front.
    ParetoInsert {
        /// Frontier envelope index of the surviving candidate.
        index: u32,
        /// Front size after the insertion.
        front_len: u32,
    },
    /// A completed phase span (see [`PhaseName`]).
    Phase {
        /// Which phase.
        name: PhaseName,
        /// Wall time of the phase.
        dur_ns: u64,
    },
    /// A queued executor job began running on a pool worker.
    JobStart {
        /// Executor-assigned job id (monotone per executor).
        job: u32,
        /// Which subsystem submitted the job.
        class: JobClass,
        /// Nanoseconds the job waited in the queue before starting.
        queue_ns: u64,
    },
    /// An executor job finished (successfully or tripped — trips are
    /// reported in the job's own reply, not here).
    JobDone {
        /// Executor-assigned job id.
        job: u32,
        /// Which subsystem submitted the job.
        class: JobClass,
        /// Nanoseconds the job spent executing.
        dur_ns: u64,
    },
    /// A job was refused before ever executing (admission control,
    /// connection cap, or a queue-deadline shed).
    Shed {
        /// Why (`queue_full`, `too_many_connections`, `queue_deadline`).
        reason: &'static str,
    },
}

impl TraceEvent {
    /// The event's stable wire name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::JoinStart { .. } => "join_start",
            TraceEvent::JoinDone { .. } => "join_done",
            TraceEvent::Selection { .. } => "selection",
            TraceEvent::MongeFallback { .. } => "monge_fallback",
            TraceEvent::CacheHit { .. } => "cache_hit",
            TraceEvent::CacheMiss { .. } => "cache_miss",
            TraceEvent::CacheEvict { .. } => "cache_evict",
            TraceEvent::Steal { .. } => "steal",
            TraceEvent::StealBatch { .. } => "steal_batch",
            TraceEvent::SplitInline { .. } => "split_inline",
            TraceEvent::ReplayDiscard { .. } => "replay_discard",
            TraceEvent::Rescue { .. } => "rescue",
            TraceEvent::DeadlineTrip { .. } => "deadline_trip",
            TraceEvent::HpwlEval { .. } => "hpwl_eval",
            TraceEvent::ParetoInsert { .. } => "pareto_insert",
            TraceEvent::Phase { .. } => "phase",
            TraceEvent::JobStart { .. } => "job_start",
            TraceEvent::JobDone { .. } => "job_done",
            TraceEvent::Shed { .. } => "shed",
        }
    }

    /// Appends the event's fields (excluding the envelope) as JSON
    /// members to `out`.
    fn write_fields(&self, out: &mut String) {
        use std::fmt::Write as _;
        match *self {
            TraceEvent::JoinStart {
                node,
                left_len,
                right_len,
            } => {
                let _ = write!(
                    out,
                    r#","node":{node},"left_len":{left_len},"right_len":{right_len}"#
                );
            }
            TraceEvent::JoinDone {
                node,
                out_len,
                dur_ns,
            } => {
                let _ = write!(
                    out,
                    r#","node":{node},"out_len":{out_len},"dur_ns":{dur_ns}"#
                );
            }
            TraceEvent::Selection {
                node,
                solver,
                legacy,
                dense,
                monge,
                k,
                n,
                dur_ns,
            } => {
                let _ = write!(
                    out,
                    r#","node":{node},"solver":"{}","legacy":{legacy},"dense":{dense},"monge":{monge},"k":{k},"n":{n},"dur_ns":{dur_ns}"#,
                    solver.as_str()
                );
            }
            TraceEvent::MongeFallback { node, count } => {
                let _ = write!(out, r#","node":{node},"count":{count}"#);
            }
            TraceEvent::CacheHit { node, len } => {
                let _ = write!(out, r#","node":{node},"len":{len}"#);
            }
            TraceEvent::CacheMiss { node } => {
                let _ = write!(out, r#","node":{node}"#);
            }
            TraceEvent::CacheEvict { count } => {
                let _ = write!(out, r#","count":{count}"#);
            }
            TraceEvent::Steal { worker, victim } => {
                let _ = write!(out, r#","thief":{worker},"victim":{victim}"#);
            }
            TraceEvent::StealBatch {
                worker,
                victim,
                count,
            } => {
                let _ = write!(
                    out,
                    r#","thief":{worker},"victim":{victim},"count":{count}"#
                );
            }
            TraceEvent::SplitInline { node, nodes } => {
                let _ = write!(out, r#","node":{node},"nodes":{nodes}"#);
            }
            TraceEvent::ReplayDiscard { reason } => {
                let _ = write!(out, r#","reason":"{reason}""#);
            }
            TraceEvent::Rescue {
                block,
                attempt,
                live,
            } => {
                let _ = write!(out, r#","block":{block},"attempt":{attempt},"live":{live}"#);
            }
            TraceEvent::DeadlineTrip { block, elapsed_ns } => {
                let _ = write!(out, r#","block":{block},"elapsed_ns":{elapsed_ns}"#);
            }
            TraceEvent::HpwlEval {
                nets,
                touched,
                dur_ns,
            } => {
                let _ = write!(
                    out,
                    r#","nets":{nets},"touched":{touched},"dur_ns":{dur_ns}"#
                );
            }
            TraceEvent::ParetoInsert { index, front_len } => {
                let _ = write!(out, r#","index":{index},"front_len":{front_len}"#);
            }
            TraceEvent::Phase { name, dur_ns } => {
                let _ = write!(out, r#","phase":"{}","dur_ns":{dur_ns}"#, name.as_str());
            }
            TraceEvent::JobStart {
                job,
                class,
                queue_ns,
            } => {
                let _ = write!(
                    out,
                    r#","job":{job},"class":"{}","queue_ns":{queue_ns}"#,
                    class.as_str()
                );
            }
            TraceEvent::JobDone { job, class, dur_ns } => {
                let _ = write!(
                    out,
                    r#","job":{job},"class":"{}","dur_ns":{dur_ns}"#,
                    class.as_str()
                );
            }
            TraceEvent::Shed { reason } => {
                let _ = write!(out, r#","reason":"{reason}""#);
            }
        }
    }
}

/// One collected event with its envelope: nanoseconds since the
/// tracer's epoch and the emitting worker's id (`0` = the main/serial
/// thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record {
    /// Nanoseconds since [`Tracer`] creation.
    pub t_ns: u64,
    /// Emitting worker (`0` = main thread; scheduler workers are
    /// `1..=threads`).
    pub worker: u32,
    /// The event payload.
    pub event: TraceEvent,
}

impl Record {
    /// Serializes the record as one JSON object (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            r#"{{"t_ns":{},"worker":{},"event":"{}""#,
            self.t_ns,
            self.worker,
            self.event.name()
        );
        self.event.write_fields(&mut out);
        out.push('}');
        out
    }
}

/// Events a full ring buffer had to drop, per buffer.
#[derive(Debug, Default)]
struct RingBuffer {
    events: Vec<Record>,
    dropped: u64,
}

/// Per-worker ring-buffer capacity of [`Tracer::new`]. Generous for the
/// paper benchmarks (FP4 emits a few thousand events end to end) while
/// bounding a runaway producer to a few megabytes.
pub const DEFAULT_BUFFER_CAPACITY: usize = 1 << 16;

/// How many per-worker buffers a tracer carries. Workers above this
/// count share buffers (`worker % BUFFERS`), trading a little lock
/// contention for a fixed footprint.
const BUFFERS: usize = 16;

struct TracerShared {
    /// Resolved once at construction; [`Tracer::emit`] is a single
    /// branch on this when tracing is off.
    subscribed: bool,
    epoch: Instant,
    buffers: Vec<Mutex<RingBuffer>>,
    capacity: usize,
    dropped: AtomicU64,
}

/// The event collector. Cloning is cheap (an [`Arc`] bump) and all
/// clones feed the same buffers, so one tracer can be shared across the
/// scheduler's worker threads, a session, and its server.
#[derive(Clone)]
pub struct Tracer {
    shared: Arc<TracerShared>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("subscribed", &self.shared.subscribed)
            .field("capacity", &self.shared.capacity)
            .finish_non_exhaustive()
    }
}

impl Tracer {
    /// A subscribed tracer with the default per-worker capacity.
    #[must_use]
    pub fn new() -> Self {
        Tracer::with_capacity(DEFAULT_BUFFER_CAPACITY)
    }

    /// A subscribed tracer whose per-worker ring buffers hold at most
    /// `capacity` events each; beyond that, newest events are dropped
    /// and counted ([`Trace::dropped`]).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer::build(true, capacity.max(1))
    }

    /// A tracer with no subscriber: every [`Tracer::emit`] is a single
    /// predictable branch and nothing is recorded. This is the mode the
    /// ≤2% overhead budget is measured against.
    #[must_use]
    pub fn unsubscribed() -> Self {
        Tracer::build(false, 1)
    }

    fn build(subscribed: bool, capacity: usize) -> Self {
        Tracer {
            shared: Arc::new(TracerShared {
                subscribed,
                epoch: Instant::now(),
                buffers: (0..BUFFERS)
                    .map(|_| Mutex::new(RingBuffer::default()))
                    .collect(),
                capacity,
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// Whether events are actually recorded.
    #[inline]
    #[must_use]
    pub fn is_subscribed(&self) -> bool {
        self.shared.subscribed
    }

    /// Records `event` from `worker` (`0` = main thread). A no-op — one
    /// branch, no clock read, no lock — when unsubscribed.
    #[inline]
    pub fn emit(&self, worker: u32, event: TraceEvent) {
        if !self.shared.subscribed {
            return;
        }
        self.record(worker, event);
    }

    #[cold]
    fn record(&self, worker: u32, event: TraceEvent) {
        let t_ns = u64::try_from(self.shared.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let slot = (worker as usize) % self.shared.buffers.len();
        let Ok(mut buf) = self.shared.buffers[slot].lock() else {
            self.shared.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        if buf.events.len() >= self.shared.capacity {
            buf.dropped += 1;
            self.shared.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        buf.events.push(Record {
            t_ns,
            worker,
            event,
        });
    }

    /// Takes every buffered event (merged across workers, ordered by
    /// emission time) and resets the buffers for the next run.
    #[must_use]
    pub fn drain(&self) -> Trace {
        let mut events = Vec::new();
        let mut dropped = 0;
        for buf in &self.shared.buffers {
            let Ok(mut buf) = buf.lock() else { continue };
            events.append(&mut buf.events);
            dropped += buf.dropped;
            buf.dropped = 0;
        }
        self.shared.dropped.store(0, Ordering::Relaxed);
        events.sort_by_key(|r| r.t_ns);
        Trace { events, dropped }
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

/// A drained run trace: the merged, time-ordered event stream.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Time-ordered events.
    pub events: Vec<Record>,
    /// Events lost to full ring buffers.
    pub dropped: u64,
}

impl Trace {
    /// Writes the trace as JSON lines — one [`Record`] object per line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out`.
    pub fn write_jsonl<W: Write>(&self, out: &mut W) -> io::Result<()> {
        for record in &self.events {
            out.write_all(record.to_json().as_bytes())?;
            out.write_all(b"\n")?;
        }
        Ok(())
    }

    /// Aggregates the stream into counters and totals.
    #[must_use]
    pub fn summary(&self) -> TraceSummary {
        let mut s = TraceSummary {
            events: self.events.len() as u64,
            dropped: self.dropped,
            ..TraceSummary::default()
        };
        for record in &self.events {
            match record.event {
                TraceEvent::JoinStart { .. } => {}
                TraceEvent::JoinDone { dur_ns, .. } => {
                    s.joins += 1;
                    s.join_ns += dur_ns;
                }
                TraceEvent::Selection {
                    legacy,
                    dense,
                    monge,
                    dur_ns,
                    ..
                } => {
                    s.selections_legacy += u64::from(legacy);
                    s.selections_dense += u64::from(dense);
                    s.selections_monge += u64::from(monge);
                    s.selection_ns += dur_ns;
                }
                TraceEvent::MongeFallback { count, .. } => {
                    s.monge_fallbacks += u64::from(count);
                }
                TraceEvent::CacheHit { .. } => s.cache_hits += 1,
                TraceEvent::CacheMiss { .. } => s.cache_misses += 1,
                TraceEvent::CacheEvict { count } => s.cache_evictions += count,
                TraceEvent::Steal { .. } => s.steals += 1,
                TraceEvent::StealBatch { .. } => s.steal_batches += 1,
                TraceEvent::SplitInline { .. } => s.split_inlines += 1,
                TraceEvent::ReplayDiscard { .. } => s.replay_discards += 1,
                TraceEvent::Rescue { .. } => s.rescues += 1,
                TraceEvent::DeadlineTrip { .. } => s.deadline_trips += 1,
                TraceEvent::HpwlEval { touched, .. } => {
                    s.hpwl_evals += 1;
                    s.nets_touched += u64::from(touched);
                }
                TraceEvent::ParetoInsert { .. } => s.pareto_inserts += 1,
                TraceEvent::Phase { name, dur_ns } => {
                    if name == PhaseName::Run {
                        s.run_ns += dur_ns;
                    }
                }
                TraceEvent::JobStart { queue_ns, .. } => {
                    s.job_queue_ns += queue_ns;
                }
                TraceEvent::JobDone { dur_ns, .. } => {
                    s.jobs += 1;
                    s.job_ns += dur_ns;
                }
                TraceEvent::Shed { .. } => s.jobs_shed += 1,
            }
        }
        s
    }

    /// Reconstructs the per-phase wall-time tree (see [`ProfileReport`]).
    #[must_use]
    pub fn profile(&self) -> ProfileReport {
        profile::build(self)
    }
}

/// Counter aggregates of one drained trace. These are exactly the
/// counters the metrics registry accumulates, so a per-run summary and
/// the server's lifetime Prometheus counters always reconcile.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Events collected.
    pub events: u64,
    /// Events lost to full buffers.
    pub dropped: u64,
    /// Join blocks built (`join_done` events).
    pub joins: u64,
    /// CSPP solves through the legacy DAG path.
    pub selections_legacy: u64,
    /// CSPP solves through the dense flat kernel.
    pub selections_dense: u64,
    /// CSPP solves through the divide-and-conquer (Monge) kernel.
    pub selections_monge: u64,
    /// D&C-eligible solves that failed Monge certification.
    pub monge_fallbacks: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Cache evictions.
    pub cache_evictions: u64,
    /// Work steals between scheduler workers.
    pub steals: u64,
    /// Batched steals (one sweep moving several tasks).
    pub steal_batches: u64,
    /// Subtrees executed inline as one serial task.
    pub split_inlines: u64,
    /// Parallel passes discarded in favour of the serial path.
    pub replay_discards: u64,
    /// Rescue-ladder retries.
    pub rescues: u64,
    /// Deadline trips.
    pub deadline_trips: u64,
    /// HPWL evaluations (full or incremental).
    pub hpwl_evals: u64,
    /// Net bounding boxes recomputed across all HPWL evaluations.
    pub nets_touched: u64,
    /// Pareto-front insertions that survived dominance filtering.
    pub pareto_inserts: u64,
    /// Executor jobs completed (`job_done` events).
    pub jobs: u64,
    /// Jobs refused before execution (`shed` events).
    pub jobs_shed: u64,
    /// Total nanoseconds jobs waited in the executor queue.
    pub job_queue_ns: u64,
    /// Total nanoseconds jobs spent executing.
    pub job_ns: u64,
    /// Total nanoseconds inside join builds.
    pub join_ns: u64,
    /// Total nanoseconds inside selection solves.
    pub selection_ns: u64,
    /// The run span (`phase:run`) in nanoseconds.
    pub run_ns: u64,
}

impl TraceSummary {
    /// The counter fields by wire name, in stable order (drives both
    /// the JSON rendering and the Prometheus counter names).
    #[must_use]
    pub fn fields(&self) -> [(&'static str, u64); 26] {
        [
            ("events", self.events),
            ("dropped", self.dropped),
            ("joins", self.joins),
            ("selections_legacy", self.selections_legacy),
            ("selections_dense", self.selections_dense),
            ("selections_monge", self.selections_monge),
            ("monge_fallbacks", self.monge_fallbacks),
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
            ("cache_evictions", self.cache_evictions),
            ("steals", self.steals),
            ("steal_batches", self.steal_batches),
            ("split_inlines", self.split_inlines),
            ("replay_discards", self.replay_discards),
            ("rescues", self.rescues),
            ("deadline_trips", self.deadline_trips),
            ("hpwl_evals", self.hpwl_evals),
            ("nets_touched", self.nets_touched),
            ("pareto_inserts", self.pareto_inserts),
            ("jobs", self.jobs),
            ("jobs_shed", self.jobs_shed),
            ("job_queue_ns", self.job_queue_ns),
            ("job_ns", self.job_ns),
            ("join_ns", self.join_ns),
            ("selection_ns", self.selection_ns),
            ("run_ns", self.run_ns),
        ]
    }

    /// Renders the summary as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256);
        out.push('{');
        for (i, (name, value)) in self.fields().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, r#""{name}":{value}"#);
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsubscribed_records_nothing() {
        let tracer = Tracer::unsubscribed();
        assert!(!tracer.is_subscribed());
        tracer.emit(0, TraceEvent::CacheMiss { node: 1 });
        let trace = tracer.drain();
        assert!(trace.events.is_empty());
        assert_eq!(trace.dropped, 0);
    }

    #[test]
    fn drain_merges_workers_in_time_order() {
        let tracer = Tracer::new();
        tracer.emit(2, TraceEvent::CacheMiss { node: 1 });
        tracer.emit(0, TraceEvent::CacheHit { node: 2, len: 4 });
        tracer.emit(
            1,
            TraceEvent::Steal {
                worker: 1,
                victim: 2,
            },
        );
        let trace = tracer.drain();
        assert_eq!(trace.events.len(), 3);
        assert!(trace.events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
        // Drained buffers reset for the next run.
        assert!(tracer.drain().events.is_empty());
    }

    #[test]
    fn full_buffer_drops_and_counts() {
        let tracer = Tracer::with_capacity(2);
        for _ in 0..5 {
            tracer.emit(0, TraceEvent::CacheMiss { node: 0 });
        }
        let trace = tracer.drain();
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.dropped, 3);
    }

    #[test]
    fn summary_counts_every_kind() {
        let tracer = Tracer::new();
        tracer.emit(
            0,
            TraceEvent::JoinStart {
                node: 7,
                left_len: 3,
                right_len: 4,
            },
        );
        tracer.emit(
            0,
            TraceEvent::Selection {
                node: 7,
                solver: SolverKind::Monge,
                legacy: 0,
                dense: 1,
                monge: 2,
                k: 8,
                n: 64,
                dur_ns: 500,
            },
        );
        tracer.emit(0, TraceEvent::MongeFallback { node: 7, count: 1 });
        tracer.emit(
            0,
            TraceEvent::JoinDone {
                node: 7,
                out_len: 9,
                dur_ns: 1_000,
            },
        );
        tracer.emit(
            0,
            TraceEvent::Phase {
                name: PhaseName::Run,
                dur_ns: 2_000,
            },
        );
        let s = tracer.drain().summary();
        assert_eq!(s.joins, 1);
        assert_eq!(s.selections_dense, 1);
        assert_eq!(s.selections_monge, 2);
        assert_eq!(s.monge_fallbacks, 1);
        assert_eq!(s.join_ns, 1_000);
        assert_eq!(s.selection_ns, 500);
        assert_eq!(s.run_ns, 2_000);
        assert_eq!(s.events, 5);
    }

    #[test]
    fn jsonl_schema_is_stable() {
        let record = Record {
            t_ns: 42,
            worker: 1,
            event: TraceEvent::Selection {
                node: 3,
                solver: SolverKind::Dense,
                legacy: 0,
                dense: 1,
                monge: 0,
                k: 8,
                n: 32,
                dur_ns: 9,
            },
        };
        assert_eq!(
            record.to_json(),
            r#"{"t_ns":42,"worker":1,"event":"selection","node":3,"solver":"dense","legacy":0,"dense":1,"monge":0,"k":8,"n":32,"dur_ns":9}"#
        );
        let mut out = Vec::new();
        Trace {
            events: vec![record],
            dropped: 0,
        }
        .write_jsonl(&mut out)
        .expect("in-memory write");
        assert!(out.ends_with(b"\n"));
    }

    #[test]
    fn summary_json_lists_every_field() {
        let json = TraceSummary::default().to_json();
        for (name, _) in TraceSummary::default().fields() {
            assert!(json.contains(&format!(r#""{name}":"#)), "missing {name}");
        }
    }
}
