//! Long-lived optimization sessions over one floorplan instance.
//!
//! A [`Session`] keeps the restructured tree, the module library, and a
//! content-addressed block cache alive between optimization calls, so a
//! sequence of *edit → re-optimize* steps pays only for what changed:
//!
//! * [`Session::update_module`] replaces one module's implementation
//!   list. Content addressing re-fingerprints exactly the edited leaf
//!   and its root-path ancestors, so the next [`Session::optimize`]
//!   rebuilds `O(depth)` join blocks and reconstitutes every other
//!   subtree from cache.
//! * [`Session::update_policy`] swaps the selection policies. The
//!   policy fingerprint salts every block address, so this implicitly
//!   invalidates the whole cache (stale entries age out via LRU).
//! * [`Session::optimize`] is a plain cached run; repeating it without
//!   edits is a full-tree cache hit.
//!
//! ```
//! use fp_optimizer::OptimizeConfig;
//! use fp_session::Session;
//! use fp_tree::generators;
//!
//! let bench = generators::fp1();
//! let library = generators::module_library(&bench.tree, 4, 1);
//! let mut session = Session::open(
//!     bench.tree,
//!     library,
//!     OptimizeConfig::default(),
//!     16 << 20,
//! );
//! let cold = session.optimize()?;
//! let warm = session.optimize()?;
//! assert_eq!(cold.outcome.area, warm.outcome.area);
//! assert_eq!(warm.outcome.stats.cache_misses, 0);
//! # Ok::<(), fp_optimizer::OptError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use std::path::Path;

use fp_memo::CacheStats;
use fp_optimizer::{
    shared_cache, shared_cache_stats, OptError, OptimizeConfig, Optimizer, PersistError,
    RecoveryReport, RunOutcome, SharedBlockCache, Tracer,
};
use fp_tree::{FloorplanTree, Module, ModuleId, ModuleLibrary};

/// Why a session mutation was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The module id does not exist in the session's library.
    UnknownModule {
        /// The offending id.
        id: ModuleId,
        /// Number of modules in the library.
        modules: usize,
    },
    /// The replacement module has no implementations.
    EmptyModule {
        /// The offending id.
        id: ModuleId,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::UnknownModule { id, modules } => {
                write!(f, "unknown module id {id} (library has {modules} modules)")
            }
            SessionError::EmptyModule { id } => {
                write!(f, "module {id} would have no implementations")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// Counter snapshot of a session: run totals, the cache's lifetime
/// counters, and the split of the most recent run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Optimization runs executed (successful or tripped).
    pub runs: u64,
    /// Module edits applied via [`Session::update_module`].
    pub module_edits: u64,
    /// Policy swaps applied via [`Session::update_policy`].
    pub policy_edits: u64,
    /// Lifetime cache counters (hits/misses/evictions/insertions).
    pub cache: CacheStats,
    /// Entries currently resident in the cache.
    pub cache_entries: usize,
    /// Bytes currently charged against the cache budget.
    pub cache_bytes: usize,
    /// The cache's byte budget.
    pub cache_budget_bytes: usize,
    /// Join blocks served from cache in the most recent run.
    pub last_run_hits: usize,
    /// Join blocks rebuilt in the most recent run.
    pub last_run_misses: usize,
}

/// A kept-warm optimization session: one instance, one policy
/// configuration, one block cache shared by every run.
pub struct Session {
    tree: FloorplanTree,
    library: ModuleLibrary,
    config: OptimizeConfig,
    cache: SharedBlockCache,
    tracer: Option<Tracer>,
    runs: u64,
    module_edits: u64,
    policy_edits: u64,
    last_run_hits: usize,
    last_run_misses: usize,
}

impl Session {
    /// Opens a session over `tree`/`library` with a block cache of
    /// `cache_bytes`.
    #[must_use]
    pub fn open(
        tree: FloorplanTree,
        library: ModuleLibrary,
        config: OptimizeConfig,
        cache_bytes: usize,
    ) -> Self {
        Session {
            tree,
            library,
            config,
            cache: shared_cache(cache_bytes),
            tracer: None,
            runs: 0,
            module_edits: 0,
            policy_edits: 0,
            last_run_hits: 0,
            last_run_misses: 0,
        }
    }

    /// Opens a session whose block cache is backed by the append-only
    /// segment store in `dir`: entries flushed by previous sessions are
    /// replayed (a torn tail from a crash is truncated to the verified
    /// prefix), and [`Session::flush_cache`] / [`Session::close`] make
    /// new work durable. The store is salted with the *opening* policy
    /// fingerprint, so a session opened under different policies
    /// cold-starts rather than replaying mismatched entries.
    /// ([`Session::update_policy`] after open keeps working — block
    /// addresses themselves are policy-salted — but only entries are
    /// replayed whose store matched at open.)
    ///
    /// # Errors
    ///
    /// [`PersistError`] when `dir` cannot be created, locked, or read.
    pub fn open_persistent(
        tree: FloorplanTree,
        library: ModuleLibrary,
        config: OptimizeConfig,
        cache_bytes: usize,
        dir: &Path,
    ) -> Result<Self, PersistError> {
        let salt = fp_optimizer::policy_fingerprint(&config);
        let cache = SharedBlockCache::open_persistent(dir, cache_bytes, salt)?;
        Ok(Session {
            tree,
            library,
            config,
            cache,
            tracer: None,
            runs: 0,
            module_edits: 0,
            policy_edits: 0,
            last_run_hits: 0,
            last_run_misses: 0,
        })
    }

    /// What startup replay recovered (all zeros for in-memory sessions).
    #[must_use]
    pub fn recovery(&self) -> RecoveryReport {
        self.cache.recovery()
    }

    /// `true` when the session's cache is backed by a segment store.
    #[must_use]
    pub fn is_persistent(&self) -> bool {
        self.cache.is_persistent()
    }

    /// Drains the write-behind flusher and syncs the segment store, so
    /// every block committed so far survives a crash. A no-op for
    /// in-memory sessions.
    ///
    /// # Errors
    ///
    /// [`PersistError`] when the store's writer has wedged (disk full,
    /// I/O error); the in-memory cache keeps serving regardless.
    pub fn flush_cache(&self) -> Result<(), PersistError> {
        if self.cache.is_persistent() {
            self.cache.flush()
        } else {
            Ok(())
        }
    }

    /// Flushes and consumes the session — the explicit, checkable form
    /// of drop for persistent sessions.
    ///
    /// # Errors
    ///
    /// [`PersistError`] as for [`Session::flush_cache`].
    pub fn close(self) -> Result<(), PersistError> {
        self.flush_cache()
    }

    /// The session's floorplan topology.
    #[must_use]
    pub fn tree(&self) -> &FloorplanTree {
        &self.tree
    }

    /// The session's module library (edit via [`Session::update_module`]).
    #[must_use]
    pub fn library(&self) -> &ModuleLibrary {
        &self.library
    }

    /// The policy configuration in force.
    #[must_use]
    pub fn config(&self) -> &OptimizeConfig {
        &self.config
    }

    /// The session's block cache (shareable with a server).
    #[must_use]
    pub fn cache(&self) -> &SharedBlockCache {
        &self.cache
    }

    /// Attaches a [`Tracer`]: every subsequent [`Session::optimize`]
    /// emits its structured event stream (joins, selections, cache
    /// traffic, phase spans) there. The tracer is shared — keep a clone
    /// and drain it between runs. Pass-through tracing never changes
    /// results.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Detaches the tracer installed by [`Session::set_tracer`], if any.
    pub fn clear_tracer(&mut self) -> Option<Tracer> {
        self.tracer.take()
    }

    /// Optimizes the current instance under the current policies,
    /// reusing every cleanly committed block from previous runs.
    ///
    /// # Errors
    ///
    /// Any [`OptError`] the engine reports (bad instance, budget trip,
    /// deadline, infeasible outline, …). A tripped run leaves the cache
    /// intact: blocks committed before the trip remain reusable.
    pub fn optimize(&mut self) -> Result<RunOutcome, OptError> {
        self.runs += 1;
        let mut optimizer = Optimizer::new(&self.tree, &self.library)
            .config(&self.config)
            .cache(&self.cache);
        if let Some(tracer) = &self.tracer {
            optimizer = optimizer.tracer(tracer);
        }
        let report = optimizer.run();
        if let Ok(report) = &report {
            self.last_run_hits = report.outcome.stats.cache_hits;
            self.last_run_misses = report.outcome.stats.cache_misses;
        }
        report
    }

    /// Replaces module `id`'s implementation list, returning the module
    /// it displaced. Only the edited leaf and its root-path ancestors
    /// change content address; the next [`Session::optimize`] rebuilds
    /// exactly those blocks.
    ///
    /// # Errors
    ///
    /// [`SessionError::UnknownModule`] when `id` is out of range,
    /// [`SessionError::EmptyModule`] when `module` has no candidates.
    pub fn update_module(&mut self, id: ModuleId, module: Module) -> Result<Module, SessionError> {
        if module.implementations().is_empty() {
            return Err(SessionError::EmptyModule { id });
        }
        match self.library.set(id, module) {
            Ok(old) => {
                self.module_edits += 1;
                Ok(old)
            }
            Err(_) => Err(SessionError::UnknownModule {
                id,
                modules: self.library.len(),
            }),
        }
    }

    /// Swaps the policy configuration. Every block address is salted
    /// with the policy fingerprint, so entries built under the old
    /// policies simply stop matching (and age out via LRU); switching
    /// back to a previous configuration re-hits its surviving entries.
    pub fn update_policy(&mut self, config: OptimizeConfig) {
        self.policy_edits += 1;
        self.config = config;
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> SessionStats {
        let (cache_entries, cache_bytes, cache_budget_bytes) = (
            self.cache.len(),
            self.cache.bytes(),
            self.cache.budget_bytes(),
        );
        SessionStats {
            runs: self.runs,
            module_edits: self.module_edits,
            policy_edits: self.policy_edits,
            cache: shared_cache_stats(&self.cache),
            cache_entries,
            cache_bytes,
            cache_budget_bytes,
            last_run_hits: self.last_run_hits,
            last_run_misses: self.last_run_misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_geom::Rect;
    use fp_tree::generators;

    fn open_fp1(n: usize) -> Session {
        let bench = generators::fp1();
        let library = generators::module_library(&bench.tree, n, 1);
        Session::open(bench.tree, library, OptimizeConfig::default(), 16 << 20)
    }

    #[test]
    fn repeat_run_is_all_hits() {
        let mut session = open_fp1(4);
        let cold = session.optimize().expect("cold run");
        assert_eq!(cold.outcome.stats.cache_hits, 0);
        let warm = session.optimize().expect("warm run");
        assert_eq!(warm.outcome.stats.cache_misses, 0);
        assert!(warm.outcome.stats.cache_hits > 0);
        assert_eq!(cold.outcome.area, warm.outcome.area);
        let stats = session.stats();
        assert_eq!(stats.runs, 2);
        assert_eq!(stats.last_run_misses, 0);
        assert!(stats.cache_entries > 0);
        assert!(stats.cache_bytes > 0);
    }

    #[test]
    fn update_module_rejects_bad_edits() {
        let mut session = open_fp1(2);
        let err = session
            .update_module(10_000, Module::new("m", vec![Rect::new(1, 2)]))
            .expect_err("out of range");
        assert!(matches!(err, SessionError::UnknownModule { .. }));
        let err = session
            .update_module(0, Module::new("m", vec![]))
            .expect_err("empty");
        assert!(matches!(err, SessionError::EmptyModule { id: 0 }));
        assert_eq!(session.stats().module_edits, 0);
    }

    #[test]
    fn persistent_session_warm_restarts() {
        let dir = std::env::temp_dir().join(format!("fp-session-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let open = || {
            let bench = generators::fp1();
            let library = generators::module_library(&bench.tree, 4, 1);
            Session::open_persistent(
                bench.tree,
                library,
                OptimizeConfig::default(),
                16 << 20,
                &dir,
            )
            .expect("open persistent session")
        };

        let mut first = open();
        assert!(first.is_persistent());
        assert_eq!(first.recovery().recovered_entries, 0);
        let cold = first.optimize().expect("cold run");
        assert!(cold.outcome.stats.cache_misses > 0);
        first.close().expect("clean close");

        // A brand-new session over the same store starts warm: the
        // repeat run rebuilds nothing and agrees exactly.
        let mut second = open();
        assert!(second.recovery().recovered_entries > 0);
        let warm = second.optimize().expect("warm run");
        assert_eq!(warm.outcome.stats.cache_misses, 0);
        assert_eq!(warm.outcome.area, cold.outcome.area);
        assert_eq!(warm.outcome.assignment, cold.outcome.assignment);

        // A different policy at open cold-starts instead of replaying.
        let bench = generators::fp1();
        let library = generators::module_library(&bench.tree, 4, 1);
        let other = Session::open_persistent(
            bench.tree,
            library,
            OptimizeConfig::default().with_r_selection(64),
            16 << 20,
            &dir,
        )
        .expect("open under other policy");
        assert_eq!(other.recovery().recovered_entries, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn update_policy_re_salts_the_address_space() {
        let mut session = open_fp1(3);
        session.optimize().expect("cold");
        session.update_policy(OptimizeConfig::default().with_r_selection(64));
        let swapped = session.optimize().expect("after policy swap");
        // New salt: nothing from the old policy's address space matches.
        assert_eq!(swapped.outcome.stats.cache_hits, 0);
        // Switching back re-hits the original entries.
        session.update_policy(OptimizeConfig::default());
        let back = session.optimize().expect("back to default");
        assert_eq!(back.outcome.stats.cache_misses, 0);
        assert_eq!(session.stats().policy_edits, 2);
    }
}
