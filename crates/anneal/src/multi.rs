//! Multi-start annealing: N independent chains, one shared cache,
//! deterministic best-of-N merge.
//!
//! Each chain is a full [`anneal`](crate::anneal) run with its own
//! derived seed, so the chains explore different trajectories of the
//! same landscape. They share one block cache — subtrees solved by any
//! chain are free for the rest — and, when an [`Executor`] is supplied,
//! run as `JobClass::Anneal` jobs on its pool. Because every chain is
//! deterministic in its seed and the merge is a pure fold over the
//! chain-indexed results, the outcome is byte-identical at any thread
//! count, including fully serial.

use std::sync::Arc;

use fp_optimizer::serve::{AnnealBackend, AnnealJob, AnnealOutcome};
use fp_optimizer::{BlockCache, Executor, JobClass};
use fp_tree::ModuleLibrary;

use crate::sa::{anneal_cached, AnnealConfig, AnnealResult};

/// Configuration of a multi-start search.
#[derive(Debug, Clone)]
pub struct MultiAnnealConfig {
    /// Number of independent chains (`0` is treated as `1`).
    pub chains: usize,
    /// The per-chain configuration. Chain 0 runs it verbatim — so
    /// `chains: 1` reproduces a plain [`anneal`](crate::anneal) run —
    /// and chain `i > 0` runs it with [`chain_seed`]`(base.seed, i)`.
    pub base: AnnealConfig,
}

impl Default for MultiAnnealConfig {
    fn default() -> Self {
        MultiAnnealConfig {
            chains: 1,
            base: AnnealConfig::default(),
        }
    }
}

/// The multi-start outcome: the winning chain's result plus per-chain
/// diagnostics.
#[derive(Debug, Clone)]
pub struct MultiAnnealResult {
    /// The best chain's full result.
    pub best: AnnealResult,
    /// Index of the winning chain (lowest index on ties).
    pub best_chain: usize,
    /// Every chain's best area, in chain order.
    pub chain_areas: Vec<u128>,
    /// Moves accepted across all chains.
    pub total_accepted: usize,
    /// Moves proposed across all chains.
    pub total_proposed: usize,
}

/// The seed chain `i` anneals with, derived from the base seed by a
/// SplitMix64 step so sibling chains get statistically independent
/// streams. Chain 0 keeps the base seed unchanged.
#[must_use]
pub fn chain_seed(base: u64, chain: usize) -> u64 {
    if chain == 0 {
        return base;
    }
    let mut z = base.wrapping_add((chain as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `config.chains` independent annealing chains and merges them
/// best-of-N.
///
/// The merge key is `(best_area, best_hpwl)` with ties broken by the
/// lowest chain index, so the winner does not depend on completion
/// order. With `exec` the chains run concurrently as
/// [`JobClass::Anneal`] jobs (the calling thread helps); without it
/// they run serially in chain order. Either way the result is
/// identical.
///
/// # Panics
///
/// Panics when the library is empty or a chain's inner optimizer run
/// exceeds its configured budget (the same conditions as
/// [`anneal`](crate::anneal)).
#[must_use]
pub fn anneal_multi(
    library: &ModuleLibrary,
    config: &MultiAnnealConfig,
    cache: Option<&(dyn BlockCache + Sync)>,
    exec: Option<&Executor>,
) -> MultiAnnealResult {
    let chains = config.chains.max(1);
    let configs: Vec<AnnealConfig> = (0..chains)
        .map(|chain| AnnealConfig {
            seed: chain_seed(config.base.seed, chain),
            ..config.base.clone()
        })
        .collect();

    let results: Vec<AnnealResult> = match exec {
        Some(exec) if chains > 1 => {
            let jobs: Vec<Box<dyn FnOnce() -> AnnealResult + Send + '_>> = configs
                .iter()
                .map(|cfg| {
                    Box::new(move || anneal_cached(library, cfg, cache))
                        as Box<dyn FnOnce() -> AnnealResult + Send + '_>
                })
                .collect();
            exec.run_batch(JobClass::Anneal, jobs)
        }
        _ => configs
            .iter()
            .map(|cfg| anneal_cached(library, cfg, cache))
            .collect(),
    };

    let chain_areas: Vec<u128> = results.iter().map(|r| r.best_area).collect();
    let total_accepted = results.iter().map(|r| r.accepted).sum();
    let total_proposed = results.iter().map(|r| r.proposed).sum();
    let best_chain = results
        .iter()
        .enumerate()
        .min_by_key(|(_, r)| (r.best_area, r.best_hpwl.unwrap_or(0)))
        .map(|(i, _)| i)
        .expect("at least one chain ran");
    let mut results = results;
    let best = results.swap_remove(best_chain);
    MultiAnnealResult {
        best,
        best_chain,
        chain_areas,
        total_accepted,
        total_proposed,
    }
}

/// The ready-made annealing backend for the `fpserved` protocol layer:
/// maps a serve-side [`AnnealJob`] onto [`anneal_multi`] — chains share
/// the server's block cache and run on the server's executor — and
/// folds the result into the wire-facing [`AnnealOutcome`].
///
/// `fp_optimizer::serve` cannot call the annealer directly (fp-anneal
/// sits above fp-optimizer in the crate graph), so servers inject this
/// via `ServeState::with_anneal_backend`.
#[must_use]
pub fn serve_backend() -> Arc<AnnealBackend> {
    Arc::new(|job: &AnnealJob| {
        let config = MultiAnnealConfig {
            chains: job.chains,
            base: AnnealConfig {
                moves: job.moves,
                seed: job.seed,
                optimizer: job.optimizer.clone(),
                ..AnnealConfig::default()
            },
        };
        let result = anneal_multi(job.library, &config, Some(job.cache), job.executor);
        AnnealOutcome {
            best_area: result.best.best_area,
            initial_area: result.best.initial_area,
            best_chain: result.best_chain,
            chain_areas: result.chain_areas,
            accepted: result.total_accepted as u64,
            proposed: result.total_proposed as u64,
            expression: result.best.expression.to_string(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    use fp_optimizer::shared_cache;

    use crate::anneal;

    fn small_config(moves: usize, seed: u64) -> MultiAnnealConfig {
        MultiAnnealConfig {
            chains: 3,
            base: AnnealConfig {
                moves,
                seed,
                ..Default::default()
            },
        }
    }

    #[test]
    fn one_chain_reproduces_plain_anneal() {
        let library = fp_tree::spread_library(8, 3, 5);
        let cfg = MultiAnnealConfig {
            chains: 1,
            base: AnnealConfig {
                moves: 200,
                seed: 9,
                ..Default::default()
            },
        };
        let multi = anneal_multi(&library, &cfg, None, None);
        let single = anneal(&library, &cfg.base);
        assert_eq!(multi.best_chain, 0);
        assert_eq!(multi.best.best_area, single.best_area);
        assert_eq!(multi.best.expression, single.expression);
        assert_eq!(multi.best.accepted, single.accepted);
    }

    #[test]
    fn chains_use_distinct_seeds_and_merge_deterministically() {
        let library = fp_tree::spread_library(9, 3, 7);
        let cfg = small_config(150, 41);
        let a = anneal_multi(&library, &cfg, None, None);
        let b = anneal_multi(&library, &cfg, None, None);
        assert_eq!(a.best_chain, b.best_chain);
        assert_eq!(a.chain_areas, b.chain_areas);
        assert_eq!(a.best.expression, b.best.expression);
        assert_eq!(a.chain_areas.len(), 3);
        assert_ne!(chain_seed(41, 1), 41);
        assert_ne!(chain_seed(41, 1), chain_seed(41, 2));
        // The winner is at least as good as every chain.
        assert!(a.chain_areas.iter().all(|&area| a.best.best_area <= area));
        assert_eq!(a.chain_areas[a.best_chain], a.best.best_area);
    }

    #[test]
    fn shared_cache_does_not_change_the_result() {
        let library = fp_tree::spread_library(8, 3, 3);
        let cfg = small_config(120, 13);
        let cold = anneal_multi(&library, &cfg, None, None);
        let cache = shared_cache(1 << 20);
        let cached = anneal_multi(&library, &cfg, Some(&cache), None);
        assert_eq!(cold.best.best_area, cached.best.best_area);
        assert_eq!(cold.best.expression, cached.best.expression);
        assert_eq!(cold.chain_areas, cached.chain_areas);
        assert_eq!(cold.total_accepted, cached.total_accepted);
    }

    #[test]
    fn executor_parallel_chains_match_serial_at_any_thread_count() {
        let library = fp_tree::spread_library(8, 3, 11);
        let cfg = small_config(100, 5);
        let cache = shared_cache(1 << 20);
        let serial = anneal_multi(&library, &cfg, Some(&cache), None);
        for threads in [1, 2, 4] {
            let exec = Executor::new(threads);
            let parallel = anneal_multi(&library, &cfg, Some(&cache), Some(&exec));
            assert_eq!(parallel.best_chain, serial.best_chain, "threads={threads}");
            assert_eq!(parallel.chain_areas, serial.chain_areas);
            assert_eq!(parallel.best.expression, serial.best.expression);
            assert_eq!(parallel.total_proposed, serial.total_proposed);
            exec.shutdown();
        }
    }

    #[test]
    fn ties_break_toward_the_lowest_chain() {
        // A single-module library: every chain proposes nothing and
        // reports the same area, so the merge must pick chain 0.
        let library = fp_tree::spread_library(1, 3, 2);
        let multi = anneal_multi(&library, &small_config(50, 1), None, None);
        assert_eq!(multi.best_chain, 0);
        assert_eq!(multi.total_proposed, 0);
    }
}
