//! The simulated-annealing loop.

use fp_optimizer::{BlockCache, HpwlEvaluator, Netlist, OptimizeConfig, Optimizer};
use fp_prng::StdRng;
use fp_tree::layout::{realize, Assignment};
use fp_tree::{FloorplanTree, ModuleLibrary};

use crate::PolishExpression;

/// The annealer's starting topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitTopology {
    /// All modules in one row (`PolishExpression::row`) — the
    /// reproducible classic default.
    #[default]
    Row,
    /// Orderly-spanning-tree grid seed ([`fp_tree::ost`]): modules ranked
    /// by area and dealt into `⌈√(n−1)⌉` columns. Deterministic in the
    /// library; usually starts far closer to square than the row.
    Ost,
    /// The row shuffled at infinite temperature — an unbiased (usually
    /// bad) start for search experiments.
    Random,
}

impl InitTopology {
    /// Parses the CLI spelling (`row`, `ost`, `random`).
    ///
    /// # Errors
    ///
    /// Returns the offending word back for anything else.
    pub fn parse(word: &str) -> Result<Self, String> {
        match word {
            "row" => Ok(InitTopology::Row),
            "ost" => Ok(InitTopology::Ost),
            "random" => Ok(InitTopology::Random),
            other => Err(format!("unknown init topology `{other}` (row|ost|random)")),
        }
    }
}

/// Annealer configuration.
#[derive(Debug, Clone)]
pub struct AnnealConfig {
    /// Total proposed moves.
    pub moves: usize,
    /// RNG seed (runs are fully deterministic in it).
    pub seed: u64,
    /// Target probability of accepting an average uphill move at the
    /// start (the Wong–Liu probe: `T₀ = avg_uphill / ln(1/p)`).
    pub initial_accept_prob: f64,
    /// The starting topology (row by default).
    pub init: InitTopology,
    /// Geometric cooling applied every [`AnnealConfig::moves_per_step`].
    pub cooling: f64,
    /// Moves between cooling steps.
    pub moves_per_step: usize,
    /// Configuration of the inner area optimizer — this is where the
    /// paper's selection policies cap each evaluation's memory/time.
    pub optimizer: OptimizeConfig,
    /// Optional netlist for wirelength-aware search. `None` anneals on
    /// area alone (the classic loop, unchanged move for move).
    pub netlist: Option<Netlist>,
    /// Weight on area in the composite acceptance cost when a netlist
    /// is attached: `alpha·area/a₀ + (1−alpha)·hpwl/h₀`, both terms
    /// normalized by the initial solution. `alpha ≥ 1` (the default)
    /// anneals on area exactly as without a netlist — same moves, same
    /// acceptances — and only reports the final wirelength.
    pub alpha: f64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            moves: 2_000,
            seed: 1,
            initial_accept_prob: 0.8,
            init: InitTopology::Row,
            cooling: 0.9,
            moves_per_step: 50,
            optimizer: OptimizeConfig::default(),
            netlist: None,
            alpha: 1.0,
        }
    }
}

/// The annealer's outcome.
#[derive(Debug, Clone)]
pub struct AnnealResult {
    /// The best topology found.
    pub tree: FloorplanTree,
    /// The best expression (the tree in Polish form).
    pub expression: PolishExpression,
    /// The best solution's area. Under a composite cost
    /// ([`AnnealConfig::netlist`] with `alpha < 1`) this is the area of
    /// the best *composite* solution, not necessarily the smallest area
    /// seen.
    pub best_area: u128,
    /// The per-module implementation choices realizing it.
    pub assignment: Assignment,
    /// Area of the initial topology ([`AnnealConfig::init`]), for
    /// reference.
    pub initial_area: u128,
    /// The best solution's total HPWL, when a netlist was attached.
    pub best_hpwl: Option<u128>,
    /// Moves accepted.
    pub accepted: usize,
    /// Moves proposed.
    pub proposed: usize,
}

/// Searches for a low-area slicing topology for `library` by simulated
/// annealing, evaluating every candidate with the optimal area engine.
///
/// With a netlist attached and `alpha < 1`, every candidate's layout is
/// additionally scored by HPWL through one persistent *incremental*
/// evaluator (consecutive moves re-measure only the nets they touch)
/// and acceptance runs on the normalized composite cost.
///
/// Deterministic in `config.seed`.
///
/// # Panics
///
/// Panics if the library is empty, a module has no implementations, or
/// the attached netlist does not bind against `library`.
#[must_use]
pub fn anneal(library: &ModuleLibrary, config: &AnnealConfig) -> AnnealResult {
    anneal_cached(library, config, None)
}

/// [`anneal`] with an optional shared block cache attached to every
/// inner-loop evaluation.
///
/// The cache is a pure memo: hits return the same irreducible lists a
/// cold run would compute, so the walk — and the result — is
/// byte-identical with or without it. Sharing one cache across the
/// chains of a multi-start search (or across anneal jobs on a server)
/// lets later chains reuse the subtrees earlier chains already solved.
///
/// Deterministic in `config.seed`; the cache affects speed only.
#[must_use]
pub fn anneal_cached(
    library: &ModuleLibrary,
    config: &AnnealConfig,
    cache: Option<&(dyn BlockCache + Sync)>,
) -> AnnealResult {
    assert!(
        !library.is_empty(),
        "topology search needs at least one module"
    );
    let n = library.len();
    let mut rng = StdRng::seed_from_u64(config.seed);

    let bound = config
        .netlist
        .as_ref()
        .map(|netlist| netlist.bind(library).expect("netlist binds the library"));
    // Composite acceptance only below alpha = 1: at and above it the
    // walk is the classic area anneal, move for move.
    let wire = bound.is_some() && config.alpha < 1.0;
    let mut evaluator = bound.as_ref().map(HpwlEvaluator::new);

    let mut evaluate = |expr: &PolishExpression,
                        need_hpwl: bool|
     -> (u128, u128, FloorplanTree, Assignment) {
        let tree = expr.to_tree();
        let mut optimizer = Optimizer::new(&tree, library).config(&config.optimizer);
        if let Some(cache) = cache {
            optimizer = optimizer.cache(cache);
        }
        let out = optimizer
            .run_best()
            .expect("slicing candidates fit the configured budget");
        let hpwl = match (&mut evaluator, need_hpwl) {
            (Some(evaluator), true) => {
                let layout = realize(&tree, library, &out.assignment).expect("assignments realize");
                evaluator
                    .update(&tree, &layout, &out.assignment)
                    .expect("bound netlists evaluate")
            }
            _ => 0,
        };
        (out.area, hpwl, tree, out.assignment)
    };

    let mut current = match config.init {
        InitTopology::Row => PolishExpression::row(n),
        InitTopology::Ost => PolishExpression::from_slicing_tree(&fp_tree::ost::ost_tree(library))
            .expect("OST topologies are slicing, module-unique, and normalized"),
        InitTopology::Random => PolishExpression::random(n, &mut rng),
    };
    let (initial_area, initial_hpwl, tree, assignment) = evaluate(&current, wire);
    // Composite cost, normalized by the initial solution so alpha is
    // scale-free; plain area cost otherwise (bit-compatible with the
    // netlist-free loop).
    let area_scale = initial_area.max(1) as f64;
    let hpwl_scale = initial_hpwl.max(1) as f64;
    let alpha = config.alpha.clamp(0.0, 1.0);
    let cost = |area: u128, hpwl: u128| -> f64 {
        if wire {
            alpha * (area as f64 / area_scale) + (1.0 - alpha) * (hpwl as f64 / hpwl_scale)
        } else {
            area as f64
        }
    };
    let mut current_cost = cost(initial_area, initial_hpwl);
    let mut best_cost = current_cost;
    let mut best = AnnealResult {
        tree,
        expression: current.clone(),
        best_area: initial_area,
        assignment,
        initial_area,
        best_hpwl: bound.is_some().then_some(initial_hpwl),
        accepted: 0,
        proposed: 0,
    };

    // Wong–Liu probe: walk a few random moves to estimate the average
    // uphill delta, then set T0 so such a move is accepted with the
    // configured probability.
    let mut probe = current.clone();
    let mut probe_cost = current_cost;
    let mut uphill_sum = 0.0f64;
    let mut uphill_count = 0u32;
    for _ in 0..30 {
        if probe.random_move(&mut rng).is_none() {
            break;
        }
        let (area, hpwl, _, _) = evaluate(&probe, wire);
        let delta = cost(area, hpwl) - probe_cost;
        if delta > 0.0 {
            uphill_sum += delta;
            uphill_count += 1;
        }
        probe_cost = cost(area, hpwl);
    }
    let p0 = config.initial_accept_prob.clamp(0.01, 0.99);
    let mut temp = if uphill_count > 0 {
        (uphill_sum / f64::from(uphill_count)) / (1.0 / p0).ln()
    } else {
        current_cost * 0.05
    };
    for step in 0..config.moves {
        if step > 0 && step % config.moves_per_step.max(1) == 0 {
            temp *= config.cooling;
        }
        let mut candidate = current.clone();
        if candidate.random_move(&mut rng).is_none() {
            break; // single module: nothing to search
        }
        best.proposed += 1;
        let (area, hpwl, tree, assignment) = evaluate(&candidate, wire);
        let delta = cost(area, hpwl) - current_cost;
        let accept =
            delta <= 0.0 || (temp > 0.0 && rng.gen_range(0.0..1.0f64) < (-delta / temp).exp());
        if accept {
            best.accepted += 1;
            current = candidate;
            current_cost = cost(area, hpwl);
            if current_cost < best_cost {
                best_cost = current_cost;
                best.best_area = area;
                best.expression = current.clone();
                best.tree = tree;
                best.assignment = assignment;
                if wire {
                    best.best_hpwl = Some(hpwl);
                }
            }
        }
    }
    // Area-only walk with a netlist attached: report the winner's
    // wirelength without having paid for it per move.
    if bound.is_some() && !wire {
        let (_, hpwl, _, _) = evaluate(&best.expression, true);
        best.best_hpwl = Some(hpwl);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    use fp_tree::layout::realize;

    #[test]
    fn annealing_improves_over_a_random_start() {
        let library = fp_tree::spread_library(10, 4, 3);
        let result = anneal(
            &library,
            &AnnealConfig {
                moves: 800,
                seed: 11,
                init: InitTopology::Random,
                ..Default::default()
            },
        );
        assert!(
            result.best_area < result.initial_area,
            "a random topology of 10 modules leaves room to improve: {} vs {}",
            result.best_area,
            result.initial_area
        );
        // The best solution is physically realizable at the claimed area.
        let layout = realize(&result.tree, &library, &result.assignment).expect("valid");
        assert_eq!(layout.area(), result.best_area);
        assert_eq!(layout.validate(), None);
        assert!(result.expression.is_valid());
        assert!(result.accepted > 0 && result.accepted <= result.proposed);
    }

    #[test]
    fn ost_start_is_deterministic_and_valid() {
        let library = fp_tree::spread_library(10, 4, 3);
        let cfg = AnnealConfig {
            moves: 120,
            seed: 5,
            init: InitTopology::Ost,
            ..Default::default()
        };
        let a = anneal(&library, &cfg);
        let b = anneal(&library, &cfg);
        assert_eq!(a.expression, b.expression);
        assert_eq!(a.best_area, b.best_area);
        assert!(a.best_area <= a.initial_area);
        let layout = realize(&a.tree, &library, &a.assignment).expect("valid");
        assert_eq!(layout.area(), a.best_area);
        assert_eq!(layout.validate(), None);
        // The grid seed is a different starting point than the row.
        let row = anneal(
            &library,
            &AnnealConfig {
                moves: 0,
                seed: 5,
                ..Default::default()
            },
        );
        let ost_only = anneal(&library, &AnnealConfig { moves: 0, ..cfg });
        assert_ne!(ost_only.expression, row.expression);
    }

    #[test]
    fn init_topology_parses_cli_spellings() {
        assert_eq!(InitTopology::parse("row"), Ok(InitTopology::Row));
        assert_eq!(InitTopology::parse("ost"), Ok(InitTopology::Ost));
        assert_eq!(InitTopology::parse("random"), Ok(InitTopology::Random));
        assert!(InitTopology::parse("grid").is_err());
    }

    #[test]
    fn deterministic_in_seed() {
        let library = fp_tree::spread_library(8, 3, 5);
        let cfg = AnnealConfig {
            moves: 300,
            seed: 77,
            ..Default::default()
        };
        let a = anneal(&library, &cfg);
        let b = anneal(&library, &cfg);
        assert_eq!(a.best_area, b.best_area);
        assert_eq!(a.expression, b.expression);
        assert_eq!(a.accepted, b.accepted);
        let c = anneal(&library, &AnnealConfig { seed: 78, ..cfg });
        // A different seed explores differently (may or may not tie on
        // area, but the walk differs).
        assert!(c.proposed > 0);
    }

    #[test]
    fn wirelength_aware_walk_is_deterministic_and_reports_hpwl() {
        let library = fp_tree::spread_library(8, 3, 5);
        let netlist = fp_optimizer::random_netlist(&library, 20, 9);
        let cfg = AnnealConfig {
            moves: 200,
            seed: 21,
            netlist: Some(netlist.clone()),
            alpha: 0.5,
            ..Default::default()
        };
        let a = anneal(&library, &cfg);
        let b = anneal(&library, &cfg);
        assert_eq!(a.best_area, b.best_area);
        assert_eq!(a.best_hpwl, b.best_hpwl);
        assert_eq!(a.expression, b.expression);
        let hpwl = a.best_hpwl.expect("netlist attached");
        assert!(hpwl > 0);
        // The reported HPWL is the best layout's actual wirelength.
        let bound = netlist.bind(&library).expect("binds");
        let layout = realize(&a.tree, &library, &a.assignment).expect("valid");
        let mut fresh = fp_optimizer::HpwlEvaluator::new(&bound);
        let full = fresh
            .evaluate_full(&a.tree, &layout, &a.assignment)
            .expect("evaluates");
        assert_eq!(full, hpwl);
    }

    #[test]
    fn alpha_one_with_netlist_matches_the_area_walk() {
        let library = fp_tree::spread_library(8, 3, 5);
        let netlist = fp_optimizer::random_netlist(&library, 15, 4);
        let area_only = anneal(
            &library,
            &AnnealConfig {
                moves: 200,
                seed: 33,
                ..Default::default()
            },
        );
        let with_netlist = anneal(
            &library,
            &AnnealConfig {
                moves: 200,
                seed: 33,
                netlist: Some(netlist),
                alpha: 1.0,
                ..Default::default()
            },
        );
        // Same walk, same winner — the netlist only adds reporting.
        assert_eq!(area_only.best_area, with_netlist.best_area);
        assert_eq!(area_only.expression, with_netlist.expression);
        assert_eq!(area_only.accepted, with_netlist.accepted);
        assert!(area_only.best_hpwl.is_none());
        assert!(with_netlist.best_hpwl.is_some());
    }

    #[test]
    fn single_module_degenerates_gracefully() {
        let library = fp_tree::spread_library(1, 3, 2);
        let result = anneal(
            &library,
            &AnnealConfig {
                moves: 50,
                seed: 1,
                ..Default::default()
            },
        );
        assert_eq!(result.proposed, 0);
        assert_eq!(result.best_area, result.initial_area);
    }

    #[test]
    fn selection_capped_inner_loop_matches_quality_roughly() {
        // With R_Selection capping every evaluation, the search still
        // lands within a few percent of the uncapped search.
        let library = fp_tree::spread_library(9, 8, 9);
        let free = anneal(
            &library,
            &AnnealConfig {
                moves: 400,
                seed: 3,
                ..Default::default()
            },
        );
        let capped_cfg = AnnealConfig {
            moves: 400,
            seed: 3,
            optimizer: OptimizeConfig::default().with_r_selection(6),
            ..Default::default()
        };
        let capped = anneal(&library, &capped_cfg);
        let ratio = capped.best_area as f64 / free.best_area as f64;
        assert!(ratio < 1.15, "capped search degraded too much: {ratio}");
    }
}
