//! The simulated-annealing loop.

use fp_optimizer::{OptimizeConfig, Optimizer};
use fp_prng::StdRng;
use fp_tree::layout::Assignment;
use fp_tree::{FloorplanTree, ModuleLibrary};

use crate::PolishExpression;

/// Annealer configuration.
#[derive(Debug, Clone)]
pub struct AnnealConfig {
    /// Total proposed moves.
    pub moves: usize,
    /// RNG seed (runs are fully deterministic in it).
    pub seed: u64,
    /// Target probability of accepting an average uphill move at the
    /// start (the Wong–Liu probe: `T₀ = avg_uphill / ln(1/p)`).
    pub initial_accept_prob: f64,
    /// Start from a random topology instead of the all-in-a-row heuristic.
    pub random_start: bool,
    /// Geometric cooling applied every [`AnnealConfig::moves_per_step`].
    pub cooling: f64,
    /// Moves between cooling steps.
    pub moves_per_step: usize,
    /// Configuration of the inner area optimizer — this is where the
    /// paper's selection policies cap each evaluation's memory/time.
    pub optimizer: OptimizeConfig,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            moves: 2_000,
            seed: 1,
            initial_accept_prob: 0.8,
            random_start: false,
            cooling: 0.9,
            moves_per_step: 50,
            optimizer: OptimizeConfig::default(),
        }
    }
}

/// The annealer's outcome.
#[derive(Debug, Clone)]
pub struct AnnealResult {
    /// The best topology found.
    pub tree: FloorplanTree,
    /// The best expression (the tree in Polish form).
    pub expression: PolishExpression,
    /// The best area.
    pub best_area: u128,
    /// The per-module implementation choices realizing it.
    pub assignment: Assignment,
    /// Area of the initial (all-in-a-row) topology, for reference.
    pub initial_area: u128,
    /// Moves accepted.
    pub accepted: usize,
    /// Moves proposed.
    pub proposed: usize,
}

/// Searches for a low-area slicing topology for `library` by simulated
/// annealing, evaluating every candidate with the optimal area engine.
///
/// Deterministic in `config.seed`.
///
/// # Panics
///
/// Panics if the library is empty or a module has no implementations
/// (topology search needs a well-formed library).
#[must_use]
pub fn anneal(library: &ModuleLibrary, config: &AnnealConfig) -> AnnealResult {
    assert!(
        !library.is_empty(),
        "topology search needs at least one module"
    );
    let n = library.len();
    let mut rng = StdRng::seed_from_u64(config.seed);

    let evaluate = |expr: &PolishExpression| -> (u128, FloorplanTree, Assignment) {
        let tree = expr.to_tree();
        let out = Optimizer::new(&tree, library)
            .config(&config.optimizer)
            .run_best()
            .expect("slicing candidates fit the configured budget");
        (out.area, tree, out.assignment)
    };

    let mut current = if config.random_start {
        PolishExpression::random(n, &mut rng)
    } else {
        PolishExpression::row(n)
    };
    let (mut current_area, tree, assignment) = evaluate(&current);
    let initial_area = current_area;
    let mut best = AnnealResult {
        tree,
        expression: current.clone(),
        best_area: current_area,
        assignment,
        initial_area,
        accepted: 0,
        proposed: 0,
    };

    // Wong–Liu probe: walk a few random moves to estimate the average
    // uphill delta, then set T0 so such a move is accepted with the
    // configured probability.
    let mut probe = current.clone();
    let mut probe_area = current_area as f64;
    let mut uphill_sum = 0.0f64;
    let mut uphill_count = 0u32;
    for _ in 0..30 {
        if probe.random_move(&mut rng).is_none() {
            break;
        }
        let (area, _, _) = evaluate(&probe);
        let delta = area as f64 - probe_area;
        if delta > 0.0 {
            uphill_sum += delta;
            uphill_count += 1;
        }
        probe_area = area as f64;
    }
    let p0 = config.initial_accept_prob.clamp(0.01, 0.99);
    let mut temp = if uphill_count > 0 {
        (uphill_sum / f64::from(uphill_count)) / (1.0 / p0).ln()
    } else {
        initial_area as f64 * 0.05
    };
    for step in 0..config.moves {
        if step > 0 && step % config.moves_per_step.max(1) == 0 {
            temp *= config.cooling;
        }
        let mut candidate = current.clone();
        if candidate.random_move(&mut rng).is_none() {
            break; // single module: nothing to search
        }
        best.proposed += 1;
        let (area, tree, assignment) = evaluate(&candidate);
        let delta = area as f64 - current_area as f64;
        let accept =
            delta <= 0.0 || (temp > 0.0 && rng.gen_range(0.0..1.0f64) < (-delta / temp).exp());
        if accept {
            best.accepted += 1;
            current = candidate;
            current_area = area;
            if area < best.best_area {
                best.best_area = area;
                best.expression = current.clone();
                best.tree = tree;
                best.assignment = assignment;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    use fp_tree::layout::realize;

    #[test]
    fn annealing_improves_over_a_random_start() {
        let library = fp_tree::spread_library(10, 4, 3);
        let result = anneal(
            &library,
            &AnnealConfig {
                moves: 800,
                seed: 11,
                random_start: true,
                ..Default::default()
            },
        );
        assert!(
            result.best_area < result.initial_area,
            "a random topology of 10 modules leaves room to improve: {} vs {}",
            result.best_area,
            result.initial_area
        );
        // The best solution is physically realizable at the claimed area.
        let layout = realize(&result.tree, &library, &result.assignment).expect("valid");
        assert_eq!(layout.area(), result.best_area);
        assert_eq!(layout.validate(), None);
        assert!(result.expression.is_valid());
        assert!(result.accepted > 0 && result.accepted <= result.proposed);
    }

    #[test]
    fn deterministic_in_seed() {
        let library = fp_tree::spread_library(8, 3, 5);
        let cfg = AnnealConfig {
            moves: 300,
            seed: 77,
            ..Default::default()
        };
        let a = anneal(&library, &cfg);
        let b = anneal(&library, &cfg);
        assert_eq!(a.best_area, b.best_area);
        assert_eq!(a.expression, b.expression);
        assert_eq!(a.accepted, b.accepted);
        let c = anneal(&library, &AnnealConfig { seed: 78, ..cfg });
        // A different seed explores differently (may or may not tie on
        // area, but the walk differs).
        assert!(c.proposed > 0);
    }

    #[test]
    fn single_module_degenerates_gracefully() {
        let library = fp_tree::spread_library(1, 3, 2);
        let result = anneal(
            &library,
            &AnnealConfig {
                moves: 50,
                seed: 1,
                ..Default::default()
            },
        );
        assert_eq!(result.proposed, 0);
        assert_eq!(result.best_area, result.initial_area);
    }

    #[test]
    fn selection_capped_inner_loop_matches_quality_roughly() {
        // With R_Selection capping every evaluation, the search still
        // lands within a few percent of the uncapped search.
        let library = fp_tree::spread_library(9, 8, 9);
        let free = anneal(
            &library,
            &AnnealConfig {
                moves: 400,
                seed: 3,
                ..Default::default()
            },
        );
        let capped_cfg = AnnealConfig {
            moves: 400,
            seed: 3,
            optimizer: OptimizeConfig::default().with_r_selection(6),
            ..Default::default()
        };
        let capped = anneal(&library, &capped_cfg);
        let ratio = capped.best_area as f64 / free.best_area as f64;
        assert!(ratio < 1.15, "capped search degraded too much: {ratio}");
    }
}
