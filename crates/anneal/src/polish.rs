//! Normalized Polish expressions (Wong–Liu, DAC 1986).
//!
//! A slicing floorplan of `n` modules is a string of `2n − 1` symbols in
//! postfix order: `n` operands (module ids) and `n − 1` cut operators
//! (`H`/`V`), such that
//!
//! 1. every prefix contains strictly more operands than operators (the
//!    *balloting* property — the string parses as a binary tree), and
//! 2. no two adjacent operators are equal (*normalized* — each slicing
//!    floorplan has exactly one normalized representative, which keeps
//!    the annealer's move space non-degenerate).
//!
//! The three classic neighbourhood moves:
//!
//! * **M1** — swap two adjacent operands;
//! * **M2** — complement a maximal chain of operators (`H↔V`);
//! * **M3** — swap an adjacent operand/operator pair (guarded so both
//!   invariants survive).

use core::fmt;

use fp_prng::StdRng;
use fp_tree::{CutDir, FloorplanTree, ModuleId};

/// One symbol of a Polish expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Element {
    /// A module operand.
    Operand(ModuleId),
    /// A horizontal-cut operator (children stacked bottom-to-top).
    H,
    /// A vertical-cut operator (children left-to-right).
    V,
}

impl Element {
    fn is_operator(self) -> bool {
        matches!(self, Element::H | Element::V)
    }

    fn complemented(self) -> Element {
        match self {
            Element::H => Element::V,
            Element::V => Element::H,
            op => op,
        }
    }
}

/// A normalized Polish expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolishExpression {
    elements: Vec<Element>,
}

impl PolishExpression {
    /// The initial expression `0 1 V 2 V … (n−1) V`: all modules in one
    /// row (normalization holds because operands separate the operators).
    ///
    /// # Panics
    ///
    /// Panics if `modules == 0`.
    #[must_use]
    pub fn row(modules: usize) -> Self {
        assert!(modules > 0, "need at least one module");
        let mut elements = vec![Element::Operand(0)];
        for m in 1..modules {
            elements.push(Element::Operand(m));
            elements.push(Element::V);
        }
        let expr = PolishExpression { elements };
        debug_assert!(expr.is_valid());
        expr
    }

    /// A pseudo-random valid expression: the row shuffled by `3n` random
    /// moves at infinite temperature. Useful as an unbiased (usually bad)
    /// starting point for search experiments.
    ///
    /// # Panics
    ///
    /// Panics if `modules == 0`.
    #[must_use]
    pub fn random(modules: usize, rng: &mut StdRng) -> Self {
        let mut expr = PolishExpression::row(modules);
        for _ in 0..3 * modules {
            let _ = expr.random_move(rng);
        }
        expr
    }

    /// Converts a slicing [`FloorplanTree`] into its normalized Polish
    /// form, left-folding any-arity slices into binary joins.
    ///
    /// Returns `None` when the tree cannot be expressed: it is empty,
    /// contains a wheel node, reuses a module, or two same-direction
    /// slices nest on a right spine (no normalized representative under
    /// the plain fold). Trees built by [`fp_tree::ost`] always convert.
    #[must_use]
    pub fn from_slicing_tree(tree: &FloorplanTree) -> Option<Self> {
        use fp_tree::NodeKind;
        if tree.is_empty() {
            return None;
        }
        enum Act {
            Visit(usize),
            Emit(Element),
        }
        let mut elements = Vec::new();
        let mut stack = vec![Act::Visit(tree.root())];
        while let Some(act) = stack.pop() {
            match act {
                Act::Emit(op) => elements.push(op),
                Act::Visit(id) => {
                    let node = tree.node(id)?;
                    match &node.kind {
                        NodeKind::Leaf(m) => elements.push(Element::Operand(*m)),
                        NodeKind::Slice(dir) => {
                            let op = match dir {
                                CutDir::Horizontal => Element::H,
                                CutDir::Vertical => Element::V,
                            };
                            // Postfix of the left fold: c1 c2 op c3 op …
                            // (pushed in reverse so the stack pops it in
                            // order).
                            for (i, &c) in node.children.iter().enumerate().rev() {
                                if i >= 1 {
                                    stack.push(Act::Emit(op));
                                }
                                stack.push(Act::Visit(c));
                            }
                        }
                        NodeKind::Wheel(_) => return None,
                    }
                }
            }
        }
        let expr = PolishExpression { elements };
        expr.is_valid().then_some(expr)
    }

    /// The symbols in postfix order.
    #[must_use]
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Number of modules (operands).
    #[must_use]
    pub fn module_count(&self) -> usize {
        self.elements.len().div_ceil(2)
    }

    /// Checks both invariants (balloting + normalization) and that the
    /// operands are a permutation of `0..n`.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        let n = self.module_count();
        if self.elements.len() != 2 * n - 1 {
            return false;
        }
        let mut operands = 0usize;
        let mut operators = 0usize;
        let mut seen = vec![false; n];
        let mut prev_op: Option<Element> = None;
        for &e in &self.elements {
            match e {
                Element::Operand(m) => {
                    if m >= n || seen[m] {
                        return false;
                    }
                    seen[m] = true;
                    operands += 1;
                    prev_op = None;
                }
                op => {
                    operators += 1;
                    if operators >= operands {
                        return false; // balloting violated
                    }
                    if prev_op == Some(op) {
                        return false; // not normalized
                    }
                    prev_op = Some(op);
                }
            }
        }
        operands == n && operators == n - 1
    }

    /// Builds the floorplan tree this expression denotes.
    ///
    /// # Panics
    ///
    /// Panics if the expression is invalid (the move generators never
    /// produce one).
    #[must_use]
    pub fn to_tree(&self) -> FloorplanTree {
        let mut tree = FloorplanTree::new();
        let mut stack: Vec<usize> = Vec::new();
        for &e in &self.elements {
            match e {
                Element::Operand(m) => stack.push(tree.leaf(m)),
                op => {
                    let right = stack.pop().expect("balloting guarantees two operands");
                    let left = stack.pop().expect("balloting guarantees two operands");
                    let dir = match op {
                        Element::H => CutDir::Horizontal,
                        Element::V => CutDir::Vertical,
                        Element::Operand(_) => unreachable!("matched operator"),
                    };
                    stack.push(tree.slice(dir, vec![left, right]));
                }
            }
        }
        assert_eq!(stack.len(), 1, "a valid expression leaves exactly the root");
        tree.set_root(stack[0]);
        tree
    }

    /// Applies one random move (M1/M2/M3), retrying until a valid
    /// neighbour is found. Returns the move kind used (1, 2 or 3).
    ///
    /// The expression always stays valid; for a single-module expression
    /// no move exists and `None` is returned.
    pub fn random_move(&mut self, rng: &mut StdRng) -> Option<u8> {
        if self.module_count() < 2 {
            return None;
        }
        // A valid neighbour always exists (M1 for n >= 2); bound the
        // retries anyway to keep this total.
        for _ in 0..64 {
            let kind = rng.gen_range(1..=3u8);
            let applied = match kind {
                1 => self.try_m1(rng),
                2 => self.try_m2(rng),
                _ => self.try_m3(rng),
            };
            if applied {
                debug_assert!(self.is_valid());
                return Some(kind);
            }
        }
        // Fall back to the always-available M1.
        let applied = self.try_m1(rng);
        debug_assert!(applied && self.is_valid());
        Some(1)
    }

    /// M1: swap two adjacent operands (adjacent in operand order).
    fn try_m1(&mut self, rng: &mut StdRng) -> bool {
        let operand_positions: Vec<usize> = self
            .elements
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.is_operator())
            .map(|(i, _)| i)
            .collect();
        if operand_positions.len() < 2 {
            return false;
        }
        let k = rng.gen_range(0..operand_positions.len() - 1);
        let (i, j) = (operand_positions[k], operand_positions[k + 1]);
        self.elements.swap(i, j);
        true
    }

    /// M2: complement a random maximal operator chain.
    fn try_m2(&mut self, rng: &mut StdRng) -> bool {
        // Maximal runs of consecutive operators.
        let mut chains: Vec<(usize, usize)> = Vec::new();
        let mut start: Option<usize> = None;
        for (i, e) in self.elements.iter().enumerate() {
            if e.is_operator() {
                if start.is_none() {
                    start = Some(i);
                }
            } else if let Some(s) = start.take() {
                chains.push((s, i));
            }
        }
        if let Some(s) = start {
            chains.push((s, self.elements.len()));
        }
        if chains.is_empty() {
            return false;
        }
        let (s, e) = chains[rng.gen_range(0..chains.len())];
        for el in &mut self.elements[s..e] {
            *el = el.complemented();
        }
        // Complementing a maximal chain preserves both invariants.
        true
    }

    /// M3: swap an adjacent operand/operator pair, guarded.
    fn try_m3(&mut self, rng: &mut StdRng) -> bool {
        // Candidate positions i where swapping elements i and i+1 keeps
        // the expression valid.
        let candidates: Vec<usize> = (0..self.elements.len() - 1)
            .filter(|&i| self.elements[i].is_operator() != self.elements[i + 1].is_operator())
            .collect();
        if candidates.is_empty() {
            return false;
        }
        // Try a few random candidates; validity is cheapest to confirm by
        // swap + check + undo (expressions are short).
        for _ in 0..4 {
            let i = candidates[rng.gen_range(0..candidates.len())];
            self.elements.swap(i, i + 1);
            if self.is_valid() {
                return true;
            }
            self.elements.swap(i, i + 1);
        }
        false
    }
}

impl fmt::Display for PolishExpression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.elements.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            match e {
                Element::Operand(m) => write!(f, "{m}")?,
                Element::H => write!(f, "H")?,
                Element::V => write!(f, "V")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn row_expression_is_valid() {
        for n in [1usize, 2, 3, 10] {
            let e = PolishExpression::row(n);
            assert!(e.is_valid(), "n = {n}");
            assert_eq!(e.module_count(), n);
            let tree = e.to_tree();
            assert_eq!(tree.module_count(), n);
            assert!(tree.validate().is_ok());
        }
        assert_eq!(PolishExpression::row(3).to_string(), "0 1 V 2 V");
    }

    #[test]
    fn validity_rejects_malformed() {
        use Element::{Operand, H, V};
        let bad = |elements: Vec<Element>| PolishExpression { elements };
        assert!(!bad(vec![Operand(0), Operand(1), H, V]).is_valid()); // length
        assert!(!bad(vec![H]).is_valid()); // balloting
        assert!(!bad(vec![Operand(0), Operand(1), Operand(2), H, H]).is_valid()); // adjacent ops
        assert!(!bad(vec![Operand(0), Operand(0), V]).is_valid()); // repeated module
        assert!(!bad(vec![Operand(0), Operand(2), V]).is_valid()); // out of range
        assert!(bad(vec![Operand(0), Operand(1), V, Operand(2), H]).is_valid());
    }

    #[test]
    fn tree_structure_matches_expression() {
        use Element::{Operand, H, V};
        // (0 1 V) (2) H : a row of two with module 2 stacked on top.
        let e = PolishExpression {
            elements: vec![Operand(0), Operand(1), V, Operand(2), H],
        };
        let tree = e.to_tree();
        assert_eq!(
            tree.to_string(),
            "hsplit\n  vsplit\n    leaf m0\n    leaf m1\n  leaf m2\n"
        );
    }

    #[test]
    fn from_slicing_tree_accepts_ost_topologies() {
        let library = fp_tree::spread_library(10, 3, 7);
        let tree = fp_tree::ost::ost_tree(&library);
        let e = PolishExpression::from_slicing_tree(&tree).expect("OST trees convert");
        assert!(e.is_valid());
        assert_eq!(e.module_count(), 10);
        // The binary fold denotes the same floorplan: realizing either
        // tree under the same choices yields the same envelope (slice
        // composition is associative).
        use fp_tree::layout::{realize, Assignment};
        let a = realize(&tree, &library, &Assignment::first_fit(10)).expect("realizes");
        let b = realize(&e.to_tree(), &library, &Assignment::first_fit(10)).expect("realizes");
        assert_eq!(a.envelope, b.envelope);
    }

    #[test]
    fn from_slicing_tree_rejects_wheels_and_reuse() {
        let mut t = FloorplanTree::new();
        let ids: Vec<usize> = (0..5).map(|m| t.leaf(m)).collect();
        t.wheel(
            fp_tree::Chirality::Clockwise,
            [ids[0], ids[1], ids[2], ids[3], ids[4]],
        );
        assert_eq!(PolishExpression::from_slicing_tree(&t), None);

        let mut reuse = FloorplanTree::new();
        let a = reuse.leaf(0);
        let b = reuse.leaf(0); // same module twice
        reuse.slice(CutDir::Vertical, vec![a, b]);
        assert_eq!(PolishExpression::from_slicing_tree(&reuse), None);

        assert_eq!(
            PolishExpression::from_slicing_tree(&FloorplanTree::new()),
            None
        );
    }

    proptest! {
        /// Every random-walk state is a valid normalized expression whose
        /// tree has the right module count.
        #[test]
        fn moves_preserve_invariants(n in 2usize..12, seed in 0u64..500, steps in 1usize..60) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut e = PolishExpression::row(n);
            for _ in 0..steps {
                let kind = e.random_move(&mut rng);
                prop_assert!(kind.is_some());
                prop_assert!(e.is_valid());
            }
            let tree = e.to_tree();
            prop_assert_eq!(tree.module_count(), n);
            prop_assert!(tree.validate().is_ok());
        }

        /// All three move kinds occur on long walks (the space is actually
        /// explored).
        #[test]
        fn all_move_kinds_reachable(seed in 0u64..50) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut e = PolishExpression::row(8);
            let mut seen = [false; 3];
            for _ in 0..200 {
                if let Some(kind) = e.random_move(&mut rng) {
                    seen[(kind - 1) as usize] = true;
                }
            }
            prop_assert!(seen.iter().all(|&s| s), "kinds seen: {:?}", seen);
        }
    }
}
