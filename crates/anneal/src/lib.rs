//! Slicing-floorplan **topology search** by simulated annealing.
//!
//! The DAC'92 paper optimizes module implementations *for a fixed
//! topology*, and assumes the topology itself comes from an upstream tool
//! (its §1 cites Otten, Lauther, et al.). This crate supplies that
//! upstream stage in its classic form — Wong–Liu simulated annealing over
//! **normalized Polish expressions** (DAC'86) — with the Wang–Wong area
//! optimizer as the inner cost loop.
//!
//! The combination also showcases the paper's point from a different
//! angle: an annealer calls the area optimizer thousands of times, so the
//! selection algorithms' memory/time caps directly bound the whole
//! search's cost (see the `anneal` Criterion bench).
//!
//! # Example
//!
//! ```
//! use fp_anneal::{anneal, AnnealConfig};
//! use fp_tree::generators;
//!
//! let library = fp_tree::spread_library(8, 3, 42);
//! let result = anneal(&library, &AnnealConfig { moves: 300, seed: 7, ..Default::default() });
//! assert_eq!(result.tree.module_count(), 8);
//! assert!(result.best_area > 0);
//! assert!(result.accepted <= 300);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod multi;
mod polish;
mod rewrite;
mod sa;

pub use multi::{anneal_multi, chain_seed, serve_backend, MultiAnnealConfig, MultiAnnealResult};
pub use polish::{Element, PolishExpression};
pub use rewrite::{wheel_rewrite, RewriteResult};
pub use sa::{anneal, anneal_cached, AnnealConfig, AnnealResult, InitTopology};
