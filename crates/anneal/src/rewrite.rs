//! Wheel rewriting: a post-search refinement that upgrades slicing
//! sub-structures to order-5 wheels.
//!
//! Slicing topologies (which the Polish-expression annealer searches)
//! cannot express the pinwheel — the canonical example being four dominoes
//! around a unit square, which tile a 3×3 die exactly but waste space in
//! every slicing arrangement. This pass hill-climbs over the tree: any
//! internal node whose subtree holds exactly five leaves can be replaced
//! by a wheel over those five modules (both chiralities tried); the best
//! strict improvement is applied and the scan repeats until fixpoint.
//!
//! Each candidate is evaluated with the full Wang–Wong optimizer, so the
//! pass is where the DAC'92 machinery (L-shaped blocks and their
//! selection) enters an otherwise slicing-only flow.

use fp_optimizer::{OptError, OptimizeConfig, Optimizer};
use fp_tree::{Chirality, FloorplanTree, ModuleLibrary, NodeId, NodeKind};

/// The outcome of a [`wheel_rewrite`] pass.
#[derive(Debug, Clone)]
pub struct RewriteResult {
    /// The refined topology.
    pub tree: FloorplanTree,
    /// Its optimal area.
    pub area: u128,
    /// The starting topology's optimal area.
    pub initial_area: u128,
    /// How many wheel replacements were applied.
    pub rewrites: usize,
}

/// Hill-climbs `tree` by replacing 5-leaf subtrees with wheels while that
/// strictly improves the optimal area.
///
/// Candidates that exhaust the optimizer's memory budget are skipped (a
/// wheel can be arbitrarily more expensive to evaluate than the slicing
/// structure it replaces — configure selection policies accordingly).
///
/// # Panics
///
/// Panics if the *initial* tree does not optimize under `config` (the
/// caller's inputs must at least evaluate once).
#[must_use]
pub fn wheel_rewrite(
    tree: &FloorplanTree,
    library: &ModuleLibrary,
    config: &OptimizeConfig,
) -> RewriteResult {
    let initial_area = Optimizer::new(tree, library)
        .config(config)
        .run_best()
        .expect("the initial tree must optimize")
        .area;
    let mut current = tree.clone();
    let mut current_area = initial_area;
    let mut rewrites = 0usize;

    loop {
        let mut best: Option<(u128, FloorplanTree)> = None;
        for node in 0..current.len() {
            let Some(kind) = current.node(node).map(|n| &n.kind) else {
                continue;
            };
            if matches!(kind, NodeKind::Leaf(_) | NodeKind::Wheel(_)) {
                continue;
            }
            let leaves = subtree_leaf_modules(&current, node);
            if leaves.len() != 5 {
                continue;
            }
            for chirality in [Chirality::Clockwise, Chirality::Counterclockwise] {
                let candidate = replace_with_wheel(&current, node, &leaves, chirality);
                match Optimizer::new(&candidate, library)
                    .config(config)
                    .run_best()
                {
                    Ok(out) if out.area < current_area => {
                        if best.as_ref().is_none_or(|(a, _)| out.area < *a) {
                            best = Some((out.area, candidate));
                        }
                    }
                    Ok(_) => {}
                    // Too expensive to evaluate under the budget: skip.
                    Err(OptError::OutOfMemory { .. }) => {}
                    Err(e) => unreachable!("rewritten trees stay structurally valid: {e}"),
                }
            }
        }
        match best {
            Some((area, tree)) => {
                current = tree;
                current_area = area;
                rewrites += 1;
            }
            None => break,
        }
    }

    RewriteResult {
        tree: current,
        area: current_area,
        initial_area,
        rewrites,
    }
}

/// The module ids at the leaves of `node`'s subtree, in DFS order.
fn subtree_leaf_modules(tree: &FloorplanTree, node: NodeId) -> Vec<usize> {
    let mut out = Vec::new();
    let mut stack = vec![node];
    while let Some(id) = stack.pop() {
        let n = tree.node(id).expect("in range");
        match &n.kind {
            NodeKind::Leaf(m) => out.push(*m),
            _ => stack.extend(n.children.iter().rev()),
        }
    }
    out
}

/// A copy of `tree` with the subtree at `target` replaced by a wheel over
/// `modules` (which must have exactly five entries).
fn replace_with_wheel(
    tree: &FloorplanTree,
    target: NodeId,
    modules: &[usize],
    chirality: Chirality,
) -> FloorplanTree {
    assert_eq!(modules.len(), 5, "wheels take exactly five modules");
    let mut out = FloorplanTree::new();
    let root = copy_rec(tree, tree.root(), target, modules, chirality, &mut out);
    out.set_root(root);
    debug_assert!(out.validate().is_ok());
    out
}

fn copy_rec(
    tree: &FloorplanTree,
    id: NodeId,
    target: NodeId,
    modules: &[usize],
    chirality: Chirality,
    out: &mut FloorplanTree,
) -> NodeId {
    if id == target {
        let leaves: Vec<NodeId> = modules.iter().map(|&m| out.leaf(m)).collect();
        return out.wheel(
            chirality,
            [leaves[0], leaves[1], leaves[2], leaves[3], leaves[4]],
        );
    }
    let node = tree.node(id).expect("in range");
    match &node.kind {
        NodeKind::Leaf(m) => out.leaf(*m),
        NodeKind::Slice(dir) => {
            let kids: Vec<NodeId> = node
                .children
                .iter()
                .map(|&c| copy_rec(tree, c, target, modules, chirality, out))
                .collect();
            out.slice(*dir, kids)
        }
        NodeKind::Wheel(ch) => {
            let kids: Vec<NodeId> = node
                .children
                .iter()
                .map(|&c| copy_rec(tree, c, target, modules, chirality, out))
                .collect();
            out.wheel(*ch, [kids[0], kids[1], kids[2], kids[3], kids[4]])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_geom::Rect;
    use fp_tree::layout::realize;
    use fp_tree::{CutDir, Module};

    /// Four rotatable dominoes and a unit square: the pinwheel tiles 3x3
    /// exactly; no slicing arrangement does.
    fn domino_library() -> ModuleLibrary {
        (0..5)
            .map(|i| {
                if i < 4 {
                    Module::hard(format!("d{i}"), Rect::new(2, 1), true)
                } else {
                    Module::hard("centre", Rect::new(1, 1), false)
                }
            })
            .collect()
    }

    fn slicing_tree_of_five() -> FloorplanTree {
        let mut t = FloorplanTree::new();
        let a = t.leaf(0);
        let b = t.leaf(1);
        let top = t.slice(CutDir::Vertical, vec![a, b]);
        let c = t.leaf(2);
        let d = t.leaf(3);
        let e = t.leaf(4);
        let bottom = t.slice(CutDir::Vertical, vec![c, d, e]);
        t.slice(CutDir::Horizontal, vec![top, bottom]);
        t
    }

    #[test]
    fn discovers_the_pinwheel() {
        let library = domino_library();
        let tree = slicing_tree_of_five();
        let config = OptimizeConfig::default();
        let slicing_area = Optimizer::new(&tree, &library)
            .config(&config)
            .run_best()
            .expect("runs")
            .area;
        assert!(
            slicing_area > 9,
            "no slicing arrangement tiles 3x3: {slicing_area}"
        );

        let result = wheel_rewrite(&tree, &library, &config);
        assert_eq!(result.initial_area, slicing_area);
        assert_eq!(
            result.area, 9,
            "the rewrite must find the exact pinwheel tiling"
        );
        assert_eq!(result.rewrites, 1);

        let out = Optimizer::new(&result.tree, &library)
            .config(&config)
            .run_best()
            .expect("runs");
        let layout = realize(&result.tree, &library, &out.assignment).expect("valid");
        assert_eq!(layout.dead_space(), 0);
    }

    #[test]
    fn no_rewrite_when_slicing_is_already_optimal() {
        // Four unit squares: a 2x2 grid is perfect; wheels cannot beat it
        // (and no 5-leaf subtree exists anyway).
        let library: ModuleLibrary = (0..4)
            .map(|i| Module::hard(format!("u{i}"), Rect::new(1, 1), false))
            .collect();
        let mut t = FloorplanTree::new();
        let a = t.leaf(0);
        let b = t.leaf(1);
        let r1 = t.slice(CutDir::Vertical, vec![a, b]);
        let c = t.leaf(2);
        let d = t.leaf(3);
        let r2 = t.slice(CutDir::Vertical, vec![c, d]);
        t.slice(CutDir::Horizontal, vec![r1, r2]);
        let result = wheel_rewrite(&t, &library, &OptimizeConfig::default());
        assert_eq!(result.rewrites, 0);
        assert_eq!(result.area, result.initial_area);
    }

    #[test]
    fn rewrites_inside_larger_trees() {
        // The five dominoes sit beside a 3x3 macro: pinwheeling the five
        // gives a 6x3 floorplan (area 18); any slicing arrangement of the
        // five next to the macro needs more.
        let mut library = domino_library();
        library.extend([Module::hard("x0", Rect::new(3, 3), false)]);
        let mut t = FloorplanTree::new();
        let a = t.leaf(0);
        let b = t.leaf(1);
        let top = t.slice(CutDir::Vertical, vec![a, b]);
        let c = t.leaf(2);
        let d = t.leaf(3);
        let e = t.leaf(4);
        let bottom = t.slice(CutDir::Vertical, vec![c, d, e]);
        let five = t.slice(CutDir::Horizontal, vec![top, bottom]);
        let x0 = t.leaf(5);
        t.slice(CutDir::Vertical, vec![five, x0]);

        let result = wheel_rewrite(&t, &library, &OptimizeConfig::default());
        assert!(result.rewrites >= 1);
        assert!(result.area < result.initial_area);
        // The wheel should appear in the refined tree.
        let wheels = (0..result.tree.len())
            .filter(|&i| matches!(result.tree.node(i).expect("node").kind, NodeKind::Wheel(_)))
            .count();
        assert_eq!(wheels, 1);
    }
}
