//! End-to-end floorplanning: topology search by simulated annealing with
//! the Wang-Wong area optimizer as the inner loop.
//!
//! ```sh
//! cargo run --release -p fp-anneal --example topology_search
//! ```
//!
//! The DAC'92 paper assumes the topology is given; this example supplies
//! it with Wong-Liu annealing over normalized Polish expressions. It also
//! measures an instructive negative result: on *slicing-only* topologies
//! the implementation lists grow only linearly (Stockmeyer's bound), so
//! `R_Selection` is pure overhead here — its dramatic wins (EXPERIMENTS.md
//! Tables 1-4) come from wheel-rich hierarchies whose L-shaped blocks
//! explode combinatorially. This is exactly the paper's own §5 advice:
//! apply selection where (and only where) sets outgrow their value.

use std::time::Instant;

use fp_anneal::{anneal, AnnealConfig};
use fp_optimizer::OptimizeConfig;
use fp_tree::layout::realize;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let library = fp_tree::spread_library(16, 40, 2026);
    let total_module_area: u128 = library
        .iter()
        .map(|m| m.implementations().min_area_value().expect("non-empty"))
        .sum();
    println!("16 soft modules, 40 implementations each (sum of min areas: {total_module_area})");

    for (name, optimizer) in [
        // Slicing lists stay small, so the plain loop is the right choice;
        // the selection-capped variant is shown for the comparison.
        ("plain inner loop", OptimizeConfig::default()),
        (
            "R_Selection(K1=12) inner loop",
            OptimizeConfig::default().with_r_selection(12),
        ),
    ] {
        let cfg = AnnealConfig {
            moves: 3_000,
            seed: 7,
            init: fp_anneal::InitTopology::Random,
            optimizer,
            ..Default::default()
        };
        let t0 = Instant::now();
        let result = anneal(&library, &cfg);
        let layout = realize(&result.tree, &library, &result.assignment)?;
        assert_eq!(layout.validate(), None);
        println!(
            "\n{name}: {} -> {} ({:.1}% better than the random start) in {:?}",
            result.initial_area,
            result.best_area,
            100.0 * (result.initial_area - result.best_area) as f64 / result.initial_area as f64,
            t0.elapsed(),
        );
        println!(
            "  dead space {:.1}%  accepted {}/{} moves  best expression: {}",
            100.0 * layout.dead_space() as f64 / layout.area() as f64,
            result.accepted,
            result.proposed,
            result.expression,
        );
    }
    println!(
        "\nlesson: slicing merges are linear, so the selection layer only\n\
         pays off on wheel-rich floorplans (see EXPERIMENTS.md Tables 1-4)\n\
         or under hard memory caps - the paper's own deployment advice."
    );

    // Post-search refinement: upgrade 5-leaf slicing subtrees to wheels
    // where that strictly helps (the structure slicing cannot express).
    let best = anneal(
        &library,
        &AnnealConfig {
            moves: 3_000,
            seed: 7,
            init: fp_anneal::InitTopology::Random,
            ..Default::default()
        },
    );
    let refined = fp_anneal::wheel_rewrite(&best.tree, &library, &OptimizeConfig::default());
    println!(
        "\nwheel rewriting: {} -> {} ({} wheel(s) introduced)",
        refined.initial_area, refined.area, refined.rewrites
    );
    Ok(())
}
