//! An offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, implementing exactly the API subset this workspace uses.
//!
//! The build environment has no access to a crates registry, so the real
//! proptest cannot be a dependency. Property-based tests are too valuable
//! to drop, hence this shim: the same `proptest!` macro surface,
//! [`Strategy`] combinators, and collection/array/tuple strategies, driven
//! by the workspace's own seeded [`fp_prng`] generator.
//!
//! Differences from the real crate (documented, deliberate):
//!
//! * **No shrinking.** A failing case panics with its case index and
//!   derived seed; reproduce it by rerunning the test (sampling is fully
//!   deterministic per test name).
//! * **Rejections are bounded, not fatal.** `prop_filter` rejections
//!   resample up to a fixed factor of the case count, then the run simply
//!   stops early instead of erroring.
//! * `prop_assume!` skips the rest of the case rather than resampling.
//! * String strategies support only the `.{lo,hi}` pattern form (any
//!   other pattern yields the pattern itself as a literal).
//!
//! The default case count is 64 per test (override with the
//! `PROPTEST_CASES` environment variable), keeping full-workspace test
//! runs fast while preserving real randomized coverage.

#![forbid(unsafe_code)]

/// The generator driving all sampling.
pub type TestRng = fp_prng::Xoshiro256;

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use super::TestRng;

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    /// A source of pseudo-random values of one type.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value; `None` signals a filter rejection (the runner
        /// resamples).
        fn try_sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Rejects values failing `f` (the runner resamples; `_reason` is
        /// kept for API compatibility).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            _reason: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, f }
        }

        /// Chains into a dependent strategy built from each value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn try_sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
            (**self).try_sample(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn try_sample(&self, _rng: &mut TestRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn try_sample(&self, rng: &mut TestRng) -> Option<O> {
            self.inner.try_sample(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn try_sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            self.inner.try_sample(rng).filter(|v| (self.f)(v))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn try_sample(&self, rng: &mut TestRng) -> Option<S2::Value> {
            (self.f)(self.inner.try_sample(rng)?).try_sample(rng)
        }
    }

    /// Uniform choice between same-valued strategies (`prop_oneof!`).
    pub struct OneOf<T> {
        /// The alternatives (non-empty).
        pub options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn try_sample(&self, rng: &mut TestRng) -> Option<T> {
            assert!(!self.options.is_empty(), "prop_oneof! needs an option");
            let i = rng.gen_range(0..self.options.len());
            self.options[i].try_sample(rng)
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn try_sample(&self, rng: &mut TestRng) -> Option<$t> {
                    Some(rng.gen_range(self.clone()))
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn try_sample(&self, rng: &mut TestRng) -> Option<$t> {
                    Some(rng.gen_range(self.clone()))
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn try_sample(&self, rng: &mut TestRng) -> Option<$t> {
                    Some(rng.gen_range(self.clone()))
                }
            }
        )*};
    }

    impl_float_range!(f32, f64);

    macro_rules! impl_tuple {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn try_sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                    let ($($name,)+) = self;
                    Some(($($name.try_sample(rng)?,)+))
                }
            }
        };
    }

    impl_tuple!(A);
    impl_tuple!(A, B);
    impl_tuple!(A, B, C);
    impl_tuple!(A, B, C, D);
    impl_tuple!(A, B, C, D, E);
    impl_tuple!(A, B, C, D, E, F);

    /// Pattern strategy for strings: supports the `.{lo,hi}` form (a
    /// string of `lo..=hi` arbitrary characters); any other pattern is
    /// produced verbatim.
    impl Strategy for &'static str {
        type Value = String;
        fn try_sample(&self, rng: &mut TestRng) -> Option<String> {
            let Some((lo, hi)) = parse_dot_repeat(self) else {
                return Some((*self).to_owned());
            };
            let len = rng.gen_range(lo..=hi);
            let mut out = String::with_capacity(len);
            for _ in 0..len {
                out.push(arbitrary_char(rng));
            }
            Some(out)
        }
    }

    fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
        let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
        let (lo, hi) = rest.split_once(',')?;
        let lo: usize = lo.trim().parse().ok()?;
        let hi: usize = hi.trim().parse().ok()?;
        (lo <= hi).then_some((lo, hi))
    }

    /// A character mix biased towards the bytes grammars care about
    /// (ASCII punctuation, digits, whitespace) with some multibyte
    /// outliers.
    fn arbitrary_char(rng: &mut TestRng) -> char {
        const SPICE: &[char] = &[
            '(',
            ')',
            '#',
            'x',
            'X',
            '\n',
            '\t',
            ' ',
            '0',
            '9',
            '\u{e9}',
            '\u{1F600}',
            '\u{0}',
        ];
        if rng.gen_bool(0.3) {
            SPICE[rng.gen_range(0..SPICE.len())]
        } else {
            char::from(rng.gen_range(0x20u8..0x7F))
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn try_sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.try_sample(rng)?);
            }
            Some(out)
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy for `[S::Value; N]` sampling `element` independently.
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn try_sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
            let mut out = Vec::with_capacity(N);
            for _ in 0..N {
                out.push(self.0.try_sample(rng)?);
            }
            out.try_into().ok()
        }
    }

    /// An array of 4 independent samples.
    pub fn uniform4<S: Strategy>(element: S) -> UniformArray<S, 4> {
        UniformArray(element)
    }

    /// An array of 5 independent samples.
    pub fn uniform5<S: Strategy>(element: S) -> UniformArray<S, 5> {
        UniformArray(element)
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    /// The strategy behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// A fair coin.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn try_sample(&self, rng: &mut TestRng) -> Option<bool> {
            Some(rng.next_u64() & 1 == 1)
        }
    }
}

pub mod test_runner {
    //! The per-test case loop.

    use super::TestRng;

    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// What one sampled case did.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum CaseOutcome {
        /// The case body ran (asserts passed or it panicked out).
        Pass,
        /// A strategy-level rejection; resample.
        Reject,
    }

    fn fnv1a(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Runs up to `config.cases` accepted cases of `case`, seeding each
    /// deterministically from `name` and the case index.
    pub fn run_cases(
        config: &ProptestConfig,
        name: &str,
        mut case: impl FnMut(&mut TestRng) -> CaseOutcome,
    ) {
        let mut master = fp_prng::SplitMix64::new(fnv1a(name));
        let mut accepted = 0u32;
        let mut attempts = 0u64;
        let max_attempts = u64::from(config.cases) * 16 + 256;
        while accepted < config.cases && attempts < max_attempts {
            attempts += 1;
            let mut rng = TestRng::seed_from_u64(master.next_u64());
            if case(&mut rng) == CaseOutcome::Pass {
                accepted += 1;
            }
        }
    }
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. See the crate docs for the supported form.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands the test functions with
/// the config expression already resolved to a depth-zero binding.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __proptest_config = $cfg;
                $crate::test_runner::run_cases(
                    &__proptest_config,
                    concat!(module_path!(), "::", stringify!($name)),
                    |__proptest_rng| {
                        $(
                            let $arg = match $crate::strategy::Strategy::try_sample(
                                &($strat),
                                __proptest_rng,
                            ) {
                                ::core::option::Option::Some(v) => v,
                                ::core::option::Option::None => {
                                    return $crate::test_runner::CaseOutcome::Reject;
                                }
                            };
                        )+
                        let mut __proptest_case = || $body;
                        let () = __proptest_case();
                        $crate::test_runner::CaseOutcome::Pass
                    },
                );
            }
        )+
    };
}

/// `assert!` under a proptest-compatible name (no shrinking here, so a
/// plain panic is the failure report).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the rest of the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice among same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf {
            options: vec![$($crate::strategy::Strategy::boxed($s)),+],
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn runner_is_deterministic() {
        use crate::test_runner::{run_cases, CaseOutcome};
        let collect = |name: &str| {
            let mut seen = Vec::new();
            run_cases(&ProptestConfig::with_cases(8), name, |rng| {
                seen.push(Strategy::try_sample(&(0u64..1000), rng).unwrap());
                CaseOutcome::Pass
            });
            seen
        };
        assert_eq!(collect("a"), collect("a"));
        assert_ne!(collect("a"), collect("b"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_and_tuples(x in 1u64..10, (a, b) in (0i32..5, 0i32..5), flip in crate::bool::ANY) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0..5).contains(&a) && (0..5).contains(&b));
            let _ = flip;
        }

        #[test]
        fn combinators_compose(v in crate::collection::vec((1u64..6).prop_map(|n| n * 2), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|n| n % 2 == 0));
        }

        #[test]
        fn oneof_and_filter(word in prop_oneof![Just("aa"), Just("bb")],
                            n in (0u32..100).prop_filter("even", |n| n % 2 == 0)) {
            prop_assert!(word == "aa" || word == "bb");
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn string_pattern(text in ".{0,40}") {
            prop_assert!(text.chars().count() <= 40);
        }

        #[test]
        fn arrays_fill(arr in crate::array::uniform5(1u64..4)) {
            prop_assert!(arr.iter().all(|&v| (1..4).contains(&v)));
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n < 5);
            prop_assert!(n < 5);
        }
    }
}
