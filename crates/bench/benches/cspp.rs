//! Criterion benches for the constrained shortest path solver: the
//! `O(k(|V| + |E|))` bound of Theorem 1, plus the Figure 4 micro-case.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fp_cspp::{constrained_shortest_path, shortest_path, Dag};

/// The Figure 4 graph.
fn figure4() -> Dag<u64> {
    let mut g = Dag::new(6);
    for (u, v, w) in [
        (0, 1, 1),
        (1, 2, 2),
        (2, 3, 2),
        (3, 4, 2),
        (4, 5, 1),
        (0, 2, 6),
        (1, 3, 6),
        (3, 5, 4),
        (1, 4, 13),
    ] {
        g.add_edge(u, v, w).expect("valid edge");
    }
    g
}

/// A complete DAG on `n` vertices (the shape `R_Selection` solves on).
fn complete_dag(n: usize) -> Dag<u64> {
    let mut g = Dag::new(n);
    for i in 0..n {
        for j in i + 1..n {
            g.add_edge(i, j, ((i * 7 + j * 13) % 97 + 1) as u64)
                .expect("valid edge");
        }
    }
    g
}

fn bench_cspp(c: &mut Criterion) {
    c.bench_function("cspp_figure4_k4", |b| {
        let g = figure4();
        b.iter(|| constrained_shortest_path(&g, 0, 5, 4).expect("path exists"));
    });

    let mut group = c.benchmark_group("cspp_complete_dag");
    for n in [32usize, 64, 128, 256] {
        let g = complete_dag(n);
        let k = n / 4;
        group.bench_with_input(BenchmarkId::new("k_quarter_n", n), &n, |b, _| {
            b.iter(|| constrained_shortest_path(&g, 0, n - 1, k).expect("path exists"));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("cspp_vs_unconstrained");
    let g = complete_dag(128);
    group.bench_function("constrained_k32", |b| {
        b.iter(|| constrained_shortest_path(&g, 0, 127, 32).expect("path exists"));
    });
    group.bench_function("classical", |b| {
        b.iter(|| shortest_path(&g, 0, 127).expect("path exists"));
    });
    group.finish();
}

criterion_group!(benches, bench_cspp);
criterion_main!(benches);
