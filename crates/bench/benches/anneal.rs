//! Criterion bench for the topology-search application layer: annealing
//! throughput with different inner-loop configurations.

use criterion::{criterion_group, criterion_main, Criterion};
use fp_anneal::{anneal, AnnealConfig, PolishExpression};
use fp_optimizer::OptimizeConfig;
use fp_prng::StdRng;

fn bench_inner_loop(c: &mut Criterion) {
    let library = fp_tree::spread_library(12, 20, 5);
    let mut group = c.benchmark_group("anneal_inner_loop");
    group.sample_size(10);
    group.bench_function("plain_200_moves", |b| {
        let cfg = AnnealConfig {
            moves: 200,
            seed: 3,
            ..Default::default()
        };
        b.iter(|| anneal(&library, &cfg));
    });
    group.bench_function("r_selection_200_moves", |b| {
        let cfg = AnnealConfig {
            moves: 200,
            seed: 3,
            optimizer: OptimizeConfig::default().with_r_selection(10),
            ..Default::default()
        };
        b.iter(|| anneal(&library, &cfg));
    });
    group.finish();
}

fn bench_moves(c: &mut Criterion) {
    let mut group = c.benchmark_group("polish_moves");
    group.bench_function("random_move_n32", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let mut expr = PolishExpression::row(32);
        b.iter(|| expr.random_move(&mut rng));
    });
    group.bench_function("to_tree_n32", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let expr = PolishExpression::random(32, &mut rng);
        b.iter(|| expr.to_tree());
    });
    group.finish();
}

criterion_group!(benches, bench_inner_loop, bench_moves);
criterion_main!(benches);
