//! Criterion benches for the DESIGN.md §6 ablations (runtime side; the
//! quality side is printed by `tables -- ablations`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fp_bench::optimize_best;
use fp_optimizer::OptimizeConfig;
use fp_select::{LReductionPolicy, Metric};
use fp_tree::generators::{self, module_library};

/// Ablation: the θ trigger's runtime effect (vetoing reductions trades
/// memory for selection time).
fn bench_theta(c: &mut Criterion) {
    let bench = generators::fp1();
    let lib = module_library(&bench.tree, 10, 7);
    let mut group = c.benchmark_group("ablation_theta_fp1_n10");
    group.sample_size(10);
    for theta in [0.25f64, 0.5, 1.0] {
        group.bench_with_input(BenchmarkId::from_parameter(theta), &theta, |b, &theta| {
            let cfg = OptimizeConfig::default()
                .with_l_selection(LReductionPolicy::new(150).with_theta(theta));
            b.iter(|| optimize_best(&bench.tree, &lib, &cfg).expect("fits"));
        });
    }
    group.finish();
}

/// Ablation: the prefilter S makes large-list reduction affordable.
fn bench_prefilter(c: &mut Criterion) {
    let bench = generators::fp1();
    let lib = module_library(&bench.tree, 10, 7);
    let mut group = c.benchmark_group("ablation_prefilter_fp1_n10");
    group.sample_size(10);
    group.bench_function("off", |b| {
        let cfg = OptimizeConfig::default().with_l_selection(LReductionPolicy::new(150));
        b.iter(|| optimize_best(&bench.tree, &lib, &cfg).expect("fits"));
    });
    for s in [400usize, 1000] {
        group.bench_with_input(BenchmarkId::new("s", s), &s, |b, &s| {
            let cfg = OptimizeConfig::default()
                .with_l_selection(LReductionPolicy::new(150).with_prefilter(s));
            b.iter(|| optimize_best(&bench.tree, &lib, &cfg).expect("fits"));
        });
    }
    group.finish();
}

/// Ablation: metric choice (L1 runs on exact integers; L2/Linf go through
/// the float CSPP path).
fn bench_metric(c: &mut Criterion) {
    let bench = generators::fp1();
    let lib = module_library(&bench.tree, 8, 7);
    let mut group = c.benchmark_group("ablation_metric_fp1_n8");
    group.sample_size(10);
    for (name, metric) in [
        ("L1", Metric::L1),
        ("L2", Metric::L2),
        ("Linf", Metric::Linf),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &metric, |b, &metric| {
            let cfg = OptimizeConfig::default()
                .with_l_selection(LReductionPolicy::new(120).with_metric(metric));
            b.iter(|| optimize_best(&bench.tree, &lib, &cfg).expect("fits"));
        });
    }
    group.finish();
}

/// Ablation: the global cross-chain prune — the engine improvement that
/// keeps plain runs at [9]'s storage scale.
fn bench_global_prune(c: &mut Criterion) {
    let bench = generators::fp1();
    let lib = module_library(&bench.tree, 10, 7);
    let mut group = c.benchmark_group("ablation_global_prune_fp1_n10");
    group.sample_size(10);
    group.bench_function("full", |b| {
        let cfg = OptimizeConfig::default();
        b.iter(|| optimize_best(&bench.tree, &lib, &cfg).expect("fits"));
    });
    group.bench_function("group_only", |b| {
        let cfg = OptimizeConfig::default().with_global_l_prune(Some(0));
        b.iter(|| optimize_best(&bench.tree, &lib, &cfg).expect("fits"));
    });
    group.bench_function("off", |b| {
        let cfg = OptimizeConfig::default().with_global_l_prune(None);
        b.iter(|| optimize_best(&bench.tree, &lib, &cfg).expect("fits"));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_theta,
    bench_prefilter,
    bench_metric,
    bench_global_prune
);
criterion_main!(benches);
