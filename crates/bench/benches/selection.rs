//! Criterion benches for the selection algorithms themselves: Theorem 2's
//! `O(k n²)` for `R_Selection`, Theorem 3's `O(n³)` for `L_Selection`, and
//! the §5 heuristic reducer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fp_bench::ablation::{synthetic_llist, synthetic_rlist};
use fp_select::greedy::greedy_r_selection;
use fp_select::{heuristic_l_reduction, l_selection, r_selection, Metric};

fn bench_r_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("r_selection");
    for n in [50usize, 100, 200, 400] {
        let list = synthetic_rlist(n);
        let k = n / 4;
        group.bench_with_input(BenchmarkId::new("optimal", n), &n, |b, _| {
            b.iter(|| r_selection(&list, k).expect("selection"));
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &n, |b, _| {
            b.iter(|| greedy_r_selection(&list, k));
        });
    }
    group.finish();
}

fn bench_l_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("l_selection");
    group.sample_size(20);
    for n in [30usize, 60, 120, 240] {
        let list = synthetic_llist(n);
        let k = n / 4;
        group.bench_with_input(BenchmarkId::new("optimal", n), &n, |b, _| {
            b.iter(|| l_selection(&list, k).expect("selection"));
        });
        group.bench_with_input(BenchmarkId::new("heuristic", n), &n, |b, _| {
            b.iter(|| heuristic_l_reduction(&list, k, Metric::L1));
        });
        // The paper's two-phase trick: greedy to S = n/2, then optimal.
        group.bench_with_input(BenchmarkId::new("prefilter_then_optimal", n), &n, |b, _| {
            b.iter(|| {
                let coarse = heuristic_l_reduction(&list, n / 2, Metric::L1);
                let reduced = list.subset(&coarse);
                l_selection(&reduced, k).expect("selection")
            });
        });
    }
    group.finish();
}

/// The O(n^2) / O(n^3) error-table builds of Compute_R_Error and
/// Compute_L_Error — the dominant costs of Theorems 2 and 3.
fn bench_error_tables(c: &mut Criterion) {
    use fp_select::{LErrorTable, RErrorTable};
    let mut group = c.benchmark_group("error_tables");
    group.sample_size(20);
    for n in [50usize, 100, 200] {
        let rlist = synthetic_rlist(n);
        group.bench_with_input(BenchmarkId::new("compute_r_error", n), &n, |b, _| {
            b.iter(|| RErrorTable::new(&rlist));
        });
        let llist = synthetic_llist(n);
        group.bench_with_input(BenchmarkId::new("compute_l_error", n), &n, |b, _| {
            b.iter(|| LErrorTable::new_l1(&llist));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_r_selection,
    bench_l_selection,
    bench_error_tables
);
criterion_main!(benches);
