//! Criterion wrappers around the table protocols at bench-friendly sizes:
//! the CPU columns of Tables 1, 2 and 4 as repeatable measurements.
//! (The full paper-scale sweeps are produced by the `tables` binary.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fp_bench::optimize_best;
use fp_optimizer::OptimizeConfig;
use fp_select::LReductionPolicy;
use fp_tree::generators::{self, module_library};

fn bench_table1_fp1(c: &mut Criterion) {
    let bench = generators::fp1();
    let lib = module_library(&bench.tree, 16, 101);
    let mut group = c.benchmark_group("table1_fp1_n16");
    group.sample_size(10);
    group.bench_function("plain", |b| {
        b.iter(|| optimize_best(&bench.tree, &lib, &OptimizeConfig::default()).expect("fits"));
    });
    for k1 in [16usize, 24, 32] {
        group.bench_with_input(BenchmarkId::new("r_selection", k1), &k1, |b, &k1| {
            let cfg = OptimizeConfig::default().with_r_selection(k1);
            b.iter(|| optimize_best(&bench.tree, &lib, &cfg).expect("fits"));
        });
    }
    group.finish();
}

fn bench_table2_fp2(c: &mut Criterion) {
    let bench = generators::fp2();
    let lib = module_library(&bench.tree, 12, 101);
    let mut group = c.benchmark_group("table2_fp2_n12");
    group.sample_size(10);
    group.bench_function("plain", |b| {
        b.iter(|| optimize_best(&bench.tree, &lib, &OptimizeConfig::default()).expect("fits"));
    });
    group.bench_function("r_selection_k24", |b| {
        let cfg = OptimizeConfig::default().with_r_selection(24);
        b.iter(|| optimize_best(&bench.tree, &lib, &cfg).expect("fits"));
    });
    group.finish();
}

fn bench_table4_fp4(c: &mut Criterion) {
    let bench = generators::fp4();
    let lib = module_library(&bench.tree, 12, 201);
    let mut group = c.benchmark_group("table4_fp4_n12");
    group.sample_size(10);
    group.bench_function("r_selection_k24", |b| {
        let cfg = OptimizeConfig::default().with_r_selection(24);
        b.iter(|| optimize_best(&bench.tree, &lib, &cfg).expect("fits"));
    });
    for k2 in [1000usize, 2000] {
        group.bench_with_input(BenchmarkId::new("r_plus_l", k2), &k2, |b, &k2| {
            let cfg = OptimizeConfig::default()
                .with_r_selection(24)
                .with_l_selection(LReductionPolicy::new(k2).with_prefilter(10_000));
            b.iter(|| optimize_best(&bench.tree, &lib, &cfg).expect("fits"));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_table1_fp1,
    bench_table2_fp2,
    bench_table4_fp4
);
criterion_main!(benches);
