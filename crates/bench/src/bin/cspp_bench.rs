//! Selection-kernel benchmark: legacy `Dag` DP vs the flat layered
//! kernel (dense and auto-dispatched divide-and-conquer), emitted as
//! machine-readable `BENCH_cspp.json`.
//!
//! ```sh
//! cargo run --release -p fp-bench --bin cspp_bench
//! cargo run --release -p fp-bench --bin cspp_bench -- --out path.json
//! cargo run --release -p fp-bench --bin cspp_bench -- --smoke
//! ```
//!
//! Two sections:
//!
//! * **synthetic** — R-selection instances at n ∈ {64, 256, 1024}
//!   (`K₁ = max(4, n/8)`), with O(1) staircase weights from
//!   [`RErrorPrefix`]. Each cell times the legacy materialized-`Dag`
//!   DP, the flat dense kernel, and the auto dispatch (which takes the
//!   divide-and-conquer row-minima path on these Monge tables), cold
//!   (fresh arena per call) and warm (reused arena). Every solver's
//!   weight and path are asserted identical, so the bench doubles as an
//!   equivalence gate.
//! * **floorplans** — FP1–FP4 end-to-end under the selection policies,
//!   reporting the selection kernels' share of total CPU
//!   ([`fp_optimizer`]'s `RunStats::selection_time`).
//!
//! Timings are the best of [`REPS`] repetitions. In full mode the
//! headline gate is enforced: the auto kernel must beat the legacy DP
//! by ≥ [`SPEEDUP_GATE`]× at n = 1024, warm, single-threaded.
//!
//! `--smoke` runs a reduced matrix (n ∈ {16, 32}, FP1 only, 1 rep)
//! with the identical JSON schema, for CI schema validation.

use std::time::Instant;

use fp_bench::ablation::synthetic_rlist;
use fp_bench::optimize_best;
use fp_cspp::{
    constrained_shortest_path, constrained_shortest_path_scratch, solve_selection,
    solve_selection_dense, CsppScratch, Dag, FlatKernel,
};
use fp_optimizer::OptimizeConfig;
use fp_select::{LReductionPolicy, RErrorPrefix};
use fp_tree::generators::{self, module_library, Benchmark};

/// Repetitions per timed cell; the minimum is kept.
const REPS: usize = 7;
/// Required warm speedup of the auto-dispatched flat kernel over the
/// legacy `Dag` DP at the largest synthetic size (full mode only).
const SPEEDUP_GATE: f64 = 3.0;

const SIZES: [usize; 3] = [64, 256, 1024];
const SMOKE_SIZES: [usize; 2] = [16, 32];

struct SyntheticCell {
    n: usize,
    k: usize,
    legacy_cold_micros: f64,
    legacy_warm_micros: f64,
    dense_cold_micros: f64,
    dense_warm_micros: f64,
    auto_cold_micros: f64,
    auto_warm_micros: f64,
    auto_kernel: &'static str,
    speedup_warm: f64,
}

struct FloorplanCell {
    bench: String,
    total_millis: f64,
    selection_millis: f64,
    selection_share_pct: f64,
}

fn time_best<F: FnMut() -> f64>(reps: usize, mut run: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        best = best.min(run());
    }
    best
}

fn micros<F: FnMut()>(mut f: F) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1e6
}

/// One synthetic size: staircase (Monge) R-error weights over the
/// irreducible list, all six (solver, arena) combinations timed and
/// cross-checked for byte-identical selections.
fn run_synthetic(n_req: usize, reps: usize) -> SyntheticCell {
    let list = synthetic_rlist(n_req);
    let prefix = RErrorPrefix::new(&list);
    let n = prefix.len();
    assert!(n >= 4, "synthetic list too small after pruning");
    let k = (n / 8).max(4);
    let w = |i: usize, j: usize| prefix.error(i, j);

    // Reference: the legacy materialized-DAG DP.
    let g = Dag::complete(n, w);
    let reference = constrained_shortest_path(&g, 0, n - 1, k).expect("complete DAG is solvable");

    let mut warm = CsppScratch::new();
    let auto_out = solve_selection(n, k, w, &mut warm).expect("solvable");
    let auto_kernel = match auto_out.kernel {
        FlatKernel::Dense => "dense",
        FlatKernel::DivideConquer => "divide_conquer",
    };
    assert_eq!(
        auto_out.weight, reference.weight,
        "n = {n}: weight diverged"
    );
    assert_eq!(
        warm.path(),
        &reference.vertices[..],
        "n = {n}: path diverged"
    );
    let dense_out = solve_selection_dense(n, k, w, &mut warm).expect("solvable");
    assert_eq!(dense_out.weight, reference.weight);
    assert_eq!(warm.path(), &reference.vertices[..]);

    let legacy_cold_micros = time_best(reps, || {
        micros(|| {
            let sol = constrained_shortest_path(&g, 0, n - 1, k).expect("solvable");
            assert_eq!(sol.weight, reference.weight);
        })
    });
    let legacy_warm_micros = time_best(reps, || {
        micros(|| {
            let w_got =
                constrained_shortest_path_scratch(&g, 0, n - 1, k, &mut warm).expect("solvable");
            assert_eq!(w_got, reference.weight);
        })
    });
    let dense_cold_micros = time_best(reps, || {
        micros(|| {
            let mut fresh = CsppScratch::new();
            let out = solve_selection_dense(n, k, w, &mut fresh).expect("solvable");
            assert_eq!(out.weight, reference.weight);
        })
    });
    let dense_warm_micros = time_best(reps, || {
        micros(|| {
            let out = solve_selection_dense(n, k, w, &mut warm).expect("solvable");
            assert_eq!(out.weight, reference.weight);
        })
    });
    let auto_cold_micros = time_best(reps, || {
        micros(|| {
            let mut fresh = CsppScratch::new();
            let out = solve_selection(n, k, w, &mut fresh).expect("solvable");
            assert_eq!(out.weight, reference.weight);
        })
    });
    let auto_warm_micros = time_best(reps, || {
        micros(|| {
            let out = solve_selection(n, k, w, &mut warm).expect("solvable");
            assert_eq!(out.weight, reference.weight);
        })
    });

    SyntheticCell {
        n,
        k,
        legacy_cold_micros,
        legacy_warm_micros,
        dense_cold_micros,
        dense_warm_micros,
        auto_cold_micros,
        auto_warm_micros,
        auto_kernel,
        speedup_warm: legacy_warm_micros / auto_warm_micros.max(1e-3),
    }
}

/// One floorplan end-to-end under its selection policies; reports how
/// much of the run the selection kernels account for.
fn run_floorplan(
    name: &str,
    bench: &Benchmark,
    n: usize,
    config: &OptimizeConfig,
) -> FloorplanCell {
    let library = module_library(&bench.tree, n, 7);
    let out = optimize_best(&bench.tree, &library, config).expect("benchmark run solves");
    let total_millis = out.stats.elapsed.as_secs_f64() * 1e3;
    let selection_millis = out.stats.selection_time.as_secs_f64() * 1e3;
    FloorplanCell {
        bench: name.to_owned(),
        total_millis,
        selection_millis,
        selection_share_pct: 100.0 * selection_millis / total_millis.max(1e-9),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_cspp.json".to_owned();
    let mut smoke = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("cspp_bench: --out needs a value");
                    std::process::exit(2);
                }
            },
            "--smoke" => smoke = true,
            other => {
                eprintln!("cspp_bench: unknown option {other}");
                std::process::exit(2);
            }
        }
    }

    let (sizes, reps): (&[usize], usize) = if smoke {
        (&SMOKE_SIZES, 1)
    } else {
        (&SIZES, REPS)
    };

    let mut synthetic = Vec::new();
    for &n in sizes {
        eprintln!("cspp_bench: synthetic n = {n} ...");
        synthetic.push(run_synthetic(n, reps));
    }

    // FP1–FP4 under the table protocols' selection policies; sizes are
    // kept modest so the full bench stays in seconds.
    let fp_cases: Vec<(&str, Benchmark, usize, OptimizeConfig)> = if smoke {
        vec![(
            "FP1",
            generators::fp1(),
            4,
            OptimizeConfig::default().with_r_selection(6),
        )]
    } else {
        vec![
            (
                "FP1",
                generators::fp1(),
                12,
                OptimizeConfig::default().with_r_selection(18),
            ),
            (
                "FP2",
                generators::fp2(),
                10,
                OptimizeConfig::default().with_r_selection(15),
            ),
            (
                "FP3",
                generators::fp3(),
                8,
                OptimizeConfig::default().with_r_selection(12),
            ),
            (
                "FP4",
                generators::fp4(),
                8,
                OptimizeConfig::default()
                    .with_r_selection(12)
                    .with_l_selection(LReductionPolicy::new(500).with_prefilter(2000)),
            ),
        ]
    };
    let mut floorplans = Vec::new();
    for (name, bench, n, config) in &fp_cases {
        eprintln!("cspp_bench: floorplan {name} (n = {n}) ...");
        floorplans.push(run_floorplan(name, bench, *n, config));
    }

    for c in &synthetic {
        println!(
            "n {:>5} k {:>4}: legacy {:>10.1} us | dense {:>10.1} us | auto({}) {:>10.1} us | \
             {:>6.2}x warm",
            c.n,
            c.k,
            c.legacy_warm_micros,
            c.dense_warm_micros,
            c.auto_kernel,
            c.auto_warm_micros,
            c.speedup_warm,
        );
    }
    for f in &floorplans {
        println!(
            "{:>4}: total {:>9.2} ms, selection {:>8.2} ms ({:>5.2}%)",
            f.bench, f.total_millis, f.selection_millis, f.selection_share_pct,
        );
    }

    let synth_json: Vec<String> = synthetic
        .iter()
        .map(|c| {
            format!(
                "    {{\"n\": {}, \"k\": {}, \"legacy_cold_micros\": {:.2}, \
                 \"legacy_warm_micros\": {:.2}, \"dense_cold_micros\": {:.2}, \
                 \"dense_warm_micros\": {:.2}, \"auto_cold_micros\": {:.2}, \
                 \"auto_warm_micros\": {:.2}, \"auto_kernel\": \"{}\", \
                 \"speedup_warm\": {:.2}}}",
                c.n,
                c.k,
                c.legacy_cold_micros,
                c.legacy_warm_micros,
                c.dense_cold_micros,
                c.dense_warm_micros,
                c.auto_cold_micros,
                c.auto_warm_micros,
                c.auto_kernel,
                c.speedup_warm,
            )
        })
        .collect();
    let fp_json: Vec<String> = floorplans
        .iter()
        .map(|f| {
            format!(
                "    {{\"bench\": \"{}\", \"total_millis\": {:.3}, \"selection_millis\": {:.3}, \
                 \"selection_share_pct\": {:.2}}}",
                f.bench, f.total_millis, f.selection_millis, f.selection_share_pct,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"flat layered CSPP selection kernel\",\n  \
         \"smoke\": {smoke},\n  \"reps\": {reps},\n  \"speedup_gate\": {SPEEDUP_GATE},\n  \
         \"synthetic\": [\n{}\n  ],\n  \"floorplans\": [\n{}\n  ]\n}}\n",
        synth_json.join(",\n"),
        fp_json.join(",\n"),
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cspp_bench: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    // Headline gate: auto kernel vs legacy DP, warm, at the largest n.
    if smoke {
        return;
    }
    let largest = synthetic.last().expect("sizes are non-empty");
    if largest.speedup_warm < SPEEDUP_GATE {
        eprintln!(
            "cspp_bench: FAIL: warm speedup at n = {} is {:.2}x (< {SPEEDUP_GATE}x)",
            largest.n, largest.speedup_warm
        );
        std::process::exit(1);
    }
}
