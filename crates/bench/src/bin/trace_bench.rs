//! `trace_bench` — the observability layer's overhead budget, measured.
//!
//! For each paper benchmark the same optimization runs three ways:
//!
//! * **disabled** — no tracer attached (the facade's `None` fast path);
//! * **unsubscribed** — `Tracer::unsubscribed()` attached: every
//!   emission site takes one extra branch but records nothing. This is
//!   the mode production callers pay for "tracing available but off";
//! * **subscribed** — `Tracer::new()` attached and drained per run:
//!   the full ring-buffer collection cost.
//!
//! Writes `BENCH_trace.json`. In full mode the run *fails* (exit 1)
//! when the unsubscribed overhead exceeds the gate on any benchmark
//! long enough to measure reliably — the observability layer's
//! contract is that instrumenting the hot path costs nothing when
//! nobody is listening.
//!
//! `--smoke` runs FP1–FP2 with one rep for CI schema validation; the
//! gate is reported but not enforced (millisecond runs are
//! noise-bound).

use std::time::Instant;

use fp_optimizer::{OptimizeConfig, Optimizer, Tracer};
use fp_tree::generators;
use fp_tree::{FloorplanTree, ModuleLibrary};

/// Repetitions per (bench, mode) cell; the minimum is kept.
const REPS: usize = 5;
/// Maximum tolerated unsubscribed overhead, percent.
const OVERHEAD_GATE_PCT: f64 = 2.0;
/// Benchmarks faster than this are too noisy to gate on.
const GATE_FLOOR_MILLIS: f64 = 10.0;

struct Row {
    name: String,
    disabled_millis: f64,
    unsubscribed_millis: f64,
    subscribed_millis: f64,
    subscribed_events: usize,
}

fn time_best<F: FnMut() -> f64>(reps: usize, mut run: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        best = best.min(run());
    }
    best
}

fn run_bench(name: &str, tree: &FloorplanTree, library: &ModuleLibrary, reps: usize) -> Row {
    let config = OptimizeConfig::default().with_r_selection(8);
    // Warm-up: page in the instance and the allocator.
    let baseline = Optimizer::new(tree, library)
        .config(&config)
        .run_best()
        .expect("baseline solves");

    let disabled_millis = time_best(reps, || {
        let start = Instant::now();
        let out = Optimizer::new(tree, library)
            .config(&config)
            .run_best()
            .expect("disabled run solves");
        let millis = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            out.area, baseline.area,
            "{name}: tracing changed the result"
        );
        millis
    });

    let muted = Tracer::unsubscribed();
    let unsubscribed_millis = time_best(reps, || {
        let start = Instant::now();
        let out = Optimizer::new(tree, library)
            .config(&config)
            .tracer(&muted)
            .run_best()
            .expect("unsubscribed run solves");
        let millis = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            out.area, baseline.area,
            "{name}: tracing changed the result"
        );
        millis
    });

    let mut subscribed_events = 0usize;
    let subscribed_millis = time_best(reps, || {
        let tracer = Tracer::new();
        let start = Instant::now();
        let out = Optimizer::new(tree, library)
            .config(&config)
            .tracer(&tracer)
            .run_best()
            .expect("subscribed run solves");
        let millis = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            out.area, baseline.area,
            "{name}: tracing changed the result"
        );
        subscribed_events = tracer.drain().events.len();
        millis
    });

    Row {
        name: name.to_owned(),
        disabled_millis,
        unsubscribed_millis,
        subscribed_millis,
        subscribed_events,
    }
}

fn overhead_pct(base: f64, with: f64) -> f64 {
    if base <= 0.0 {
        return 0.0;
    }
    100.0 * (with - base) / base
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_trace.json".to_owned();
    let mut smoke = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("trace_bench: --out needs a value");
                    std::process::exit(2);
                }
            },
            "--smoke" => smoke = true,
            other => {
                eprintln!("trace_bench: unknown option {other}");
                std::process::exit(2);
            }
        }
    }

    let (reps, n): (usize, usize) = if smoke { (1, 4) } else { (REPS, 8) };
    let mut cases = vec![("FP1", generators::fp1()), ("FP2", generators::fp2())];
    if !smoke {
        cases.push(("FP3", generators::fp3()));
        cases.push(("FP4", generators::fp4()));
    }

    let mut rows = Vec::new();
    for (name, bench) in &cases {
        eprintln!("trace_bench: running {name} (n = {n}, reps = {reps}) ...");
        let library = generators::module_library(&bench.tree, n, 7);
        rows.push(run_bench(name, &bench.tree, &library, reps));
    }

    let mut gate_failures = Vec::new();
    let entries: Vec<String> = rows
        .iter()
        .map(|row| {
            let pct = overhead_pct(row.disabled_millis, row.unsubscribed_millis);
            if !smoke && row.disabled_millis >= GATE_FLOOR_MILLIS && pct > OVERHEAD_GATE_PCT {
                gate_failures.push(format!("{}: {pct:.2}%", row.name));
            }
            format!(
                "    {{\"bench\": \"{}\", \"disabled_millis\": {:.3}, \
                 \"unsubscribed_millis\": {:.3}, \"subscribed_millis\": {:.3}, \
                 \"unsubscribed_overhead_pct\": {:.2}, \"subscribed_events\": {}}}",
                row.name,
                row.disabled_millis,
                row.unsubscribed_millis,
                row.subscribed_millis,
                pct,
                row.subscribed_events,
            )
        })
        .collect();

    let json = format!(
        "{{\n  \"benchmark\": \"trace_overhead\",\n  \"smoke\": {},\n  \"reps\": {},\n  \
         \"overhead_gate_pct\": {:.1},\n  \"results\": [\n{}\n  ]\n}}\n",
        smoke,
        reps,
        OVERHEAD_GATE_PCT,
        entries.join(",\n")
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("trace_bench: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprint!("{json}");
    eprintln!("trace_bench: wrote {out_path}");

    if !gate_failures.is_empty() {
        eprintln!(
            "trace_bench: FAIL: unsubscribed tracing overhead over {OVERHEAD_GATE_PCT}%: {}",
            gate_failures.join(", ")
        );
        std::process::exit(1);
    }
}
