//! Wirelength (HPWL) evaluator and Pareto-frontier benchmark, emitted
//! as machine-readable `BENCH_netlist.json`.
//!
//! ```sh
//! cargo run --release -p fp-bench --bin netlist_bench
//! cargo run --release -p fp-bench --bin netlist_bench -- --smoke
//! cargo run --release -p fp-bench --bin netlist_bench -- --out path.json
//! ```
//!
//! Two phases per paper benchmark, against a seeded random netlist
//! bound to the benchmark's module library:
//!
//! * **hpwl** — replay an annealer-style probe sequence (each step a
//!   single-module implementation what-if against a pinned base
//!   layout, built up front so only the evaluation is timed) through a
//!   persistent incremental
//!   [`HpwlEvaluator`] and through full per-step recomputation. Both
//!   totals must agree exactly at every step, and the incremental pass
//!   must be at least [`MIN_SPEEDUP`]x faster — that factor is the
//!   whole point of the incremental bounding boxes.
//! * **pareto** — run the multi-objective frontier sweep
//!   ([`Optimizer::run_pareto`]) and record the non-dominated front
//!   size, the number of envelopes evaluated, and the normalized
//!   hypervolume. At least [`MIN_FRONTED`] benchmarks must produce a
//!   front of [`MIN_FRONT`]+ points, or the trade-off surface has
//!   collapsed.
//!
//! Timings are the best of [`REPS`] repetitions (monotonic clock).
//! `--smoke` runs a reduced matrix (2 benchmarks, short move sequence,
//! 1 rep) so CI can gate on the schema and both invariants cheaply.

use std::time::Instant;

use fp_optimizer::{random_netlist, BoundNetlist, HpwlEvaluator, Optimizer};
use fp_prng::Xoshiro256;
use fp_tree::layout::{realize, Assignment, Layout};
use fp_tree::{generators, FloorplanTree, ModuleLibrary, NodeKind};

/// Repetitions per timed phase; the minimum is reported.
const REPS: usize = 3;
/// Implementations per module: wide libraries give the frontier sweep
/// a real trade-off surface to walk.
const IMPLS: usize = 16;
/// Module-set seed (matches the `tables` benchmark convention).
const LIB_SEED: u64 = 1;
/// Nets in the generated netlist and its seed.
const NETS: usize = 800;
const NET_SEED: u64 = 3;
/// Gate: the incremental evaluator must beat full recomputation by at
/// least this factor on every benchmark.
const MIN_SPEEDUP: f64 = 5.0;
/// Gate: at least `MIN_FRONTED` benchmarks must yield a Pareto front
/// with `MIN_FRONT`+ mutually non-dominated points.
const MIN_FRONT: usize = 3;
const MIN_FRONTED: usize = 2;

struct HpwlResult {
    moves: usize,
    full_millis: f64,
    inc_millis: f64,
    inc_evals_per_sec: f64,
    speedup: f64,
}

struct ParetoResult {
    front_size: usize,
    evaluated: usize,
    hypervolume: f64,
}

struct BenchResult {
    bench: &'static str,
    modules: usize,
    nets: usize,
    hpwl: HpwlResult,
    pareto: ParetoResult,
}

fn benchmark(name: &str) -> generators::Benchmark {
    match name {
        "fp1" => generators::fp1(),
        "fp2" => generators::fp2(),
        "fp3" => generators::fp3(),
        "fp4" => generators::fp4(),
        other => panic!("unknown benchmark {other}"),
    }
}

/// A deterministic annealer-style probe sequence: each step is a
/// single-module what-if — one leaf's implementation choice flips and
/// its placed rectangle is re-sized in place, every other placement
/// pinned (the annealer's candidate-probing regime, where a full
/// re-realize is deferred until a move is accepted). Layouts are built
/// up front so the timed loops measure evaluation only.
fn move_sequence(
    tree: &FloorplanTree,
    library: &ModuleLibrary,
    moves: usize,
) -> (Vec<Assignment>, Vec<Layout>) {
    let leaves = tree.leaves_in_order();
    let counts: Vec<usize> = leaves
        .iter()
        .map(|&leaf| match tree.node(leaf).map(|n| &n.kind) {
            Some(&NodeKind::Leaf(m)) => library
                .get(m)
                .map_or(1, |module| module.implementations().len().max(1)),
            _ => 1,
        })
        .collect();
    let base_choices = vec![0usize; leaves.len()];
    let base_assignment = Assignment::new(base_choices.clone());
    let base_layout = realize(tree, library, &base_assignment).expect("base assignment realizes");

    let mut rng = Xoshiro256::seed_from_u64(0xbe5c);
    let mut choices = base_choices;
    let mut layout = base_layout;
    let mut assignments = vec![Assignment::new(choices.clone())];
    let mut layouts = vec![layout.clone()];
    for _ in 0..moves {
        let slot = rng.gen_range(0..leaves.len());
        let choice = rng.gen_range(0..counts[slot]);
        let module = match tree.node(leaves[slot]).map(|n| &n.kind) {
            Some(&NodeKind::Leaf(m)) => m,
            _ => continue,
        };
        let Some(size) = library
            .get(module)
            .and_then(|m| m.implementations().get(choice))
        else {
            continue;
        };
        choices[slot] = choice;
        for (leaf, rect) in &mut layout.placed {
            if *leaf == leaves[slot] {
                rect.size = size;
            }
        }
        assignments.push(Assignment::new(choices.clone()));
        layouts.push(layout.clone());
    }
    (assignments, layouts)
}

fn hpwl_phase(
    tree: &FloorplanTree,
    library: &ModuleLibrary,
    bound: &BoundNetlist,
    moves: usize,
    reps: usize,
) -> HpwlResult {
    let (assignments, layouts) = move_sequence(tree, library, moves);

    let mut inc_millis = f64::INFINITY;
    let mut full_millis = f64::INFINITY;
    for _ in 0..reps {
        // Incremental: one persistent evaluator across the walk.
        let mut inc = HpwlEvaluator::new(bound);
        let mut inc_totals = Vec::with_capacity(assignments.len());
        let start = Instant::now();
        for (a, l) in assignments.iter().zip(&layouts) {
            inc_totals.push(inc.update(tree, l, a).expect("netlist binds the tree"));
        }
        inc_millis = inc_millis.min(start.elapsed().as_secs_f64() * 1e3);

        // Full: every step recomputes every net from scratch.
        let mut full = HpwlEvaluator::new(bound);
        let mut full_totals = Vec::with_capacity(assignments.len());
        let start = Instant::now();
        for (a, l) in assignments.iter().zip(&layouts) {
            full_totals.push(full.evaluate_full(tree, l, a).expect("netlist binds"));
        }
        full_millis = full_millis.min(start.elapsed().as_secs_f64() * 1e3);

        assert_eq!(
            inc_totals, full_totals,
            "incremental and full HPWL must agree at every step"
        );
    }

    let steps = assignments.len();
    HpwlResult {
        moves,
        full_millis,
        inc_millis,
        inc_evals_per_sec: if inc_millis > 0.0 {
            steps as f64 / (inc_millis / 1e3)
        } else {
            0.0
        },
        speedup: if inc_millis > 0.0 {
            full_millis / inc_millis
        } else {
            0.0
        },
    }
}

fn pareto_phase(
    tree: &FloorplanTree,
    library: &ModuleLibrary,
    bound: &BoundNetlist,
) -> ParetoResult {
    let pareto = Optimizer::new(tree, library)
        .run_pareto(bound)
        .expect("benchmark frontier enumerates");
    let ref_area = pareto.front.iter().map(|p| p.area).max().unwrap_or(0) * 11 / 10 + 1;
    let ref_hpwl = pareto.front.iter().map(|p| p.hpwl).max().unwrap_or(0) * 11 / 10 + 1;
    ParetoResult {
        front_size: pareto.front.len(),
        evaluated: pareto.evaluated,
        hypervolume: fp_optimizer::hypervolume(&pareto.front, ref_area, ref_hpwl),
    }
}

fn run_bench(name: &'static str, moves: usize, reps: usize) -> BenchResult {
    let bench = benchmark(name);
    let library = generators::module_library(&bench.tree, IMPLS, LIB_SEED);
    let netlist = random_netlist(&library, NETS, NET_SEED);
    let bound = netlist.bind(&library).expect("generated netlist binds");
    let hpwl = hpwl_phase(&bench.tree, &library, &bound, moves, reps);
    let pareto = pareto_phase(&bench.tree, &library, &bound);
    BenchResult {
        bench: name,
        modules: library.len(),
        nets: netlist.nets.len(),
        hpwl,
        pareto,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_netlist.json".to_owned();
    let mut smoke = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("netlist_bench: --out needs a value");
                    std::process::exit(2);
                }
            },
            "--smoke" => smoke = true,
            other => {
                eprintln!("netlist_bench: unknown option {other}");
                std::process::exit(2);
            }
        }
    }

    let (benches, moves, reps): (&[&'static str], usize, usize) = if smoke {
        (&["fp1", "fp2"], 300, 1)
    } else {
        (&["fp1", "fp2", "fp3", "fp4"], 2_000, REPS)
    };

    let mut results = Vec::new();
    for name in benches {
        eprintln!("netlist_bench: {name}: {NETS} nets, {moves} moves ...");
        results.push(run_bench(name, moves, reps));
    }

    let mut entries = Vec::new();
    for r in &results {
        entries.push(format!(
            "    {{\"bench\": \"{}\", \"modules\": {}, \"nets\": {},\n     \
             \"hpwl\": {{\"moves\": {}, \"full_millis\": {:.3}, \"incremental_millis\": {:.3}, \
             \"incremental_evals_per_sec\": {:.0}, \"speedup\": {:.2}}},\n     \
             \"pareto\": {{\"front_size\": {}, \"evaluated\": {}, \"hypervolume\": {:.6}}}}}",
            r.bench,
            r.modules,
            r.nets,
            r.hpwl.moves,
            r.hpwl.full_millis,
            r.hpwl.inc_millis,
            r.hpwl.inc_evals_per_sec,
            r.hpwl.speedup,
            r.pareto.front_size,
            r.pareto.evaluated,
            r.pareto.hypervolume,
        ));
        println!(
            "{:>4}: hpwl full {:>9.3} ms | incremental {:>8.3} ms ({:>9.0} evals/s, {:>5.1}x) | \
             pareto front {:>2} of {:>3} (hv {:.4})",
            r.bench,
            r.hpwl.full_millis,
            r.hpwl.inc_millis,
            r.hpwl.inc_evals_per_sec,
            r.hpwl.speedup,
            r.pareto.front_size,
            r.pareto.evaluated,
            r.pareto.hypervolume,
        );
    }

    let json = format!(
        "{{\n  \"benchmark\": \"netlist HPWL evaluator and Pareto frontier\",\n  \
         \"smoke\": {smoke},\n  \"reps\": {reps},\n  \"impls_per_module\": {IMPLS},\n  \
         \"nets\": {NETS},\n  \"net_seed\": {NET_SEED},\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("netlist_bench: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    // Regression gates (the per-step agreement assert already ran).
    let mut failed = false;
    for r in &results {
        if r.hpwl.speedup < MIN_SPEEDUP {
            eprintln!(
                "netlist_bench: FAIL: {} incremental speedup {:.2}x < {MIN_SPEEDUP}x",
                r.bench, r.hpwl.speedup
            );
            failed = true;
        }
    }
    let fronted = results
        .iter()
        .filter(|r| r.pareto.front_size >= MIN_FRONT)
        .count();
    if fronted < MIN_FRONTED {
        eprintln!(
            "netlist_bench: FAIL: only {fronted} benchmark(s) produced a \
             {MIN_FRONT}+-point Pareto front (need {MIN_FRONTED})"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
