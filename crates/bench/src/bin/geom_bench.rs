//! Layout post-processing benchmark: throughput of the scanline
//! polygonize / whitespace pass on a paper benchmark (FP4, optimized
//! placement) and a mega-scale instance (FP5-10k, first-fit placement),
//! emitted as machine-readable `BENCH_geom.json`.
//!
//! ```sh
//! cargo run --release -p fp-bench --bin geom_bench
//! cargo run --release -p fp-bench --bin geom_bench -- --out path.json
//! cargo run --release -p fp-bench --bin geom_bench -- --smoke
//! ```
//!
//! The timed phase is [`fp_tree::layout::Layout::polygonize`] alone —
//! the scanline union into dead-space regions plus the merged block
//! outlines — over an already-realized layout; how the layout was found
//! is reported but not timed. Timings are the best of [`REPS`]
//! repetitions (1 in `--smoke`), and every run re-checks the
//! conservation invariant: whitespace total == envelope area − Σ block
//! areas, exactly, in integer coordinates.
//!
//! `--smoke` runs the identical instance set and JSON schema with a
//! single repetition, for CI schema validation.

use std::time::Instant;

use fp_optimizer::{OptimizeConfig, Optimizer};
use fp_tree::layout::{realize, Assignment, Layout};
use fp_tree::{generators, mega};

/// Repetitions per instance; the minimum is kept.
const REPS: usize = 5;

struct Row {
    name: String,
    modules: usize,
    blocks: usize,
    placement: &'static str,
    envelope_area: u128,
    dead_space: u128,
    regions: usize,
    whitespace_total: u128,
    whitespace_largest: u128,
    outline_rings: usize,
    pass_millis: f64,
    blocks_per_sec: f64,
}

fn run_case(name: &str, placement: &'static str, layout: &Layout, reps: usize) -> Row {
    let mut pass_millis = f64::INFINITY;
    let mut poly = layout.polygonize();
    for _ in 0..reps {
        let start = Instant::now();
        poly = layout.polygonize();
        pass_millis = pass_millis.min(start.elapsed().as_secs_f64() * 1e3);
    }
    let ws = &poly.whitespace;
    assert_eq!(
        ws.total,
        layout.dead_space(),
        "{name}: whitespace must equal envelope minus blocks, exactly"
    );
    Row {
        name: name.to_owned(),
        modules: layout.placed.len(),
        blocks: layout.placed.len(),
        placement,
        envelope_area: layout.area(),
        dead_space: layout.dead_space(),
        regions: ws.count(),
        whitespace_total: ws.total,
        whitespace_largest: ws.largest(),
        outline_rings: poly.outlines.len(),
        pass_millis,
        blocks_per_sec: layout.placed.len() as f64 / (pass_millis / 1e3).max(1e-9),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_geom.json".to_owned();
    let mut smoke = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("geom_bench: --out needs a value");
                    std::process::exit(2);
                }
            },
            "--smoke" => smoke = true,
            other => {
                eprintln!("geom_bench: unknown option {other}");
                std::process::exit(2);
            }
        }
    }

    let cores = fp_bench::host::cores();
    let reps = if smoke { 1 } else { REPS };
    let mut rows = Vec::new();

    // FP4 under its optimal assignment: the dead-space distribution of
    // a placement the paper's optimizer actually picks.
    eprintln!("geom_bench: running FP4 (optimized placement) ...");
    let fp4 = generators::fp4();
    let lib4 = generators::module_library(&fp4.tree, 8, 7);
    let outcome = Optimizer::new(&fp4.tree, &lib4)
        .config(&OptimizeConfig::default())
        .run_best()
        .expect("FP4 solves");
    let layout4 = realize(&fp4.tree, &lib4, &outcome.assignment).expect("FP4 realizes");
    rows.push(run_case("FP4", "optimized", &layout4, reps));

    // FP5-10k under a first-fit assignment: the pass is the subject,
    // not the optimizer, so the mega instance skips the solve.
    eprintln!("geom_bench: running FP5-10k (first-fit placement) ...");
    let fp5 = mega::fp5();
    let cfg5 = mega::fp5_config();
    let lib5 = mega::mega_library(&fp5.tree, &cfg5);
    let layout5 = realize(
        &fp5.tree,
        &lib5,
        &Assignment::first_fit(fp5.tree.module_count()),
    )
    .expect("FP5-10k realizes");
    rows.push(run_case("FP5-10k", "first_fit", &layout5, reps));

    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"bench\": \"{}\", \"modules\": {}, \"blocks\": {}, \
                 \"placement\": \"{}\",\n     \"envelope_area\": {}, \"dead_space\": {}, \
                 \"whitespace_regions\": {}, \"whitespace_total\": {}, \
                 \"whitespace_largest\": {}, \"outline_rings\": {},\n     \
                 \"pass_millis\": {:.3}, \"blocks_per_sec\": {:.0}, \"conserved\": true}}",
                r.name,
                r.modules,
                r.blocks,
                r.placement,
                r.envelope_area,
                r.dead_space,
                r.regions,
                r.whitespace_total,
                r.whitespace_largest,
                r.outline_rings,
                r.pass_millis,
                r.blocks_per_sec,
            )
        })
        .collect();

    for r in &rows {
        println!(
            "{:>8}: {} blocks through the whitespace pass in {:>8.3} ms \
             ({:>12.0} blocks/s) | {} region(s), total {} ({:.1}% of envelope), largest {}",
            r.name,
            r.blocks,
            r.pass_millis,
            r.blocks_per_sec,
            r.regions,
            r.whitespace_total,
            100.0 * r.whitespace_total as f64 / r.envelope_area.max(1) as f64,
            r.whitespace_largest,
        );
    }

    let json = format!(
        "{{\n  \"benchmark\": \"layout polygonize / whitespace pass\",\n  \
         \"smoke\": {smoke},\n  \"reps\": {reps},\n  \"cores\": {cores},\n  \
         \"peak_rss_bytes\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        fp_bench::host::peak_rss_bytes(),
        entries.join(",\n")
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("geom_bench: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}
