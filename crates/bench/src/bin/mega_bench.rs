//! Mega-scale benchmark: the FP5+ instance family (10k–500k modules)
//! through the thread sweep, plus a same-process ablation against the
//! pre-SoA pruning kernels, emitted as machine-readable `BENCH_mega.json`.
//!
//! ```sh
//! cargo run --release -p fp-bench --bin mega_bench
//! cargo run --release -p fp-bench --bin mega_bench -- --out path.json
//! cargo run --release -p fp-bench --bin mega_bench -- --smoke
//! cargo run --release -p fp-bench --bin mega_bench -- --all
//! ```
//!
//! Per benchmark and thread count the bench times a **cold** run (no
//! block cache) and a **warm** run (pre-primed shared cache); every run's
//! frontier must be byte-identical to the single-threaded baseline, so
//! the sweep doubles as a determinism gate at real mega granularity
//! (the default split threshold, inline subtree tasks, batch stealing).
//!
//! Two headline gates, both machine-readable in the artifact:
//!
//! * **parallel** — cold speedup at 4 threads on the largest benchmark
//!   must reach [`SPEEDUP_GATE`]; enforced only on hosts with ≥ 4 cores
//!   (`gate_enforced` records the decision).
//! * **serial** — the 1-thread cold time must beat the pre-SoA pruning
//!   kernels ([`fp_shape::legacy`]) by [`SERIAL_GATE`] on the 10k-module
//!   benchmark; enforced on every host, since no parallelism is involved.
//!
//! The default matrix runs FP5-10k and FP6-50k. `--all` adds FP7-150k
//! and FP8-500k (long). `--smoke` runs a reduced matrix on a ~2.5k-module
//! instance — still above the auto-serial bound, so the granularity
//! machinery engages — with the identical JSON schema, for CI.

use std::time::Instant;

use fp_optimizer::{OptimizeConfig, Optimizer, SharedBlockCache};
use fp_tree::mega::{self, MegaConfig};
use fp_tree::{FloorplanTree, ModuleLibrary};

/// Repetitions per (bench, threads, phase) cell; the minimum is kept.
/// Mega instances are slow enough that two repetitions already give a
/// stable minimum.
const REPS: usize = 2;
/// Repetitions for the two measurements feeding the serial gate (the
/// legacy ablation and the 1-thread cold run): the gated ratio is a
/// quotient of two minima, so it gets a tighter estimate than the
/// sweep cells. Only applies to full runs (smoke stays at one rep).
const SERIAL_REPS: usize = 9;
/// Block-cache budget for the warm phase (holds the FP6-50k frontier).
const CACHE_BYTES: usize = 1 << 30;
/// Required cold-cache speedup at 4 threads on the largest benchmark,
/// enforced when the host has at least 4 cores.
const SPEEDUP_GATE: f64 = 2.0;
/// Required 1-thread cold speedup over the pre-SoA pruning kernels on
/// the 10k-module benchmark, enforced on every host.
const SERIAL_GATE: f64 = 1.5;

const SWEEP: [usize; 4] = [1, 2, 4, 8];
const SMOKE_SWEEP: [usize; 2] = [1, 2];

struct Cell {
    threads: usize,
    cold_millis: f64,
    warm_millis: f64,
    /// Process peak RSS after this cell (monotone high-water mark).
    peak_rss_bytes: u64,
}

struct BenchRow {
    name: String,
    modules: usize,
    nodes: usize,
    area: u128,
    /// Best 1-thread cold time with the pre-SoA pruning kernels.
    legacy_serial_millis: f64,
    /// Median of per-rep paired legacy/current time ratios. Each rep
    /// times both kernel paths back to back under the same host load,
    /// so transient contention inflates both sides of a pair alike and
    /// cancels in the ratio; the median then discards pairs where a
    /// burst straddled the boundary. Far more stable on shared hosts
    /// than a ratio of independent minima.
    serial_speedup: f64,
    cells: Vec<Cell>,
}

impl BenchRow {
    fn serial_cold(&self) -> f64 {
        self.cells.first().map_or(f64::INFINITY, |c| c.cold_millis)
    }

    fn serial_speedup_vs_legacy(&self) -> f64 {
        self.serial_speedup
    }
}

fn time_best<F: FnMut() -> f64>(reps: usize, mut run: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        best = best.min(run());
    }
    best
}

fn run_bench(
    name: &str,
    tree: &FloorplanTree,
    library: &ModuleLibrary,
    sweep: &[usize],
    reps: usize,
) -> BenchRow {
    // Single-threaded baseline pins the expected result.
    let baseline = Optimizer::new(tree, library)
        .config(&OptimizeConfig::default().with_threads(1))
        .run_frontier()
        .expect("baseline solves");
    let area = baseline.outcome(0).area;

    let serial_reps = if reps > 1 {
        SERIAL_REPS.max(reps)
    } else {
        reps
    };

    // Ablation: the same serial run under the pre-SoA pruning kernels.
    // Same instance, same process, results must be identical — only the
    // kernel implementations differ. Legacy and current reps are
    // interleaved so slow host-load drift hits both sides alike instead
    // of biasing whichever side runs later.
    let serial_config = OptimizeConfig::default().with_threads(1);
    let run_once = |legacy: bool| -> f64 {
        fp_shape::legacy::set_legacy_kernels(legacy);
        let start = Instant::now();
        let frontier = Optimizer::new(tree, library)
            .config(&serial_config)
            .run_frontier()
            .expect("serial run solves");
        let millis = start.elapsed().as_secs_f64() * 1e3;
        fp_shape::legacy::set_legacy_kernels(false);
        assert_eq!(
            frontier.envelopes(),
            baseline.envelopes(),
            "{name}: serial kernels (legacy={legacy}) changed the result"
        );
        millis
    };
    let mut legacy_serial_millis = f64::INFINITY;
    let mut serial_cold_millis = f64::INFINITY;
    let mut pair_ratios = Vec::with_capacity(serial_reps);
    for rep in 0..serial_reps {
        // Alternate which path runs first within each pair so allocator
        // and cache warm-up effects cancel across pairs too.
        let (legacy, current) = if rep % 2 == 0 {
            let l = run_once(true);
            (l, run_once(false))
        } else {
            let c = run_once(false);
            (run_once(true), c)
        };
        legacy_serial_millis = legacy_serial_millis.min(legacy);
        serial_cold_millis = serial_cold_millis.min(current);
        pair_ratios.push(legacy / current.max(1e-6));
    }
    pair_ratios.sort_by(f64::total_cmp);
    let serial_speedup = pair_ratios[pair_ratios.len() / 2];

    let mut cells = Vec::new();
    for &threads in sweep {
        let config = OptimizeConfig::default().with_threads(threads);

        // The 1-thread cold cell is the serial gate's numerator; it was
        // already measured above, interleaved with the legacy reps.
        let cold_millis = if threads == 1 {
            serial_cold_millis
        } else {
            time_best(reps, || {
                let start = Instant::now();
                let frontier = Optimizer::new(tree, library)
                    .config(&config)
                    .run_frontier()
                    .expect("cold run solves");
                let millis = start.elapsed().as_secs_f64() * 1e3;
                assert_eq!(
                    frontier.envelopes(),
                    baseline.envelopes(),
                    "{name} @{threads}: frontier diverged from the serial baseline"
                );
                millis
            })
        };

        // Prime a cache at this thread count, then time fully warm runs.
        let cache = SharedBlockCache::new(CACHE_BYTES);
        let primed = Optimizer::new(tree, library)
            .config(&config)
            .cache(&cache)
            .run_frontier()
            .expect("priming run solves");
        assert_eq!(primed.envelopes(), baseline.envelopes());
        let warm_millis = time_best(reps, || {
            let start = Instant::now();
            let frontier = Optimizer::new(tree, library)
                .config(&config)
                .cache(&cache)
                .run_frontier()
                .expect("warm run solves");
            let millis = start.elapsed().as_secs_f64() * 1e3;
            assert_eq!(frontier.stats().cache_misses, 0, "{name}: warm run missed");
            assert_eq!(frontier.envelopes(), baseline.envelopes());
            millis
        });

        cells.push(Cell {
            threads,
            cold_millis,
            warm_millis,
            peak_rss_bytes: fp_bench::host::peak_rss_bytes(),
        });
    }

    BenchRow {
        name: name.to_owned(),
        modules: library.len(),
        nodes: tree.len(),
        area,
        legacy_serial_millis,
        serial_speedup,
        cells,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_mega.json".to_owned();
    let mut smoke = false;
    let mut all = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("mega_bench: --out needs a value");
                    std::process::exit(2);
                }
            },
            "--smoke" => smoke = true,
            "--all" => all = true,
            other => {
                eprintln!("mega_bench: unknown option {other}");
                std::process::exit(2);
            }
        }
    }

    let cores = fp_bench::host::cores();
    let (sweep, reps): (&[usize], usize) = if smoke {
        (&SMOKE_SWEEP, 1)
    } else {
        (&SWEEP, REPS)
    };

    // The smoke instance sits just above the auto-serial bound
    // (2·2500−1 = 4999 binary nodes ≥ 256·16), so the parallel rows
    // exercise inline subtree tasks at the default split threshold.
    let cases: Vec<(String, MegaConfig)> = if smoke {
        let cfg = MegaConfig::new(2_500).with_seed(42);
        vec![(cfg.name(), cfg)]
    } else {
        mega::mega_family()
            .into_iter()
            .filter(|(name, _)| all || matches!(*name, "FP5-10k" | "FP6-50k"))
            .map(|(name, cfg)| (name.to_owned(), cfg))
            .collect()
    };

    let mut rows = Vec::new();
    for (name, cfg) in &cases {
        eprintln!(
            "mega_bench: running {name} ({} modules, sweep {sweep:?}) ...",
            cfg.modules
        );
        let bench = mega::mega_floorplan(cfg);
        let library = mega::mega_library(&bench.tree, cfg);
        rows.push(run_bench(name, &bench.tree, &library, sweep, reps));
    }

    let mut entries = Vec::new();
    for row in &rows {
        let base_cold = row.serial_cold();
        let base_warm = row.cells.first().map_or(0.0, |c| c.warm_millis);
        let cells: Vec<String> = row
            .cells
            .iter()
            .map(|c| {
                format!(
                    "      {{\"threads\": {}, \"cold_millis\": {:.3}, \"warm_millis\": {:.3}, \
                     \"cold_speedup\": {:.2}, \"warm_speedup\": {:.2}, \"peak_rss_bytes\": {}}}",
                    c.threads,
                    c.cold_millis,
                    c.warm_millis,
                    base_cold / c.cold_millis.max(1e-6),
                    base_warm / c.warm_millis.max(1e-6),
                    c.peak_rss_bytes,
                )
            })
            .collect();
        entries.push(format!(
            "    {{\"bench\": \"{}\", \"modules\": {}, \"nodes\": {}, \"area\": {},\n     \
             \"legacy_serial_millis\": {:.3}, \"serial_speedup_vs_legacy\": {:.2},\n     \
             \"cells\": [\n{}\n    ]}}",
            row.name,
            row.modules,
            row.nodes,
            row.area,
            row.legacy_serial_millis,
            row.serial_speedup_vs_legacy(),
            cells.join(",\n")
        ));
        println!(
            "{}: legacy-kernel serial {:.3} ms -> {:.3} ms ({:.2}x)",
            row.name,
            row.legacy_serial_millis,
            row.serial_cold(),
            row.serial_speedup_vs_legacy(),
        );
        for c in &row.cells {
            println!(
                "{} @{} threads: cold {:>10.3} ms ({:>5.2}x) | warm {:>9.3} ms ({:>5.2}x) | \
                 peak rss {} MiB",
                row.name,
                c.threads,
                c.cold_millis,
                base_cold / c.cold_millis.max(1e-6),
                c.warm_millis,
                base_warm / c.warm_millis.max(1e-6),
                c.peak_rss_bytes >> 20,
            );
        }
    }

    let gate_enforced = !smoke && cores >= 4;
    let json = format!(
        "{{\n  \"benchmark\": \"mega-scale instance family sweep\",\n  \
         \"smoke\": {smoke},\n  \"reps\": {reps},\n  \"cache_bytes\": {CACHE_BYTES},\n  \
         \"cores\": {cores},\n  \"speedup_gate\": {SPEEDUP_GATE},\n  \
         \"serial_gate\": {SERIAL_GATE},\n  \"gate_enforced\": {gate_enforced},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("mega_bench: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    if smoke {
        return;
    }

    // Serial gate: the SoA kernels must beat the legacy kernels at one
    // thread on the 10k benchmark. No parallelism involved, so this is
    // enforced regardless of the host's core count.
    if let Some(fp5) = rows.iter().find(|r| r.name == "FP5-10k") {
        let speedup = fp5.serial_speedup_vs_legacy();
        if speedup < SERIAL_GATE {
            eprintln!(
                "mega_bench: FAIL: serial speedup over legacy kernels on FP5-10k \
                 is {speedup:.2}x (< {SERIAL_GATE}x)"
            );
            std::process::exit(1);
        }
    }

    // Parallel gate: cold at 4 threads on the largest benchmark must
    // beat 1 thread by SPEEDUP_GATE when the host can run 4 workers.
    let largest = rows.last().expect("cases are non-empty");
    let base = largest.cells.first().map_or(0.0, |c| c.cold_millis);
    let at4 = largest
        .cells
        .iter()
        .find(|c| c.threads == 4)
        .map_or(f64::INFINITY, |c| c.cold_millis);
    let speedup = base / at4.max(1e-6);
    if gate_enforced {
        if speedup < SPEEDUP_GATE {
            eprintln!(
                "mega_bench: FAIL: cold speedup on {} at 4 threads is {speedup:.2}x \
                 (< {SPEEDUP_GATE}x, {cores} cores)",
                largest.name
            );
            std::process::exit(1);
        }
    } else {
        eprintln!(
            "mega_bench: WARNING: gate_enforced:false — the >= {SPEEDUP_GATE}x @ 4T speedup \
             gate was NOT enforced ({cores} core(s), smoke={smoke}); measured {speedup:.2}x \
             on {} is informational only",
            largest.name
        );
    }
}
