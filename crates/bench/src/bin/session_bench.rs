//! Session subsystem benchmark: cold vs warm vs incremental
//! re-optimization over the paper's FP1–FP4 floorplans, emitted as
//! machine-readable `BENCH_session.json`.
//!
//! ```sh
//! cargo run --release -p fp-bench --bin session_bench
//! cargo run --release -p fp-bench --bin session_bench -- --out path.json
//! ```
//!
//! Three timed phases per benchmark, all through one [`fp_session::Session`]:
//!
//! * **cold** — first optimization, every join built from scratch
//!   (fresh session per repetition);
//! * **warm** — identical re-optimization, every join reconstituted
//!   from the content-addressed block cache;
//! * **incremental** — re-optimization after `update_module` on one
//!   leaf, rebuilding only the leaf's root-path joins.
//!
//! Timings are the best of [`REPS`] repetitions (monotonic clock); hit
//! rates are exact counter readings, so the JSON doubles as a
//! regression gate: `warm_speedup` must stay ≥ 5 on the largest
//! benchmark and `incremental` misses must stay `O(depth)`.

use std::time::Instant;

use fp_geom::Rect;
use fp_optimizer::OptimizeConfig;
use fp_session::Session;
use fp_tree::generators::{self, module_library};
use fp_tree::{FloorplanTree, Module, ModuleLibrary};

/// Repetitions per phase; the minimum is reported.
const REPS: usize = 3;
/// Block-cache budget per benchmark (comfortably holds FP4).
const CACHE_BYTES: usize = 256 << 20;

struct PhaseResult {
    millis: f64,
    hits: usize,
    misses: usize,
    area: u128,
}

struct BenchResult {
    name: String,
    n: usize,
    modules: usize,
    cold: PhaseResult,
    warm: PhaseResult,
    incremental: PhaseResult,
}

fn time_optimize(session: &mut Session) -> PhaseResult {
    let start = Instant::now();
    let report = session.optimize().expect("benchmark instance solves");
    let millis = start.elapsed().as_secs_f64() * 1e3;
    PhaseResult {
        millis,
        hits: report.outcome.stats.cache_hits,
        misses: report.outcome.stats.cache_misses,
        area: report.outcome.area,
    }
}

fn min_phase(a: PhaseResult, b: PhaseResult) -> PhaseResult {
    assert_eq!(a.area, b.area, "repetitions must agree");
    assert_eq!((a.hits, a.misses), (b.hits, b.misses));
    if b.millis < a.millis {
        b
    } else {
        a
    }
}

/// The edited stand-in for module 0: a fresh three-point shape list.
fn edited_module(library: &ModuleLibrary) -> Module {
    let name = library.get(0).expect("module 0").name().to_owned();
    Module::new(
        name,
        vec![Rect::new(3, 9), Rect::new(5, 6), Rect::new(9, 3)],
    )
}

fn run_bench(name: &str, tree: &FloorplanTree, n: usize, config: &OptimizeConfig) -> BenchResult {
    let library = module_library(tree, n, 7);

    // Cold: a fresh session (empty cache) per repetition.
    let mut cold: Option<PhaseResult> = None;
    for _ in 0..REPS {
        let mut session = Session::open(tree.clone(), library.clone(), config.clone(), CACHE_BYTES);
        let phase = time_optimize(&mut session);
        cold = Some(match cold {
            None => phase,
            Some(best) => min_phase(best, phase),
        });
    }
    let cold = cold.expect("at least one repetition");

    // Warm + incremental share one primed session.
    let mut session = Session::open(tree.clone(), library.clone(), config.clone(), CACHE_BYTES);
    let primed = time_optimize(&mut session);
    assert_eq!(primed.area, cold.area, "priming run agrees with cold runs");
    let mut warm: Option<PhaseResult> = None;
    for _ in 0..REPS {
        let phase = time_optimize(&mut session);
        assert_eq!(phase.misses, 0, "warm repeats must be all hits");
        warm = Some(match warm {
            None => phase,
            Some(best) => min_phase(best, phase),
        });
    }
    let warm = warm.expect("at least one repetition");

    // Incremental: a fresh primed session per repetition (a second run
    // after the edit would find *both* library states warm in cache and
    // measure nothing), then edit module 0 and time the re-optimization
    // that rebuilds only its root-path joins.
    let mut incremental: Option<PhaseResult> = None;
    for _ in 0..REPS {
        let mut session = Session::open(tree.clone(), library.clone(), config.clone(), CACHE_BYTES);
        let primed = time_optimize(&mut session);
        assert_eq!(primed.area, cold.area);
        session
            .update_module(0, edited_module(&library))
            .expect("module 0 exists");
        let phase = time_optimize(&mut session);
        incremental = Some(match incremental {
            None => phase,
            Some(best) => min_phase(best, phase),
        });
    }
    let incremental = incremental.expect("at least one repetition");

    BenchResult {
        name: name.to_owned(),
        n,
        modules: library.len(),
        cold,
        warm,
        incremental,
    }
}

fn hit_rate(p: &PhaseResult) -> f64 {
    let total = p.hits + p.misses;
    if total == 0 {
        0.0
    } else {
        p.hits as f64 / total as f64
    }
}

fn phase_json(label: &str, p: &PhaseResult) -> String {
    format!(
        "\"{label}\": {{\"millis\": {:.3}, \"cache_hits\": {}, \"cache_misses\": {}, \
         \"hit_rate\": {:.4}, \"area\": {}}}",
        p.millis,
        p.hits,
        p.misses,
        hit_rate(p),
        p.area
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_session.json".to_owned();
    let mut threads: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("session_bench: --out needs a value");
                    std::process::exit(2);
                }
            },
            "--threads" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) => threads = Some(n),
                _ => {
                    eprintln!("session_bench: --threads needs a numeric value");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("session_bench: unknown option {other}");
                std::process::exit(2);
            }
        }
    }

    // The paper's four floorplans, sized so FP4 (the largest) is a
    // multi-hundred-millisecond cold run under the default policies.
    let mut config = OptimizeConfig::default();
    if let Some(n) = threads {
        config = config.with_threads(n);
    }
    let resolved_threads = config.resolved_threads();
    let cases = [
        ("FP1", generators::fp1(), 8usize),
        ("FP2", generators::fp2(), 8),
        ("FP3", generators::fp3(), 8),
        ("FP4", generators::fp4(), 8),
    ];

    let mut results = Vec::new();
    for (name, bench, n) in &cases {
        eprintln!("session_bench: running {name} (n = {n}) ...");
        results.push(run_bench(name, &bench.tree, *n, &config));
    }

    let mut entries = Vec::new();
    for r in &results {
        assert_eq!(r.cold.area, r.warm.area, "{}: warm run must agree", r.name);
        let speedup = r.cold.millis / r.warm.millis.max(1e-6);
        let incr_speedup = r.cold.millis / r.incremental.millis.max(1e-6);
        entries.push(format!(
            "    {{\"bench\": \"{}\", \"n\": {}, \"modules\": {},\n     {},\n     {},\n     {},\n     \
             \"warm_speedup\": {:.2}, \"incremental_speedup\": {:.2}}}",
            r.name,
            r.n,
            r.modules,
            phase_json("cold", &r.cold),
            phase_json("warm", &r.warm),
            phase_json("incremental", &r.incremental),
            speedup,
            incr_speedup,
        ));
        println!(
            "{:>4}: cold {:>9.3} ms | warm {:>8.3} ms ({:>6.1}x, hit rate {:.0}%) | \
             incremental {:>8.3} ms ({} of {} joins rebuilt)",
            r.name,
            r.cold.millis,
            r.warm.millis,
            speedup,
            100.0 * hit_rate(&r.warm),
            r.incremental.millis,
            r.incremental.misses,
            r.incremental.hits + r.incremental.misses,
        );
    }

    let json = format!(
        "{{\n  \"benchmark\": \"session-subsystem cold/warm/incremental\",\n  \
         \"reps\": {REPS},\n  \"cache_bytes\": {CACHE_BYTES},\n  \"threads\": {resolved_threads},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("session_bench: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    // The headline guarantee: on the largest floorplan a fully warm
    // re-optimization is at least 5x faster than a cold one.
    let largest = results.last().expect("cases are non-empty");
    let speedup = largest.cold.millis / largest.warm.millis.max(1e-6);
    if speedup < 5.0 {
        eprintln!(
            "session_bench: FAIL: warm speedup on {} is {speedup:.2}x (< 5x)",
            largest.name
        );
        std::process::exit(1);
    }
}
