//! Serving-throughput benchmark: a mixed optimize/update/pareto/anneal
//! workload replayed through the `fpserved` protocol layer on the
//! shared executor, emitted as machine-readable `BENCH_serve.json`.
//!
//! ```sh
//! cargo run --release -p fp-bench --bin serve_bench
//! cargo run --release -p fp-bench --bin serve_bench -- --smoke
//! cargo run --release -p fp-bench --bin serve_bench -- --tcp 127.0.0.1:7878
//! ```
//!
//! **In-process mode** (default) builds the same stack the `fpserved`
//! binary runs — one `ServeState`, one executor, the real annealing
//! backend — and drives it closed-loop: `2 × threads` client threads,
//! each submitting its next request as a `JobClass::Serve` job and
//! waiting for the reply. Per thread count in the sweep it reports
//! throughput (requests/s) and the p50/p99/p999/max reply latency, and
//! cross-checks that every thread count serves byte-identical areas.
//!
//! **TCP mode** (`--tcp <addr>`) replays the same workload closed-loop
//! over real sockets against an already-running `fpserved`; the
//! server's thread count is outside this process, so the sweep is a
//! single row and the speedup gate is recorded as not enforced.
//!
//! The headline gate — throughput at 4 executor threads must be ≥
//! [`THROUGHPUT_GATE`]× the 1-thread figure — is enforced only on ≥
//! 4-core hosts and outside `--smoke`; the artifact records the
//! decision machine-readably as `"gate_enforced"`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use fp_optimizer::cache::SharedBlockCache;
use fp_optimizer::serve::{execute, parse_request, ServeState};
use fp_optimizer::{Executor, JobClass};

/// Executor thread counts swept in-process.
const SWEEP: [usize; 3] = [1, 2, 4];
const SMOKE_SWEEP: [usize; 2] = [1, 2];
/// Requests per sweep cell (smoke: [`SMOKE_REQUESTS`]).
const REQUESTS: usize = 400;
const SMOKE_REQUESTS: usize = 40;
/// Shared block-cache budget: the workload repeats instances, so the
/// steady state is cache-warm like a real server's.
const CACHE_BYTES: usize = 128 << 20;
/// Required throughput ratio, 4 executor threads over 1.
const THROUGHPUT_GATE: f64 = 1.8;

/// The mixed workload, deterministic in `total`: per 10 requests,
/// 5 optimizes cycling 3 warm instances, 2 "updates" (same benchmark,
/// shifted seed — an edited-design re-optimization), 1 pareto,
/// 1 anneal, 1 ping. Category per line is returned alongside it.
fn workload(total: usize) -> Vec<(&'static str, String)> {
    let mut lines = Vec::with_capacity(total);
    for i in 0..total {
        let line = match i % 10 {
            0 | 2 | 4 | 6 | 8 => {
                let seed = 1 + (i / 2) % 3;
                (
                    "optimize",
                    format!(
                        r#"{{"id": {i}, "method": "optimize", "builtin": "fp1", "n": 5, "seed": {seed}}}"#
                    ),
                )
            }
            1 | 5 => {
                let seed = 100 + i % 7;
                (
                    "update",
                    format!(
                        r#"{{"id": {i}, "method": "optimize", "builtin": "fp2", "n": 5, "seed": {seed}}}"#
                    ),
                )
            }
            3 => (
                "pareto",
                format!(
                    r#"{{"id": {i}, "method": "pareto", "builtin": "fp1", "n": 4, "nets": 8, "net_seed": {}}}"#,
                    1 + i % 3
                ),
            ),
            7 => (
                "anneal",
                format!(
                    r#"{{"id": {i}, "method": "anneal", "builtin": "fp1", "chains": 2, "moves": 30, "anneal_seed": {}}}"#,
                    1 + i % 2
                ),
            ),
            _ => ("ping", format!(r#"{{"id": {i}, "method": "ping"}}"#)),
        };
        lines.push(line);
    }
    lines
}

struct CellResult {
    threads: usize,
    clients: usize,
    elapsed_secs: f64,
    latencies_us: Vec<u64>,
    /// id -> area, for the cross-thread-count determinism check.
    areas: Vec<(u64, String)>,
    errors: usize,
    shed: usize,
}

impl CellResult {
    fn throughput_rps(&self) -> f64 {
        self.latencies_us.len() as f64 / self.elapsed_secs.max(1e-9)
    }

    fn quantile_ms(&self, q: f64) -> f64 {
        if self.latencies_us.is_empty() {
            return 0.0;
        }
        let rank = ((self.latencies_us.len() as f64 * q).ceil() as usize)
            .clamp(1, self.latencies_us.len());
        self.latencies_us[rank - 1] as f64 / 1e3
    }

    fn max_ms(&self) -> f64 {
        self.latencies_us.last().copied().unwrap_or(0) as f64 / 1e3
    }
}

fn field<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    json.split(&format!("\"{key}\":"))
        .nth(1)
        .and_then(|s| s.split([',', '}']).next())
}

/// Per-run accumulator: (latencies µs, `(id, area)` pairs, errors, shed).
type LoopTally = (Vec<u64>, Vec<(u64, String)>, usize, usize);

/// Drives one closed-loop replay: `clients` worker threads pull the
/// next request off a shared cursor, call `serve` (which blocks until
/// the reply), and record the latency.
fn drive_closed_loop(
    lines: &[(&'static str, String)],
    clients: usize,
    serve: impl Fn(usize, &str) -> String + Sync,
) -> (f64, Vec<u64>, Vec<(u64, String)>, usize, usize) {
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<LoopTally> = Mutex::new((Vec::new(), Vec::new(), 0, 0));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..clients {
            let cursor = &cursor;
            let collected = &collected;
            let serve = &serve;
            scope.spawn(move || {
                let mut latencies = Vec::new();
                let mut areas = Vec::new();
                let mut errors = 0usize;
                let mut shed = 0usize;
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= lines.len() {
                        break;
                    }
                    let (_, line) = &lines[index];
                    let sent = Instant::now();
                    let reply = serve(client, line);
                    latencies.push(sent.elapsed().as_micros() as u64);
                    let status: u64 = field(&reply, "status")
                        .and_then(|s| s.trim().parse().ok())
                        .unwrap_or(1);
                    match status {
                        0 => {
                            if let (Some(id), Some(area)) =
                                (field(&reply, "id"), field(&reply, "area"))
                            {
                                if let Ok(id) = id.trim().parse() {
                                    areas.push((id, area.trim().to_owned()));
                                }
                            }
                        }
                        7 => shed += 1,
                        _ => errors += 1,
                    }
                }
                let mut all = collected.lock().expect("collector");
                all.0.append(&mut latencies);
                all.1.append(&mut areas);
                all.2 += errors;
                all.3 += shed;
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    let (mut latencies, mut areas, errors, shed) =
        collected.into_inner().expect("collector settles");
    latencies.sort_unstable();
    areas.sort();
    (elapsed, latencies, areas, errors, shed)
}

/// One in-process sweep cell: fresh state, fresh cache, fresh executor
/// at `threads`; the workload replayed closed-loop by `2 × threads`
/// clients submitting `JobClass::Serve` jobs.
fn run_in_process(lines: &[(&'static str, String)], threads: usize) -> CellResult {
    let exec = Executor::new(threads);
    let state = Arc::new(
        ServeState::with_cache(SharedBlockCache::new(CACHE_BYTES))
            .with_executor(Arc::clone(&exec))
            .with_anneal_backend(fp_anneal::serve_backend()),
    );
    let clients = (threads * 2).clamp(2, 8);
    let (elapsed_secs, latencies_us, areas, errors, shed) =
        drive_closed_loop(lines, clients, |_client, line| {
            let state = Arc::clone(&state);
            let line = line.to_owned();
            exec.submit(JobClass::Serve, move || {
                let request = parse_request(&line).expect("workload lines are well-formed");
                execute(&request, 1, &state, None).json
            })
            .join()
        });
    exec.shutdown();
    CellResult {
        threads,
        clients,
        elapsed_secs,
        latencies_us,
        areas,
        errors,
        shed,
    }
}

/// TCP replay against an external `fpserved`: each client owns one
/// connection and runs the same closed loop over it.
fn run_tcp(lines: &[(&'static str, String)], addr: &str, clients: usize) -> CellResult {
    let streams: Vec<Mutex<(TcpStream, BufReader<TcpStream>)>> = (0..clients)
        .map(|_| {
            let stream = TcpStream::connect(addr)
                .unwrap_or_else(|e| panic!("serve_bench: cannot connect {addr}: {e}"));
            let reader = BufReader::new(stream.try_clone().expect("clone"));
            Mutex::new((stream, reader))
        })
        .collect();
    let (elapsed_secs, latencies_us, areas, errors, shed) =
        drive_closed_loop(lines, clients, |client, line| {
            let mut conn = streams[client].lock().expect("connection");
            conn.0
                .write_all(line.as_bytes())
                .and_then(|()| conn.0.write_all(b"\n"))
                .expect("request written");
            let mut reply = String::new();
            conn.1.read_line(&mut reply).expect("reply line");
            reply
        });
    CellResult {
        threads: 0,
        clients,
        elapsed_secs,
        latencies_us,
        areas,
        errors,
        shed,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_serve.json".to_owned();
    let mut smoke = false;
    let mut tcp: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("serve_bench: --out needs a value");
                    std::process::exit(2);
                }
            },
            "--tcp" => match it.next() {
                Some(a) => tcp = Some(a.clone()),
                None => {
                    eprintln!("serve_bench: --tcp needs an address");
                    std::process::exit(2);
                }
            },
            "--smoke" => smoke = true,
            other => {
                eprintln!("serve_bench: unknown option {other}");
                std::process::exit(2);
            }
        }
    }

    let cores = fp_bench::host::cores();
    let total = if smoke { SMOKE_REQUESTS } else { REQUESTS };
    let lines = workload(total);
    let mix = ["optimize", "update", "pareto", "anneal", "ping"]
        .map(|kind| (kind, lines.iter().filter(|(k, _)| *k == kind).count()));

    let mode = if tcp.is_some() { "tcp" } else { "in-process" };
    let cells: Vec<CellResult> = match &tcp {
        Some(addr) => {
            eprintln!("serve_bench: replaying {total} requests against {addr} ...");
            vec![run_tcp(&lines, addr, 4)]
        }
        None => {
            let sweep: &[usize] = if smoke { &SMOKE_SWEEP } else { &SWEEP };
            sweep
                .iter()
                .map(|&threads| {
                    eprintln!(
                        "serve_bench: replaying {total} requests at {threads} executor thread(s) ..."
                    );
                    run_in_process(&lines, threads)
                })
                .collect()
        }
    };

    // Determinism cross-check (in-process): every thread count must
    // answer every successful request with the same area.
    if tcp.is_none() {
        for cell in &cells[1..] {
            assert_eq!(
                cell.areas, cells[0].areas,
                "areas diverged between {} and {} executor threads",
                cells[0].threads, cell.threads
            );
        }
    }

    let entries: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"threads\": {}, \"clients\": {}, \"requests\": {}, \
                 \"throughput_rps\": {:.2}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
                 \"p999_ms\": {:.3}, \"max_ms\": {:.3}, \"errors\": {}, \"shed\": {}, \
                 \"peak_rss_bytes\": {}}}",
                c.threads,
                c.clients,
                c.latencies_us.len(),
                c.throughput_rps(),
                c.quantile_ms(0.50),
                c.quantile_ms(0.99),
                c.quantile_ms(0.999),
                c.max_ms(),
                c.errors,
                c.shed,
                fp_bench::host::peak_rss_bytes(),
            )
        })
        .collect();
    for c in &cells {
        println!(
            "{:>10} threads={} clients={}: {:>8.1} req/s | p50 {:>7.3} ms | p99 {:>8.3} ms | p999 {:>8.3} ms",
            mode,
            c.threads,
            c.clients,
            c.throughput_rps(),
            c.quantile_ms(0.50),
            c.quantile_ms(0.99),
            c.quantile_ms(0.999),
        );
    }

    let base = cells.first().map_or(0.0, CellResult::throughput_rps);
    let at4 = cells
        .iter()
        .find(|c| c.threads == 4)
        .map(CellResult::throughput_rps);
    let speedup = at4.map(|t| t / base.max(1e-9));
    let gate_enforced = !smoke && tcp.is_none() && cores >= 4;
    let mix_json: Vec<String> = mix
        .iter()
        .map(|(kind, count)| format!("\"{kind}\": {count}"))
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"fpserved executor serving throughput\",\n  \
         \"mode\": \"{mode}\",\n  \"smoke\": {smoke},\n  \"cores\": {cores},\n  \
         \"requests\": {total},\n  \"cache_bytes\": {CACHE_BYTES},\n  \
         \"workload\": {{{}}},\n  \"throughput_gate\": {THROUGHPUT_GATE},\n  \
         \"gate_enforced\": {gate_enforced},\n  \"speedup_at_4\": {},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        mix_json.join(", "),
        speedup.map_or("null".to_owned(), |s| format!("{s:.2}")),
        entries.join(",\n")
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("serve_bench: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    match speedup {
        Some(speedup) if gate_enforced => {
            if speedup < THROUGHPUT_GATE {
                eprintln!(
                    "serve_bench: FAIL: throughput at 4 threads is {speedup:.2}x the 1-thread \
                     figure (< {THROUGHPUT_GATE}x, {cores} cores)"
                );
                std::process::exit(1);
            }
            eprintln!("serve_bench: gate passed: {speedup:.2}x at 4 threads");
        }
        Some(speedup) => eprintln!(
            "serve_bench: WARNING: gate_enforced:false — the >= {THROUGHPUT_GATE}x @ 4T \
             throughput gate was NOT enforced ({cores} core(s), smoke={smoke}); measured \
             {speedup:.2}x at 4 threads is informational only"
        ),
        None => eprintln!(
            "serve_bench: WARNING: gate_enforced:false — the >= {THROUGHPUT_GATE}x @ 4T \
             throughput gate was NOT enforced (no 4-thread cell in this mode)"
        ),
    }
}
