//! Regenerates the paper's evaluation tables (and the worked figures).
//!
//! ```sh
//! cargo run --release -p fp-bench --bin tables              # everything
//! cargo run --release -p fp-bench --bin tables -- table1    # one table
//! cargo run --release -p fp-bench --bin tables -- ablations
//! ```
//!
//! Output mirrors the paper's layout: one row per (case, K) combination
//! with `N`, `M`, CPU seconds, and the area-degradation percentage.
//! Failed runs print `M > peak` and `-`, exactly like the paper's Tables
//! 3–4. See `EXPERIMENTS.md` for the recorded outputs and the comparison
//! against the paper's numbers.

use fp_bench::{
    ablation, fmt_cpu, fmt_m, fmt_pct, fmt_sel_share, paper_cases, table4, table_r, LCase,
    RTableRow, Table4Row, PAPER_MEMORY_CAP,
};
use fp_tree::generators;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    let args: Vec<String> = args.into_iter().filter(|a| a != "--csv").collect();
    let all = args.is_empty();
    let want = |name: &str| all || args.iter().any(|a| a == name);
    CSV_MODE.store(csv, std::sync::atomic::Ordering::Relaxed);

    if want("fig4") {
        figure4();
    }
    if want("fig8") {
        figure8();
    }
    if want("table1") {
        table_r_report("Table 1", &generators::fp1(), 16, 24);
    }
    if want("table2") {
        table_r_report("Table 2", &generators::fp2(), 12, 20);
    }
    if want("table3") {
        table_r_report("Table 3", &generators::fp3(), 16, 28);
    }
    if want("table4") {
        table4_report();
    }
    if want("census") {
        census();
    }
    if want("figures") {
        figures();
    }
    if want("ablations") {
        ablations();
    }
}

/// The §5 observation behind `L_Selection`: "the number of implementations
/// of an L-shaped block in general is much larger than that of a
/// rectangular block". Measured per benchmark.
fn census() {
    use fp_bench::optimize_best;
    use fp_optimizer::OptimizeConfig;
    use fp_tree::generators::module_library;
    println!("== Census: largest block implementation counts (plain runs) ==");
    println!(
        "{:>6} {:>4} {:>12} {:>12} {:>8}",
        "bench", "N", "max R-block", "max L-block", "ratio"
    );
    for (bench, n) in [
        (generators::fp1(), 12usize),
        (generators::fp2(), 10),
        (generators::fp3(), 8),
    ] {
        let lib = module_library(&bench.tree, n, 7);
        let out = optimize_best(&bench.tree, &lib, &OptimizeConfig::default())
            .expect("plain run fits the default budget at these sizes");
        let ratio = out.stats.max_l_block as f64 / out.stats.max_r_block.max(1) as f64;
        println!(
            "{:>6} {:>4} {:>12} {:>12} {:>8.1}",
            bench.name, n, out.stats.max_r_block, out.stats.max_l_block, ratio
        );
    }
    println!();
}

/// When set (`--csv`), the table reports print CSV instead of the
/// paper-formatted columns.
static CSV_MODE: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

fn csv_mode() -> bool {
    CSV_MODE.load(std::sync::atomic::Ordering::Relaxed)
}

/// Figure 4: the worked CSPP example.
fn figure4() {
    use fp_cspp::{constrained_shortest_path, shortest_path, Dag};
    println!("== Figure 4: constrained shortest path example ==");
    let mut g: Dag<u64> = Dag::new(6);
    for (u, v, w) in [
        (0, 1, 1),
        (1, 2, 2),
        (2, 3, 2),
        (3, 4, 2),
        (4, 5, 1),
        (0, 2, 6),
        (1, 3, 6),
        (3, 5, 4),
        (1, 4, 13),
    ] {
        g.add_edge(u, v, w).expect("valid edge");
    }
    let free = shortest_path(&g, 0, 5).expect("path exists");
    println!(
        "  unconstrained: weight {} via {}",
        free.weight,
        fmt_path(&free.vertices)
    );
    for k in 2..=6 {
        match constrained_shortest_path(&g, 0, 5, k) {
            Ok(sol) => println!(
                "  k = {k}: weight {:2} via {}",
                sol.weight,
                fmt_path(&sol.vertices)
            ),
            Err(_) => println!("  k = {k}: no such path"),
        }
    }
    println!();
}

fn fmt_path(vertices: &[usize]) -> String {
    vertices
        .iter()
        .map(|v| format!("v{}", v + 1))
        .collect::<Vec<_>>()
        .join(" -> ")
}

/// Figure 8: the benchmark floorplans.
fn figure8() {
    println!("== Figure 8: test floorplans ==");
    println!(
        "{:>6} {:>9} {:>7} {:>9} {:>9}",
        "bench", "modules", "depth", "wheels", "L-blocks"
    );
    for bench in generators::paper_benchmarks() {
        let wheels = (0..bench.tree.len())
            .filter(|&i| {
                matches!(
                    bench.tree.node(i).expect("node").kind,
                    fp_tree::NodeKind::Wheel(_)
                )
            })
            .count();
        let bin = fp_tree::restructure::restructure(&bench.tree).expect("valid");
        println!(
            "{:>6} {:>9} {:>7} {:>9} {:>9}",
            bench.name,
            bench.tree.module_count(),
            bench.tree.depth(),
            wheels,
            bin.lshape_count()
        );
    }
    println!();
}

/// Tables 1–3: \[9\] vs \[9\] + R_Selection.
fn table_r_report(title: &str, bench: &generators::Benchmark, n_small: usize, n_large: usize) {
    println!(
        "== {title}: {} ({} modules), cap {} implementations ==",
        bench.name,
        bench.tree.module_count(),
        PAPER_MEMORY_CAP
    );
    println!(
        "{:>4} {:>4} | {:>9} {:>8} | {:>4} {:>9} {:>8} {:>10} {:>7}",
        "case", "N", "M", "CPU(s)", "K1", "M", "CPU(s)", "(A_R-A)/A", "sel%"
    );
    let cases = paper_cases(n_small, n_large);
    let rows = table_r(bench, &cases, PAPER_MEMORY_CAP);
    if csv_mode() {
        print!("{}", fp_bench::to_csv_r(&rows));
        println!();
        return;
    }
    let mut last_case = 0;
    for row in &rows {
        let RTableRow {
            case_no,
            n,
            plain,
            k1,
            reduced,
        } = row;
        let (plain_m, plain_cpu) = if *case_no != last_case {
            last_case = *case_no;
            (fmt_m(plain), fmt_cpu(plain))
        } else {
            (String::new(), String::new())
        };
        println!(
            "{:>4} {:>4} | {:>9} {:>8} | {:>4} {:>9} {:>8} {:>10} {:>7}",
            case_no,
            n,
            plain_m,
            plain_cpu,
            k1,
            fmt_m(reduced),
            fmt_cpu(reduced),
            fmt_pct(row.area_excess_pct()),
            fmt_sel_share(reduced),
        );
    }
    let rungs: usize = rows
        .iter()
        .map(|r| r.plain.degradations() + r.reduced.degradations())
        .sum();
    if rungs > 0 {
        println!("  * auto-rescued: budget tripped, completed under degraded policies ({rungs} degradation rungs total)");
    }
    println!();
}

/// Table 4: FP4 with R_Selection alone vs R + L_Selection.
fn table4_report() {
    let bench = generators::fp4();
    println!(
        "== Table 4: {} ({} modules), cap {} implementations ==",
        bench.name,
        bench.tree.module_count(),
        PAPER_MEMORY_CAP
    );
    println!(
        "{:>4} {:>4} {:>4} | {:>9} {:>8} | {:>5} {:>9} {:>8} {:>14} {:>7}",
        "case", "N", "K1", "M(R)", "CPU(s)", "K2", "M(R+L)", "CPU(s)", "(A_RL-A_R)/A_R", "sel%"
    );
    let cases = [
        LCase {
            case_no: 1,
            n: 16,
            seed: 201,
            k1: 32,
            k2s: [1000, 1500, 2000],
        },
        LCase {
            case_no: 2,
            n: 16,
            seed: 202,
            k1: 32,
            k2s: [1000, 1500, 2000],
        },
        LCase {
            case_no: 3,
            n: 40,
            seed: 203,
            k1: 80,
            k2s: [1000, 1500, 2000],
        },
        LCase {
            case_no: 4,
            n: 40,
            seed: 204,
            k1: 80,
            k2s: [1000, 1500, 2000],
        },
    ];
    let rows = table4(&bench, &cases, PAPER_MEMORY_CAP, 10_000);
    if csv_mode() {
        print!("{}", fp_bench::to_csv_4(&rows));
        println!();
        return;
    }
    let mut last_case = 0;
    for row in &rows {
        let Table4Row {
            case_no,
            n,
            k1,
            r_only,
            k2,
            r_and_l,
        } = row;
        let (rm, rcpu) = if *case_no != last_case {
            last_case = *case_no;
            (fmt_m(r_only), fmt_cpu(r_only))
        } else {
            (String::new(), String::new())
        };
        println!(
            "{:>4} {:>4} {:>4} | {:>9} {:>8} | {:>5} {:>9} {:>8} {:>14} {:>7}",
            case_no,
            n,
            k1,
            rm,
            rcpu,
            k2,
            fmt_m(r_and_l),
            fmt_cpu(r_and_l),
            fmt_pct(row.area_excess_pct()),
            fmt_sel_share(r_and_l),
        );
    }
    let rungs: usize = rows
        .iter()
        .map(|r| r.r_only.degradations() + r.r_and_l.degradations())
        .sum();
    if rungs > 0 {
        println!("  * auto-rescued: budget tripped, completed under degraded policies ({rungs} degradation rungs total)");
    }
    println!();
}

/// Writes the harness's figure SVGs to `target/figures/`.
fn figures() {
    use fp_bench::chart::{Chart, Scale, Series};
    use fp_bench::optimize_best;
    use fp_optimizer::OptimizeConfig;
    use fp_select::curve::r_selection_curve;
    use fp_tree::generators::module_library;

    let dir = std::path::Path::new("target/figures");
    std::fs::create_dir_all(dir).expect("create target/figures");
    let mut written = Vec::new();

    // Figure A: the error-vs-k trade-off curve of R_Selection vs greedy.
    let list = ablation::synthetic_rlist(60);
    let optimal: Vec<(f64, f64)> = r_selection_curve(&list)
        .into_iter()
        .filter(|p| p.error > 0)
        .map(|p| (p.k as f64, p.error as f64))
        .collect();
    let greedy: Vec<(f64, f64)> = (2..60)
        .map(|k| {
            let g = fp_select::greedy::greedy_r_selection(&list, k);
            (k as f64, g.error as f64)
        })
        .filter(|&(_, e)| e > 0.0)
        .collect();
    let chart = Chart {
        title: "R_Selection error vs subset size (n = 60)".into(),
        x_label: "k (implementations kept)".into(),
        y_label: "ERROR(R, R') [log]".into(),
        y_scale: Scale::Log10,
        series: vec![
            Series::new("optimal (CSPP)", optimal),
            Series::new("greedy", greedy),
        ],
    };
    let path = dir.join("fig_error_vs_k.svg");
    std::fs::write(&path, chart.to_svg()).expect("write figure");
    written.push(path);

    // Figure B: memory (M) and area excess vs K1 on FP1.
    let bench = generators::fp1();
    let lib = module_library(&bench.tree, 16, 101);
    let plain = optimize_best(&bench.tree, &lib, &OptimizeConfig::default()).expect("fits");
    let mut mem = Vec::new();
    let mut excess = Vec::new();
    for k1 in [8usize, 12, 16, 24, 32, 48] {
        let cfg = OptimizeConfig::default().with_r_selection(k1);
        let out = optimize_best(&bench.tree, &lib, &cfg).expect("fits");
        mem.push((k1 as f64, out.stats.peak_impls as f64));
        excess.push((
            k1 as f64,
            100.0 * (out.area as f64 - plain.area as f64) / plain.area as f64,
        ));
    }
    let chart = Chart {
        title: format!(
            "FP1 N=16: memory vs K1 (plain M = {})",
            plain.stats.peak_impls
        ),
        x_label: "K1".into(),
        y_label: "peak implementations (M)".into(),
        y_scale: Scale::Linear,
        series: vec![Series::new("[9] + R_Selection", mem)],
    };
    let path = dir.join("fig_memory_vs_k1.svg");
    std::fs::write(&path, chart.to_svg()).expect("write figure");
    written.push(path);

    let chart = Chart {
        title: "FP1 N=16: area excess vs K1".into(),
        x_label: "K1".into(),
        y_label: "(A_R - A_OPT)/A_OPT [%]".into(),
        y_scale: Scale::Linear,
        series: vec![Series::new("[9] + R_Selection", excess)],
    };
    let path = dir.join("fig_area_vs_k1.svg");
    std::fs::write(&path, chart.to_svg()).expect("write figure");
    written.push(path);

    println!("== Figures ==");
    for p in written {
        println!("  wrote {}", p.display());
    }
    println!();
}

/// The DESIGN.md §6 quality ablations.
fn ablations() {
    println!("== Ablation 1: optimal (CSPP) vs greedy selection error ==");
    let rlist = ablation::synthetic_rlist(60);
    println!(
        "  R-lists (n = 60): {:>4} {:>12} {:>12} {:>8}",
        "k", "optimal", "greedy", "ratio"
    );
    for (k, opt, greedy) in ablation::greedy_vs_cspp_r(&rlist, &[4, 8, 16, 32]) {
        let ratio = if opt == 0 {
            1.0
        } else {
            greedy as f64 / opt as f64
        };
        println!("  {:>18} {:>12} {:>12} {:>8.3}", k, opt, greedy, ratio);
    }
    let llist = ablation::synthetic_llist(60);
    println!(
        "  L-lists (n = 60): {:>4} {:>10} {:>13} {:>10}",
        "k", "optimal", "prefilter+opt", "greedy"
    );
    for (k, opt, pre, greedy) in ablation::greedy_vs_cspp_l(&llist, &[4, 8, 16, 32], 40) {
        println!("  {:>18} {:>10} {:>13} {:>10}", k, opt, pre, greedy);
    }

    println!("\n== Ablation 2: theta trigger (FP1, N = 8, K2 = 120) ==");
    println!(
        "  {:>6} {:>10} {:>8} {:>11}",
        "theta", "area", "peak", "reductions"
    );
    for (theta, area, peak, reds) in ablation::theta_sweep(8, 7, 120, &[0.1, 0.25, 0.5, 0.75, 1.0])
    {
        println!("  {:>6.2} {:>10} {:>8} {:>11}", theta, area, peak, reds);
    }

    println!("\n== Ablation 3: heuristic prefilter S (FP1, N = 10, K2 = 150) ==");
    println!(
        "  {:>8} {:>10} {:>8} {:>10}",
        "S", "area", "peak", "cpu(ms)"
    );
    for (s, area, peak, ms) in
        ablation::prefilter_sweep(10, 7, 150, &[None, Some(5000), Some(1000), Some(400)])
    {
        let s_str = s.map_or("off".to_owned(), |v| v.to_string());
        println!("  {:>8} {:>10} {:>8} {:>10.2}", s_str, area, peak, ms);
    }

    println!("\n== Ablation 4: L_p metric (FP1, N = 8, K2 = 120) ==");
    println!("  {:>6} {:>10} {:>8}", "metric", "area", "peak");
    for (metric, area, peak) in ablation::metric_sweep(8, 7, 120) {
        println!("  {:>6} {:>10} {:>8}", metric.to_string(), area, peak);
    }
    println!();
}
