//! Persistent memo-store benchmark: append/flush throughput, recovery
//! (replay) latency, and warm-hit serving over the crash-safe segment
//! log, emitted as machine-readable `BENCH_persist.json`.
//!
//! ```sh
//! cargo run --release -p fp-bench --bin persist_bench
//! cargo run --release -p fp-bench --bin persist_bench -- --smoke
//! cargo run --release -p fp-bench --bin persist_bench -- --out path.json
//! ```
//!
//! Three timed phases per matrix point, all through one
//! [`fp_memo::PersistentCache`] over a scratch store directory:
//!
//! * **append** — insert every record into a fresh store and `flush()`,
//!   so the timing covers encode, the write-behind flusher, and fsync;
//! * **replay** — reopen the store cold and replay the segment log back
//!   into memory (the warm-restart path);
//! * **warm** — look up every key from the replayed cache.
//!
//! Timings are the best of [`REPS`] repetitions (monotonic clock). The
//! JSON doubles as a regression gate: replay must recover *every*
//! appended record and the warm phase must serve 100% hits — a miss
//! means the verified-prefix recovery dropped data on a clean store.
//!
//! `--smoke` runs a reduced matrix (2k records, 1 rep) so CI can gate
//! on the schema and the recovery invariants without paying for the
//! full sweep.

use std::path::PathBuf;
use std::time::Instant;

use fp_memo::{Codec, PersistOptions, PersistentCache, Weigh};

/// Repetitions per phase; the minimum is reported.
const REPS: usize = 3;
/// Salt for the benchmark store; the payloads are synthetic, so any
/// fixed value works — it only has to survive the reopen.
const SALT: u128 = 0x6670_2d70_6572_7369_7374_2d62_656e_6368; // "fp-persist-bench"
/// In-memory budget: large enough that no matrix point evicts, so the
/// replay phase measures the log, not the eviction policy.
const CACHE_BYTES: usize = 256 << 20;

/// A synthetic cached value: an opaque payload whose bytes are a
/// deterministic function of the record index, so decode failures and
/// cross-record mixups are both detectable.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Blob(Vec<u8>);

impl Blob {
    fn synthesize(index: u64, len: usize) -> Blob {
        let mut state = index.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut bytes = Vec::with_capacity(len);
        while bytes.len() < len {
            // splitmix64: cheap, deterministic, full-period.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let chunk = z.to_le_bytes();
            let take = chunk.len().min(len - bytes.len());
            bytes.extend_from_slice(&chunk[..take]);
        }
        Blob(bytes)
    }
}

impl Weigh for Blob {
    fn weight_bytes(&self) -> usize {
        self.0.len()
    }
}

impl Codec for Blob {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0);
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        Some(Blob(bytes.to_vec()))
    }
}

/// Key for record `i`: spread across shards, never zero.
fn key(index: u64) -> u128 {
    (u128::from(index) << 64) | u128::from(index.wrapping_mul(0x2545_f491_4f6c_dd1d)) | 1
}

struct PhaseResult {
    millis: f64,
    records: usize,
}

struct BenchResult {
    records: usize,
    payload_bytes: usize,
    store_bytes: u64,
    append: PhaseResult,
    replay: PhaseResult,
    warm: PhaseResult,
}

fn min_phase(a: PhaseResult, b: PhaseResult) -> PhaseResult {
    assert_eq!(a.records, b.records, "repetitions must agree");
    if b.millis < a.millis {
        b
    } else {
        a
    }
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fp-persist-bench-{}-{tag}", std::process::id()))
}

fn store_bytes(dir: &PathBuf) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    entries
        .flatten()
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum()
}

fn run_bench(records: usize, payload_bytes: usize, reps: usize) -> BenchResult {
    let tag = format!("{records}x{payload_bytes}");

    // Append: fresh store per repetition; the timing covers insert,
    // the write-behind flusher draining, and the final fsync.
    let mut append: Option<PhaseResult> = None;
    for rep in 0..reps {
        let dir = scratch(&format!("{tag}-append-{rep}"));
        let _ = std::fs::remove_dir_all(&dir);
        let cache: PersistentCache<Blob> =
            PersistentCache::open(&dir, CACHE_BYTES, SALT, PersistOptions::default())
                .expect("store opens");
        let start = Instant::now();
        for i in 0..records as u64 {
            cache.insert(key(i), Blob::synthesize(i, payload_bytes));
        }
        cache.flush().expect("flush");
        let phase = PhaseResult {
            millis: start.elapsed().as_secs_f64() * 1e3,
            records,
        };
        let stats = cache.persist_stats().expect("persistent store has stats");
        assert_eq!(
            stats.appended_records as usize, records,
            "every insert reaches the log"
        );
        assert!(!stats.wedged, "benchmark store must not wedge");
        append = Some(match append {
            None => phase,
            Some(best) => min_phase(best, phase),
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    let append = append.expect("at least one repetition");

    // One durable store for the replay/warm phases.
    let dir = scratch(&format!("{tag}-replay"));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let cache: PersistentCache<Blob> =
            PersistentCache::open(&dir, CACHE_BYTES, SALT, PersistOptions::default())
                .expect("store opens");
        for i in 0..records as u64 {
            cache.insert(key(i), Blob::synthesize(i, payload_bytes));
        }
        cache.flush().expect("flush");
    }
    let on_disk = store_bytes(&dir);

    // Replay: reopen cold; recovery must replay every record.
    let mut replay: Option<PhaseResult> = None;
    let mut warm: Option<PhaseResult> = None;
    for _ in 0..reps {
        let start = Instant::now();
        let cache: PersistentCache<Blob> =
            PersistentCache::open(&dir, CACHE_BYTES, SALT, PersistOptions::default())
                .expect("store reopens");
        let replay_phase = PhaseResult {
            millis: start.elapsed().as_secs_f64() * 1e3,
            records: cache.recovery().recovered_entries,
        };
        assert_eq!(
            replay_phase.records, records,
            "a clean store replays every record"
        );
        replay = Some(match replay {
            None => replay_phase,
            Some(best) => min_phase(best, replay_phase),
        });

        // Warm: every key must hit, and decode back to its payload.
        let start = Instant::now();
        let mut hits = 0usize;
        for i in 0..records as u64 {
            let value = cache.get(&key(i)).expect("replayed key hits");
            assert_eq!(
                value,
                Blob::synthesize(i, payload_bytes),
                "record {i} replays byte-identically"
            );
            hits += 1;
        }
        let warm_phase = PhaseResult {
            millis: start.elapsed().as_secs_f64() * 1e3,
            records: hits,
        };
        warm = Some(match warm {
            None => warm_phase,
            Some(best) => min_phase(best, warm_phase),
        });
    }
    let _ = std::fs::remove_dir_all(&dir);

    BenchResult {
        records,
        payload_bytes,
        store_bytes: on_disk,
        append,
        replay: replay.expect("at least one repetition"),
        warm: warm.expect("at least one repetition"),
    }
}

fn throughput(p: &PhaseResult) -> f64 {
    if p.millis <= 0.0 {
        0.0
    } else {
        p.records as f64 / (p.millis / 1e3)
    }
}

fn phase_json(label: &str, p: &PhaseResult) -> String {
    format!(
        "\"{label}\": {{\"millis\": {:.3}, \"records\": {}, \"records_per_sec\": {:.0}}}",
        p.millis,
        p.records,
        throughput(p)
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_persist.json".to_owned();
    let mut smoke = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("persist_bench: --out needs a value");
                    std::process::exit(2);
                }
            },
            "--smoke" => smoke = true,
            other => {
                eprintln!("persist_bench: unknown option {other}");
                std::process::exit(2);
            }
        }
    }

    // Matrix: record count × payload size. The payloads bracket the
    // sizes real CachedBlock records encode to (tens of bytes for
    // small curves, ~1 KiB for deep joins).
    let (cases, reps): (&[(usize, usize)], usize) = if smoke {
        (&[(2_000, 64), (2_000, 1_024)], 1)
    } else {
        (&[(50_000, 64), (50_000, 256), (20_000, 1_024)], REPS)
    };

    let mut results = Vec::new();
    for (records, payload) in cases {
        eprintln!("persist_bench: {records} records x {payload} B payload ...");
        results.push(run_bench(*records, *payload, reps));
    }

    let mut entries = Vec::new();
    for r in &results {
        let mb = r.store_bytes as f64 / (1 << 20) as f64;
        entries.push(format!(
            "    {{\"records\": {}, \"payload_bytes\": {}, \"store_bytes\": {},\n     {},\n     {},\n     {}}}",
            r.records,
            r.payload_bytes,
            r.store_bytes,
            phase_json("append", &r.append),
            phase_json("replay", &r.replay),
            phase_json("warm", &r.warm),
        ));
        println!(
            "{:>6} x {:>5} B ({mb:>7.2} MiB): append {:>9.3} ms ({:>9.0} rec/s) | \
             replay {:>8.3} ms ({:>9.0} rec/s) | warm {:>8.3} ms ({:>9.0} rec/s)",
            r.records,
            r.payload_bytes,
            r.append.millis,
            throughput(&r.append),
            r.replay.millis,
            throughput(&r.replay),
            r.warm.millis,
            throughput(&r.warm),
        );
    }

    let json = format!(
        "{{\n  \"benchmark\": \"persistent memo store append/replay/warm\",\n  \
         \"smoke\": {smoke},\n  \"reps\": {reps},\n  \"cache_bytes\": {CACHE_BYTES},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("persist_bench: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    // The headline guarantee: recovery replays the whole store. The
    // per-case asserts already enforce it; fail loudly if a future
    // refactor turns them into warnings.
    for r in &results {
        if r.replay.records != r.records || r.warm.records != r.records {
            eprintln!(
                "persist_bench: FAIL: {} of {} records survived replay",
                r.replay.records.min(r.warm.records),
                r.records
            );
            std::process::exit(1);
        }
    }
}
