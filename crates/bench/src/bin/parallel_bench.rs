//! Tree-parallel scheduler benchmark: FP1–FP4 wall-clock at 1/2/4/8
//! worker threads, cold cache and warm cache, emitted as
//! machine-readable `BENCH_parallel.json`.
//!
//! ```sh
//! cargo run --release -p fp-bench --bin parallel_bench
//! cargo run --release -p fp-bench --bin parallel_bench -- --out path.json
//! cargo run --release -p fp-bench --bin parallel_bench -- --smoke
//! ```
//!
//! Per benchmark and thread count, two timed phases:
//!
//! * **cold** — no block cache: every join is built by the scheduler;
//! * **warm** — a pre-primed shared cache: every join reconstitutes.
//!
//! Timings are the best of [`REPS`] repetitions. Every run's area and
//! frontier must agree with the single-threaded baseline — the bench
//! doubles as a determinism gate. The headline speedup gate (cold FP4
//! at 4 threads ≥ [`SPEEDUP_GATE`]× over 1 thread) is enforced only
//! when the host actually has ≥ 4 cores: thread counts above
//! `available_parallelism` cannot speed anything up, and skipping the
//! gate there keeps the bench honest instead of flaky.
//!
//! `--smoke` runs a reduced matrix (FP1–FP2, threads 1/2, 1 rep) with
//! the identical JSON schema, for CI schema validation.

use std::time::Instant;

use fp_optimizer::{OptimizeConfig, Optimizer, SharedBlockCache};
use fp_tree::generators;
use fp_tree::{FloorplanTree, ModuleLibrary};

/// Repetitions per (bench, threads, phase) cell; the minimum is kept.
const REPS: usize = 3;
/// Block-cache budget for the warm phase (comfortably holds FP4).
const CACHE_BYTES: usize = 256 << 20;
/// Required cold-cache speedup at 4 threads on the largest benchmark,
/// enforced when the host has at least 4 cores.
const SPEEDUP_GATE: f64 = 2.0;

const SWEEP: [usize; 4] = [1, 2, 4, 8];
const SMOKE_SWEEP: [usize; 2] = [1, 2];

struct Cell {
    threads: usize,
    cold_millis: f64,
    warm_millis: f64,
    /// Process peak RSS after this cell (monotone high-water mark; see
    /// [`fp_bench::host::peak_rss_bytes`]).
    peak_rss_bytes: u64,
}

struct BenchRow {
    name: String,
    modules: usize,
    nodes: usize,
    area: u128,
    cells: Vec<Cell>,
}

fn time_best<F: FnMut() -> f64>(reps: usize, mut run: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        best = best.min(run());
    }
    best
}

fn run_bench(
    name: &str,
    tree: &FloorplanTree,
    library: &ModuleLibrary,
    sweep: &[usize],
    reps: usize,
) -> BenchRow {
    // Single-threaded baseline pins the expected result.
    let baseline = Optimizer::new(tree, library)
        .config(&OptimizeConfig::default().with_threads(1))
        .run_frontier()
        .expect("baseline solves");
    let area = baseline.outcome(0).area;

    let mut cells = Vec::new();
    for &threads in sweep {
        let config = OptimizeConfig::default().with_threads(threads);

        let cold_millis = time_best(reps, || {
            let start = Instant::now();
            let frontier = Optimizer::new(tree, library)
                .config(&config)
                .run_frontier()
                .expect("cold run solves");
            let millis = start.elapsed().as_secs_f64() * 1e3;
            assert_eq!(
                frontier.envelopes(),
                baseline.envelopes(),
                "{name} @{threads}: frontier diverged from the serial baseline"
            );
            millis
        });

        // Prime a cache at this thread count, then time fully warm runs.
        let cache = SharedBlockCache::new(CACHE_BYTES);
        let primed = Optimizer::new(tree, library)
            .config(&config)
            .cache(&cache)
            .run_frontier()
            .expect("priming run solves");
        assert_eq!(primed.envelopes(), baseline.envelopes());
        let warm_millis = time_best(reps, || {
            let start = Instant::now();
            let frontier = Optimizer::new(tree, library)
                .config(&config)
                .cache(&cache)
                .run_frontier()
                .expect("warm run solves");
            let millis = start.elapsed().as_secs_f64() * 1e3;
            assert_eq!(frontier.stats().cache_misses, 0, "{name}: warm run missed");
            assert_eq!(frontier.envelopes(), baseline.envelopes());
            millis
        });

        cells.push(Cell {
            threads,
            cold_millis,
            warm_millis,
            peak_rss_bytes: fp_bench::host::peak_rss_bytes(),
        });
    }

    BenchRow {
        name: name.to_owned(),
        modules: library.len(),
        nodes: tree.len(),
        area,
        cells,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_parallel.json".to_owned();
    let mut smoke = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("parallel_bench: --out needs a value");
                    std::process::exit(2);
                }
            },
            "--smoke" => smoke = true,
            other => {
                eprintln!("parallel_bench: unknown option {other}");
                std::process::exit(2);
            }
        }
    }

    let cores = fp_bench::host::cores();
    let (sweep, reps, n): (&[usize], usize, usize) = if smoke {
        (&SMOKE_SWEEP, 1, 4)
    } else {
        (&SWEEP, REPS, 8)
    };

    let mut cases = vec![("FP1", generators::fp1()), ("FP2", generators::fp2())];
    if !smoke {
        cases.push(("FP3", generators::fp3()));
        cases.push(("FP4", generators::fp4()));
    }

    let mut rows = Vec::new();
    for (name, bench) in &cases {
        eprintln!("parallel_bench: running {name} (n = {n}, sweep {sweep:?}) ...");
        let library = generators::module_library(&bench.tree, n, 7);
        rows.push(run_bench(name, &bench.tree, &library, sweep, reps));
    }

    let mut entries = Vec::new();
    for row in &rows {
        let base_cold = row.cells.first().map_or(0.0, |c| c.cold_millis);
        let base_warm = row.cells.first().map_or(0.0, |c| c.warm_millis);
        let cells: Vec<String> = row
            .cells
            .iter()
            .map(|c| {
                format!(
                    "      {{\"threads\": {}, \"cold_millis\": {:.3}, \"warm_millis\": {:.3}, \
                     \"cold_speedup\": {:.2}, \"warm_speedup\": {:.2}, \"peak_rss_bytes\": {}}}",
                    c.threads,
                    c.cold_millis,
                    c.warm_millis,
                    base_cold / c.cold_millis.max(1e-6),
                    base_warm / c.warm_millis.max(1e-6),
                    c.peak_rss_bytes,
                )
            })
            .collect();
        entries.push(format!(
            "    {{\"bench\": \"{}\", \"modules\": {}, \"nodes\": {}, \"area\": {},\n     \
             \"cells\": [\n{}\n    ]}}",
            row.name,
            row.modules,
            row.nodes,
            row.area,
            cells.join(",\n")
        ));
        for c in &row.cells {
            println!(
                "{:>4} @{} threads: cold {:>9.3} ms ({:>5.2}x) | warm {:>8.3} ms ({:>5.2}x)",
                row.name,
                c.threads,
                c.cold_millis,
                base_cold / c.cold_millis.max(1e-6),
                c.warm_millis,
                base_warm / c.warm_millis.max(1e-6),
            );
        }
    }

    // The headline gate only means something when the host can actually
    // run 4 workers; the artifact says so machine-readably.
    let gate_enforced = !smoke && cores >= 4;
    let json = format!(
        "{{\n  \"benchmark\": \"tree-parallel scheduler cold/warm sweep\",\n  \
         \"smoke\": {smoke},\n  \"reps\": {reps},\n  \"cache_bytes\": {CACHE_BYTES},\n  \
         \"cores\": {cores},\n  \"speedup_gate\": {SPEEDUP_GATE},\n  \
         \"gate_enforced\": {gate_enforced},\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("parallel_bench: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    // Headline gate: cold FP4 at 4 threads must beat 1 thread by
    // SPEEDUP_GATE when the host can actually run 4 workers.
    if smoke {
        return;
    }
    let largest = rows.last().expect("cases are non-empty");
    let base = largest.cells.first().map_or(0.0, |c| c.cold_millis);
    let at4 = largest
        .cells
        .iter()
        .find(|c| c.threads == 4)
        .map_or(f64::INFINITY, |c| c.cold_millis);
    let speedup = base / at4.max(1e-6);
    if gate_enforced {
        if speedup < SPEEDUP_GATE {
            eprintln!(
                "parallel_bench: FAIL: cold speedup on {} at 4 threads is {speedup:.2}x \
                 (< {SPEEDUP_GATE}x, {cores} cores)",
                largest.name
            );
            std::process::exit(1);
        }
    } else {
        eprintln!(
            "parallel_bench: WARNING: gate_enforced:false — the >= {SPEEDUP_GATE}x @ 4T speedup \
             gate was NOT enforced ({cores} core(s), smoke={smoke}); measured {speedup:.2}x \
             on {} is informational only",
            largest.name
        );
    }
}
