//! Host facts the benchmark binaries embed in their JSON artifacts so a
//! reader can judge whether a speedup gate was meaningful on the machine
//! that produced the numbers.

/// Logical core count of the host (1 when it cannot be determined).
#[must_use]
pub fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Peak resident set size of this process in bytes, from the `VmHWM`
/// line of `/proc/self/status`. Returns 0 on platforms without that
/// interface — consumers treat 0 as "unknown", never as "no memory".
///
/// The kernel reports a process-wide high-water mark, so per-cell
/// readings taken over a run are monotone: each cell's value is the
/// peak *up to and including* that cell, not the cell's own footprint.
#[must_use]
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cores_is_positive() {
        assert!(cores() >= 1);
    }

    #[test]
    fn peak_rss_is_monotone() {
        let before = peak_rss_bytes();
        // Touch a few megabytes so the high-water mark moves (or at
        // least cannot shrink).
        let buf = vec![1u8; 4 << 20];
        let after = peak_rss_bytes();
        assert!(after >= before, "high-water mark never decreases");
        drop(buf);
        #[cfg(target_os = "linux")]
        assert!(before > 0, "Linux exposes VmHWM");
    }
}
