//! Benchmark harness regenerating the evaluation of Wang–Wong DAC'92.
//!
//! The paper's evaluation (its §5) consists of Tables 1–4 over the test
//! floorplans FP1–FP4 of Figure 8. This crate provides:
//!
//! * the experiment protocols ([`table_r`], [`table4`]) that produce rows
//!   in the paper's format — `N`, `K₁`/`K₂`, `M` (peak implementations
//!   stored), CPU seconds, and area-degradation percentages;
//! * quality ablations ([`ablation`]) for the design decisions called out
//!   in `DESIGN.md`;
//! * the `tables` binary (`cargo run -p fp-bench --release --bin tables`)
//!   that prints every table, and Criterion benches for the runtime
//!   components.
//!
//! The 1991 SPARCstation's physical memory is emulated by the
//! implementation budget [`PAPER_MEMORY_CAP`] (the paper's failed runs
//! report `M > 8·10⁵`, so the cap is 800 000 implementations). Absolute
//! numbers differ from the paper's hardware; the reproduction targets the
//! *shape*: R_Selection cutting `M` and CPU severalfold at sub-percent
//! area loss, plain \[9\] dying on FP3/FP4, and `L_Selection` rescuing FP4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod chart;
pub mod host;

use std::time::Duration;

use fp_geom::Area;
use fp_optimizer::{OptError, OptimizeConfig, Optimizer, Outcome};
use fp_select::LReductionPolicy;
use fp_tree::generators::{module_library, Benchmark};
use fp_tree::{FloorplanTree, ModuleLibrary};

/// Facade shorthand shared by the bench suites: optimize `tree` over
/// `library` under `config` and return the best outcome.
///
/// # Errors
///
/// Any [`OptError`] the engine reports.
pub fn optimize_best(
    tree: &FloorplanTree,
    library: &ModuleLibrary,
    config: &OptimizeConfig,
) -> Result<Outcome, OptError> {
    Optimizer::new(tree, library).config(config).run_best()
}

/// The emulated machine memory: the paper's failed runs report
/// `M > 8·10⁵` implementations.
pub const PAPER_MEMORY_CAP: usize = 800_000;

/// The result of one optimization run in a table protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunResult {
    /// The run completed.
    Done {
        /// Peak implementations stored (`M`).
        m: usize,
        /// CPU time.
        cpu: Duration,
        /// Time spent inside the R/L selection kernels (a subset of `cpu`).
        sel: Duration,
        /// Final floorplan area.
        area: Area,
    },
    /// The run exhausted the memory budget (the paper's `-` rows, with
    /// `M` reported as `> peak`).
    OutOfMemory {
        /// Peak implementations at failure.
        peak: usize,
        /// CPU time until failure.
        cpu: Duration,
    },
    /// The run tripped the budget but the rescue ladder completed it
    /// under automatically degraded policies — the tables report this
    /// usable (near-optimal) value instead of a bare `-` row.
    Rescued {
        /// Peak implementations stored (`M`).
        m: usize,
        /// CPU time including the rescue retries.
        cpu: Duration,
        /// Time spent inside the R/L selection kernels (a subset of `cpu`).
        sel: Duration,
        /// Final floorplan area under the degraded policies.
        area: Area,
        /// How many degradation rungs the ladder descended.
        degradations: usize,
    },
}

impl RunResult {
    /// The completed area, if the run finished.
    #[must_use]
    pub fn area(&self) -> Option<Area> {
        match self {
            RunResult::Done { area, .. } | RunResult::Rescued { area, .. } => Some(*area),
            RunResult::OutOfMemory { .. } => None,
        }
    }

    /// The peak storage (`M`), whether or not the run finished.
    #[must_use]
    pub fn peak(&self) -> usize {
        match self {
            RunResult::Done { m, .. } | RunResult::Rescued { m, .. } => *m,
            RunResult::OutOfMemory { peak, .. } => *peak,
        }
    }

    /// CPU time spent.
    #[must_use]
    pub fn cpu(&self) -> Duration {
        match self {
            RunResult::Done { cpu, .. }
            | RunResult::OutOfMemory { cpu, .. }
            | RunResult::Rescued { cpu, .. } => *cpu,
        }
    }

    /// Degradation rungs applied (0 unless the run was rescued).
    #[must_use]
    pub fn degradations(&self) -> usize {
        match self {
            RunResult::Rescued { degradations, .. } => *degradations,
            _ => 0,
        }
    }

    /// Time spent in the R/L selection kernels (zero for failed runs,
    /// which don't carry stats).
    #[must_use]
    pub fn selection(&self) -> Duration {
        match self {
            RunResult::Done { sel, .. } | RunResult::Rescued { sel, .. } => *sel,
            RunResult::OutOfMemory { .. } => Duration::ZERO,
        }
    }

    /// The selection kernels' share of total CPU, in percent (`None`
    /// when the run failed or took no measurable time).
    #[must_use]
    pub fn selection_share_pct(&self) -> Option<f64> {
        let cpu = self.cpu().as_secs_f64();
        match self {
            RunResult::OutOfMemory { .. } => None,
            _ if cpu <= 0.0 => None,
            _ => Some(100.0 * self.selection().as_secs_f64() / cpu),
        }
    }
}

/// Runs one configuration, translating `OutOfMemory` into a row value.
///
/// # Panics
///
/// Panics on structural errors (invalid tree/library) — benchmark inputs
/// are generated and must be valid.
#[must_use]
pub fn run_case(bench: &Benchmark, n: usize, seed: u64, config: &OptimizeConfig) -> RunResult {
    let library = module_library(&bench.tree, n, seed);
    match optimize_best(&bench.tree, &library, config) {
        Ok(Outcome { area, stats, .. }) => RunResult::Done {
            m: stats.peak_impls,
            cpu: stats.elapsed,
            sel: stats.selection_time,
            area,
        },
        Err(OptError::OutOfMemory { peak, .. }) => {
            // The failure elapsed time is not in the error; re-measure
            // cheaply as zero rather than lying. Callers print `-`.
            RunResult::OutOfMemory {
                peak,
                cpu: Duration::ZERO,
            }
        }
        Err(e) => panic!("benchmark input must be valid: {e}"),
    }
}

/// Like [`run_case`], but with the engine's rescue ladder enabled: a
/// budget trip degrades the selection policies and retries instead of
/// failing, yielding a [`RunResult::Rescued`] row.
///
/// # Panics
///
/// Panics on structural errors (invalid tree/library), like [`run_case`].
#[must_use]
pub fn run_case_rescued(
    bench: &Benchmark,
    n: usize,
    seed: u64,
    config: &OptimizeConfig,
) -> RunResult {
    let library = module_library(&bench.tree, n, seed);
    let cfg = config.clone().with_auto_rescue(true);
    match Optimizer::new(&bench.tree, &library).config(&cfg).run() {
        Ok(report) => {
            let degradations = report.degradations().len();
            let Outcome { area, stats, .. } = report.outcome;
            if degradations == 0 {
                RunResult::Done {
                    m: stats.peak_impls,
                    cpu: stats.elapsed,
                    sel: stats.selection_time,
                    area,
                }
            } else {
                RunResult::Rescued {
                    m: stats.peak_impls,
                    cpu: stats.elapsed,
                    sel: stats.selection_time,
                    area,
                    degradations,
                }
            }
        }
        Err(OptError::OutOfMemory { peak, .. }) => RunResult::OutOfMemory {
            peak,
            cpu: Duration::ZERO,
        },
        Err(e) => panic!("benchmark input must be valid: {e}"),
    }
}

/// [`run_case`], falling back to [`run_case_rescued`] when the plain run
/// dies on the budget — the table protocols use this so failed cells
/// carry a degradation report instead of a bare `-`.
#[must_use]
pub fn run_case_or_rescue(
    bench: &Benchmark,
    n: usize,
    seed: u64,
    config: &OptimizeConfig,
) -> RunResult {
    match run_case(bench, n, seed, config) {
        RunResult::OutOfMemory { .. } => run_case_rescued(bench, n, seed, config),
        done => done,
    }
}

/// One row of a Table 1–3 protocol: a test case at a given `K₁`.
#[derive(Debug, Clone)]
pub struct RTableRow {
    /// Test case number (1-based, as in the paper).
    pub case_no: usize,
    /// Implementations per module (`N`).
    pub n: usize,
    /// The plain \[9\] run of this case.
    pub plain: RunResult,
    /// The `K₁` of this row.
    pub k1: usize,
    /// The \[9\] + `R_Selection` run.
    pub reduced: RunResult,
}

impl RTableRow {
    /// `(A_R − A_OPT) / A_OPT` in percent, when both runs finished.
    #[must_use]
    pub fn area_excess_pct(&self) -> Option<f64> {
        let a_opt = self.plain.area()?;
        let a_r = self.reduced.area()?;
        Some(100.0 * (a_r as f64 - a_opt as f64) / a_opt as f64)
    }
}

/// A test case of the paper's protocol: 4 cases per floorplan, two `N`
/// levels, three `K₁` values each.
#[derive(Debug, Clone, Copy)]
pub struct RCase {
    /// Case number (1-based).
    pub case_no: usize,
    /// Implementations per module.
    pub n: usize,
    /// Module-set seed.
    pub seed: u64,
    /// The three `K₁` sweeps.
    pub k1s: [usize; 3],
}

/// The paper's case layout for Tables 1–3: cases 1–2 at the small `N`,
/// cases 3–4 at the large `N`, with `K₁` sweeping `{N, 1.5N, 2N}`.
#[must_use]
pub fn paper_cases(n_small: usize, n_large: usize) -> [RCase; 4] {
    let k1s = |n: usize| [n, n * 3 / 2, n * 2];
    [
        RCase {
            case_no: 1,
            n: n_small,
            seed: 101,
            k1s: k1s(n_small),
        },
        RCase {
            case_no: 2,
            n: n_small,
            seed: 102,
            k1s: k1s(n_small),
        },
        RCase {
            case_no: 3,
            n: n_large,
            seed: 103,
            k1s: k1s(n_large),
        },
        RCase {
            case_no: 4,
            n: n_large,
            seed: 104,
            k1s: k1s(n_large),
        },
    ]
}

/// Runs a Table 1/2/3 protocol: plain \[9\] vs \[9\] + `R_Selection` across
/// the cases, under the emulated memory cap.
#[must_use]
pub fn table_r(bench: &Benchmark, cases: &[RCase], cap: usize) -> Vec<RTableRow> {
    let mut rows = Vec::new();
    for case in cases {
        let plain_cfg = OptimizeConfig::default().with_memory_limit(Some(cap));
        let plain = run_case_or_rescue(bench, case.n, case.seed, &plain_cfg);
        for &k1 in &case.k1s {
            let cfg = plain_cfg.clone().with_r_selection(k1);
            let reduced = run_case_or_rescue(bench, case.n, case.seed, &cfg);
            rows.push(RTableRow {
                case_no: case.case_no,
                n: case.n,
                plain: plain.clone(),
                k1,
                reduced,
            });
        }
    }
    rows
}

/// One row of the Table 4 protocol: `R_Selection` alone vs
/// `R_Selection` + `L_Selection` at a given `K₂`.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Test case number.
    pub case_no: usize,
    /// Implementations per module.
    pub n: usize,
    /// `K₁` used by both runs.
    pub k1: usize,
    /// The \[9\] + `R_Selection` run.
    pub r_only: RunResult,
    /// `K₂` of this row.
    pub k2: usize,
    /// The \[9\] + `R_Selection` + `L_Selection` run.
    pub r_and_l: RunResult,
}

impl Table4Row {
    /// `(A_{R+L} − A_R) / A_R` in percent, when both runs finished.
    #[must_use]
    pub fn area_excess_pct(&self) -> Option<f64> {
        let a_r = self.r_only.area()?;
        let a_rl = self.r_and_l.area()?;
        Some(100.0 * (a_rl as f64 - a_r as f64) / a_r as f64)
    }
}

/// A Table 4 test case.
#[derive(Debug, Clone, Copy)]
pub struct LCase {
    /// Case number.
    pub case_no: usize,
    /// Implementations per module.
    pub n: usize,
    /// Module-set seed.
    pub seed: u64,
    /// `K₁` for the R-selection layer.
    pub k1: usize,
    /// The three `K₂` sweeps.
    pub k2s: [usize; 3],
}

/// Runs the Table 4 protocol on FP4-style inputs.
#[must_use]
pub fn table4(bench: &Benchmark, cases: &[LCase], cap: usize, prefilter: usize) -> Vec<Table4Row> {
    let mut rows = Vec::new();
    for case in cases {
        let r_cfg = OptimizeConfig::default()
            .with_memory_limit(Some(cap))
            .with_r_selection(case.k1);
        let r_only = run_case_or_rescue(bench, case.n, case.seed, &r_cfg);
        for &k2 in &case.k2s {
            let cfg = r_cfg
                .clone()
                .with_l_selection(LReductionPolicy::new(k2).with_prefilter(prefilter.max(k2 + 1)));
            let r_and_l = run_case_or_rescue(bench, case.n, case.seed, &cfg);
            rows.push(Table4Row {
                case_no: case.case_no,
                n: case.n,
                k1: case.k1,
                r_only: r_only.clone(),
                k2,
                r_and_l,
            });
        }
    }
    rows
}

/// Serializes Table 1–3 rows as CSV (one header, one line per row) for
/// downstream plotting.
///
/// ```
/// use fp_bench::{table_r, to_csv_r, RCase, PAPER_MEMORY_CAP};
/// use fp_tree::generators;
///
/// let bench = generators::fp1();
/// let case = RCase { case_no: 1, n: 4, seed: 1, k1s: [4, 6, 8] };
/// let rows = table_r(&bench, &[case], PAPER_MEMORY_CAP);
/// let csv = to_csv_r(&rows);
/// assert!(csv.starts_with("case,n,plain_m,plain_cpu_s,plain_area,k1,"));
/// assert_eq!(csv.lines().count(), 4); // header + 3 K1 rows
/// ```
#[must_use]
pub fn to_csv_r(rows: &[RTableRow]) -> String {
    let mut out = String::from(
        "case,n,plain_m,plain_cpu_s,plain_area,k1,m,cpu_s,area,area_excess_pct,sel_share_pct\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{}\n",
            row.case_no,
            row.n,
            csv_m(&row.plain),
            csv_cpu(&row.plain),
            csv_area(&row.plain),
            row.k1,
            csv_m(&row.reduced),
            csv_cpu(&row.reduced),
            csv_area(&row.reduced),
            row.area_excess_pct()
                .map_or(String::new(), |p| format!("{p:.4}")),
            csv_sel_share(&row.reduced),
        ));
    }
    out
}

/// Serializes Table 4 rows as CSV.
#[must_use]
pub fn to_csv_4(rows: &[Table4Row]) -> String {
    let mut out = String::from(
        "case,n,k1,r_m,r_cpu_s,r_area,k2,rl_m,rl_cpu_s,rl_area,area_excess_pct,sel_share_pct\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{}\n",
            row.case_no,
            row.n,
            row.k1,
            csv_m(&row.r_only),
            csv_cpu(&row.r_only),
            csv_area(&row.r_only),
            row.k2,
            csv_m(&row.r_and_l),
            csv_cpu(&row.r_and_l),
            csv_area(&row.r_and_l),
            row.area_excess_pct()
                .map_or(String::new(), |p| format!("{p:.4}")),
            csv_sel_share(&row.r_and_l),
        ));
    }
    out
}

fn csv_m(r: &RunResult) -> String {
    match r {
        RunResult::Done { m, .. } => m.to_string(),
        RunResult::OutOfMemory { peak, .. } => format!(">{peak}"),
        // `*<rungs>` marks an auto-rescued value so downstream plots can
        // tell degraded rows from exact ones.
        RunResult::Rescued {
            m, degradations, ..
        } => format!("{m}*{degradations}"),
    }
}

fn csv_cpu(r: &RunResult) -> String {
    match r {
        RunResult::Done { cpu, .. } | RunResult::Rescued { cpu, .. } => {
            format!("{:.6}", cpu.as_secs_f64())
        }
        RunResult::OutOfMemory { .. } => String::new(),
    }
}

fn csv_area(r: &RunResult) -> String {
    r.area().map_or(String::new(), |a| a.to_string())
}

fn csv_sel_share(r: &RunResult) -> String {
    r.selection_share_pct()
        .map_or(String::new(), |p| format!("{p:.2}"))
}

/// Formats a [`RunResult`]'s `M` column (`>peak` for failed runs, as in
/// the paper; a `*` suffix marks auto-rescued rows).
#[must_use]
pub fn fmt_m(r: &RunResult) -> String {
    match r {
        RunResult::Done { m, .. } => m.to_string(),
        RunResult::OutOfMemory { peak, .. } => format!("> {peak}"),
        RunResult::Rescued { m, .. } => format!("{m}*"),
    }
}

/// Formats a CPU column in seconds (`-` for failed runs).
#[must_use]
pub fn fmt_cpu(r: &RunResult) -> String {
    match r {
        RunResult::Done { cpu, .. } | RunResult::Rescued { cpu, .. } => {
            format!("{:.3}", cpu.as_secs_f64())
        }
        RunResult::OutOfMemory { .. } => "-".to_owned(),
    }
}

/// Formats an area-excess percentage (`-` when unavailable).
#[must_use]
pub fn fmt_pct(p: Option<f64>) -> String {
    match p {
        Some(v) => format!("{v:.2}%"),
        None => "-".to_owned(),
    }
}

/// Formats a run's selection-kernel time share (`-` for failed runs).
#[must_use]
pub fn fmt_sel_share(r: &RunResult) -> String {
    fmt_pct(r.selection_share_pct())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_tree::generators;

    #[test]
    fn paper_cases_sweep_k1_proportionally() {
        let cases = paper_cases(20, 40);
        assert_eq!(cases[0].k1s, [20, 30, 40]);
        assert_eq!(cases[3].k1s, [40, 60, 80]);
        assert_eq!(cases.iter().filter(|c| c.n == 20).count(), 2);
    }

    #[test]
    fn table_r_smoke_on_fp1() {
        let bench = generators::fp1();
        let cases = [RCase {
            case_no: 1,
            n: 6,
            seed: 9,
            k1s: [6, 9, 12],
        }];
        let rows = table_r(&bench, &cases, PAPER_MEMORY_CAP);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            let plain_area = row.plain.area().expect("plain fits at N=6");
            let red_area = row.reduced.area().expect("reduced fits");
            assert!(red_area >= plain_area);
            assert!(row.reduced.peak() <= row.plain.peak());
            assert!(row.area_excess_pct().expect("both ran") >= 0.0);
        }
    }

    #[test]
    fn table4_smoke_on_fp1() {
        let bench = generators::fp1();
        let cases = [LCase {
            case_no: 1,
            n: 6,
            seed: 9,
            k1: 8,
            k2s: [50, 100, 200],
        }];
        let rows = table4(&bench, &cases, PAPER_MEMORY_CAP, 4000);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(row.r_and_l.area().is_some());
        }
        // Larger K2 never increases area in this sweep ordering.
        let areas: Vec<_> = rows
            .iter()
            .map(|r| r.r_and_l.area().expect("ran"))
            .collect();
        assert!(areas[0] >= areas[2]);
    }

    #[test]
    fn csv_serialization() {
        let bench = generators::fp1();
        let cases = [RCase {
            case_no: 1,
            n: 4,
            seed: 9,
            k1s: [4, 6, 8],
        }];
        let rows = table_r(&bench, &cases, PAPER_MEMORY_CAP);
        let csv = to_csv_r(&rows);
        assert_eq!(csv.lines().count(), 4);
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), 11, "{line}");
        }
        let lcases = [LCase {
            case_no: 1,
            n: 4,
            seed: 9,
            k1: 6,
            k2s: [40, 80, 160],
        }];
        let rows4 = table4(&bench, &lcases, PAPER_MEMORY_CAP, 1000);
        let csv4 = to_csv_4(&rows4);
        assert_eq!(csv4.lines().count(), 4);
        for line in csv4.lines().skip(1) {
            assert_eq!(line.split(',').count(), 12, "{line}");
        }
    }

    #[test]
    fn formatting_helpers() {
        let done = RunResult::Done {
            m: 42,
            cpu: Duration::from_millis(1500),
            sel: Duration::from_millis(300),
            area: 7,
        };
        let oom = RunResult::OutOfMemory {
            peak: 99,
            cpu: Duration::ZERO,
        };
        let rescued = RunResult::Rescued {
            m: 64,
            cpu: Duration::from_millis(250),
            sel: Duration::from_millis(100),
            area: 11,
            degradations: 3,
        };
        assert_eq!(fmt_m(&done), "42");
        assert_eq!(fmt_m(&oom), "> 99");
        assert_eq!(fmt_m(&rescued), "64*");
        assert_eq!(fmt_cpu(&done), "1.500");
        assert_eq!(fmt_cpu(&oom), "-");
        assert_eq!(fmt_cpu(&rescued), "0.250");
        assert_eq!(fmt_pct(Some(1.234)), "1.23%");
        assert_eq!(fmt_pct(None), "-");
        assert_eq!(done.area(), Some(7));
        assert_eq!(oom.area(), None);
        assert_eq!(oom.peak(), 99);
        assert_eq!(rescued.area(), Some(11));
        assert_eq!(rescued.peak(), 64);
        assert_eq!(rescued.degradations(), 3);
        assert_eq!(done.degradations(), 0);
        assert_eq!(done.selection(), Duration::from_millis(300));
        assert_eq!(oom.selection(), Duration::ZERO);
        assert_eq!(fmt_sel_share(&done), "20.00%");
        assert_eq!(fmt_sel_share(&rescued), "40.00%");
        assert_eq!(fmt_sel_share(&oom), "-");
    }

    #[test]
    fn rescue_replaces_dash_rows() {
        // A budget that kills the plain FP1 run at N=6: the table
        // protocol now reports a rescued row instead of `-`.
        let bench = generators::fp1();
        let plain = run_case(&bench, 6, 9, &OptimizeConfig::default());
        let budget = plain.peak() * 3 / 4;
        let tiny = OptimizeConfig::default().with_memory_limit(Some(budget));
        assert!(matches!(
            run_case(&bench, 6, 9, &tiny),
            RunResult::OutOfMemory { .. }
        ));
        let rescued = run_case_or_rescue(&bench, 6, 9, &tiny);
        match &rescued {
            RunResult::Rescued {
                area, degradations, ..
            } => {
                assert!(*degradations > 0);
                assert!(*area >= plain.area().expect("plain ran"));
            }
            other => panic!("expected a rescued row, got {other:?}"),
        }
        // The rescued row renders with the `*` marker in both formats.
        assert!(fmt_m(&rescued).ends_with('*'));
        assert!(csv_m(&rescued).contains('*'));
    }
}
