//! Quality ablations for the design decisions listed in `DESIGN.md` §6.
//!
//! Each ablation reports *solution quality* (selection error or realized
//! floorplan area); the corresponding runtime comparisons live in the
//! Criterion benches.

use fp_geom::LShape;
use fp_optimizer::OptimizeConfig;

use crate::optimize_best;
use fp_select::greedy::{greedy_l_selection, greedy_r_selection};
use fp_select::{
    heuristic_l_reduction, l_selection, l_selection_error, r_selection, LReductionPolicy, Metric,
};
use fp_shape::{LList, RList};
use fp_tree::generators::{self, module_library};

/// Ablation 1: optimal (CSPP) vs greedy selection error on synthetic
/// staircases. Returns `(k, optimal_error, greedy_error)` triples.
#[must_use]
pub fn greedy_vs_cspp_r(list: &RList, ks: &[usize]) -> Vec<(usize, u128, u128)> {
    ks.iter()
        .map(|&k| {
            let opt = r_selection(list, k).expect("valid selection input");
            let greedy = greedy_r_selection(list, k);
            (k, opt.error, greedy.error)
        })
        .collect()
}

/// Ablation 1 (L variant): optimal vs greedy vs prefilter+optimal error.
/// Returns `(k, optimal, prefiltered, greedy)`.
#[must_use]
pub fn greedy_vs_cspp_l(list: &LList, ks: &[usize], s: usize) -> Vec<(usize, u128, u128, u128)> {
    ks.iter()
        .map(|&k| {
            let opt = l_selection(list, k).expect("valid selection input");
            let coarse = heuristic_l_reduction(list, s, Metric::L1);
            let inner = l_selection(&list.subset(&coarse), k).expect("valid");
            let pre: Vec<usize> = inner.positions.iter().map(|&i| coarse[i]).collect();
            let pre_err = l_selection_error(list, &pre);
            let (_, greedy_err) = greedy_l_selection(list, k, Metric::L1);
            (k, opt.error, pre_err, greedy_err)
        })
        .collect()
}

/// Ablation 2: the θ trigger. Returns `(theta, area, peak, reductions)`
/// for a fixed benchmark/budget.
#[must_use]
pub fn theta_sweep(
    n: usize,
    seed: u64,
    k2: usize,
    thetas: &[f64],
) -> Vec<(f64, u128, usize, usize)> {
    let bench = generators::fp1();
    let lib = module_library(&bench.tree, n, seed);
    thetas
        .iter()
        .map(|&theta| {
            let cfg = OptimizeConfig::default()
                .with_l_selection(LReductionPolicy::new(k2).with_theta(theta));
            let out = optimize_best(&bench.tree, &lib, &cfg).expect("fits default budget");
            (
                theta,
                out.area,
                out.stats.peak_impls,
                out.stats.l_reductions,
            )
        })
        .collect()
}

/// Ablation 3: the heuristic prefilter `S`. Returns
/// `(s_or_none, area, peak, cpu_ms)`.
#[must_use]
pub fn prefilter_sweep(
    n: usize,
    seed: u64,
    k2: usize,
    svals: &[Option<usize>],
) -> Vec<(Option<usize>, u128, usize, f64)> {
    let bench = generators::fp1();
    let lib = module_library(&bench.tree, n, seed);
    svals
        .iter()
        .map(|&s| {
            let mut policy = LReductionPolicy::new(k2);
            if let Some(s) = s {
                policy = policy.with_prefilter(s);
            }
            let cfg = OptimizeConfig::default().with_l_selection(policy);
            let out = optimize_best(&bench.tree, &lib, &cfg).expect("fits default budget");
            (
                s,
                out.area,
                out.stats.peak_impls,
                out.stats.elapsed.as_secs_f64() * 1e3,
            )
        })
        .collect()
}

/// Ablation 4: the `L_p` metric (Lemma 2 footnote). Returns
/// `(metric, area, peak)`.
#[must_use]
pub fn metric_sweep(n: usize, seed: u64, k2: usize) -> Vec<(Metric, u128, usize)> {
    let bench = generators::fp1();
    let lib = module_library(&bench.tree, n, seed);
    [Metric::L1, Metric::L2, Metric::Linf]
        .into_iter()
        .map(|metric| {
            let cfg = OptimizeConfig::default()
                .with_l_selection(LReductionPolicy::new(k2).with_metric(metric));
            let out = optimize_best(&bench.tree, &lib, &cfg).expect("fits default budget");
            (metric, out.area, out.stats.peak_impls)
        })
        .collect()
}

/// A synthetic irreducible R-list with `n` corners (deterministic).
#[must_use]
pub fn synthetic_rlist(n: usize) -> RList {
    RList::from_candidates(
        (0..n as u64)
            .map(|i| {
                fp_geom::Rect::new(4 * (n as u64 - i) + (i * i) % 3, 4 * (i + 1) + (2 * i) % 3)
            })
            .collect(),
    )
}

/// A synthetic irreducible L-list with `n` implementations.
///
/// # Panics
///
/// Panics if `n` is zero.
#[must_use]
pub fn synthetic_llist(n: usize) -> LList {
    assert!(n > 0, "need at least one implementation");
    LList::from_sorted(
        (0..n as u64)
            .map(|i| {
                LShape::new_canonical(
                    10 * n as u64 - 3 * i - (i * i) % 2,
                    7,
                    20 + 4 * i + (3 * i) % 3,
                    9 + 2 * i,
                )
            })
            .collect(),
    )
    .expect("constructed chain is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_lists_have_requested_sizes() {
        for n in [2usize, 10, 100] {
            assert_eq!(synthetic_rlist(n).len(), n);
            assert_eq!(synthetic_llist(n).len(), n);
        }
    }

    #[test]
    fn greedy_never_beats_optimal_r() {
        let list = synthetic_rlist(40);
        for (k, opt, greedy) in greedy_vs_cspp_r(&list, &[3, 8, 20]) {
            assert!(opt <= greedy, "k = {k}");
        }
    }

    #[test]
    fn greedy_never_beats_optimal_l() {
        let list = synthetic_llist(40);
        for (k, opt, pre, greedy) in greedy_vs_cspp_l(&list, &[3, 8, 20], 30) {
            assert!(opt <= pre, "k = {k}: prefilter can only lose");
            assert!(opt <= greedy, "k = {k}");
        }
    }

    #[test]
    fn theta_one_reduces_most() {
        let rows = theta_sweep(5, 3, 80, &[0.05, 1.0]);
        assert!(
            rows[0].3 <= rows[1].3,
            "smaller theta fires fewer reductions"
        );
        assert!(
            rows[0].1 <= rows[1].1,
            "fewer reductions never hurt quality"
        );
    }

    #[test]
    fn metric_sweep_runs_all() {
        let rows = metric_sweep(4, 5, 60);
        assert_eq!(rows.len(), 3);
        for (_, area, peak) in rows {
            assert!(area > 0 && peak > 0);
        }
    }
}
