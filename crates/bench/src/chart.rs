//! A minimal SVG line-chart writer for the harness's figure outputs.
//!
//! No plotting dependency is warranted for a handful of benchmark
//! figures; this renders multi-series line charts with linear or log-10
//! y-axes, tick labels, and a legend — enough to visualize selection
//! trade-off curves and the tables' memory/quality sweeps.

use std::fmt::Write as _;

/// One named data series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points in data coordinates.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series from integer-ish points.
    #[must_use]
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.into(),
            points,
        }
    }
}

/// Axis scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Linear axis.
    Linear,
    /// Base-10 logarithmic axis (all values must be positive).
    Log10,
}

/// Chart configuration.
#[derive(Debug, Clone)]
pub struct Chart {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Y-axis scale.
    pub y_scale: Scale,
    /// The series to draw.
    pub series: Vec<Series>,
}

const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 420.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 160.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 55.0;
const COLORS: [&str; 6] = [
    "#1b6ca8", "#d1495b", "#66a182", "#edae49", "#8d6a9f", "#555555",
];

impl Chart {
    /// Renders the chart as a standalone SVG document.
    ///
    /// # Panics
    ///
    /// Panics if there are no points, or if a log-scaled axis receives a
    /// non-positive value.
    #[must_use]
    pub fn to_svg(&self) -> String {
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .collect();
        assert!(!all.is_empty(), "chart needs at least one point");
        let ty = |y: f64| -> f64 {
            match self.y_scale {
                Scale::Linear => y,
                Scale::Log10 => {
                    assert!(y > 0.0, "log axis requires positive values, got {y}");
                    y.log10()
                }
            }
        };
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &all {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(ty(y));
            y1 = y1.max(ty(y));
        }
        if (x1 - x0).abs() < f64::EPSILON {
            x1 = x0 + 1.0;
        }
        if (y1 - y0).abs() < f64::EPSILON {
            y1 = y0 + 1.0;
        }
        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
        let px = |x: f64| MARGIN_L + (x - x0) / (x1 - x0) * plot_w;
        let py = |y: f64| MARGIN_T + plot_h - (ty(y) - y0) / (y1 - y0) * plot_h;

        let mut svg = String::new();
        let _ = write!(
            svg,
            r##"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" font-family="sans-serif" font-size="12">"##
        );
        let _ = write!(
            svg,
            r##"<rect x="0" y="0" width="{WIDTH}" height="{HEIGHT}" fill="white"/>"##
        );
        // Title and axis labels.
        let _ = write!(
            svg,
            r##"<text x="{:.0}" y="22" text-anchor="middle" font-size="15" font-weight="bold">{}</text>"##,
            MARGIN_L + plot_w / 2.0,
            xml(&self.title)
        );
        let _ = write!(
            svg,
            r##"<text x="{:.0}" y="{:.0}" text-anchor="middle">{}</text>"##,
            MARGIN_L + plot_w / 2.0,
            HEIGHT - 12.0,
            xml(&self.x_label)
        );
        let _ = write!(
            svg,
            r##"<text x="16" y="{:.0}" text-anchor="middle" transform="rotate(-90 16 {:.0})">{}</text>"##,
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            xml(&self.y_label)
        );
        // Frame.
        let _ = write!(
            svg,
            r##"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w}" height="{plot_h}" fill="none" stroke="#999"/>"##
        );
        // Ticks: 5 per axis.
        for i in 0..=4 {
            let fx = x0 + (x1 - x0) * f64::from(i) / 4.0;
            let sx = px(fx);
            let _ = write!(
                svg,
                r##"<line x1="{sx:.1}" y1="{:.1}" x2="{sx:.1}" y2="{:.1}" stroke="#ccc"/>"##,
                MARGIN_T,
                MARGIN_T + plot_h
            );
            let _ = write!(
                svg,
                r##"<text x="{sx:.1}" y="{:.1}" text-anchor="middle">{}</text>"##,
                MARGIN_T + plot_h + 18.0,
                fmt_tick(fx)
            );
            let fy = y0 + (y1 - y0) * f64::from(i) / 4.0;
            let sy = MARGIN_T + plot_h - (fy - y0) / (y1 - y0) * plot_h;
            let label = match self.y_scale {
                Scale::Linear => fmt_tick(fy),
                Scale::Log10 => fmt_tick(10f64.powf(fy)),
            };
            let _ = write!(
                svg,
                r##"<line x1="{MARGIN_L}" y1="{sy:.1}" x2="{:.1}" y2="{sy:.1}" stroke="#ccc"/>"##,
                MARGIN_L + plot_w
            );
            let _ = write!(
                svg,
                r##"<text x="{:.1}" y="{sy:.1}" text-anchor="end" dominant-baseline="middle">{label}</text>"##,
                MARGIN_L - 6.0
            );
        }
        // Series.
        for (si, series) in self.series.iter().enumerate() {
            let color = COLORS[si % COLORS.len()];
            let path: Vec<String> = series
                .points
                .iter()
                .map(|&(x, y)| format!("{:.1},{:.1}", px(x), py(y)))
                .collect();
            let _ = write!(
                svg,
                r##"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"##,
                path.join(" ")
            );
            for &(x, y) in &series.points {
                let _ = write!(
                    svg,
                    r##"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}"/>"##,
                    px(x),
                    py(y)
                );
            }
            // Legend.
            let ly = MARGIN_T + 16.0 + si as f64 * 18.0;
            let lx = WIDTH - MARGIN_R + 12.0;
            let _ = write!(
                svg,
                r##"<line x1="{lx:.1}" y1="{ly:.1}" x2="{:.1}" y2="{ly:.1}" stroke="{color}" stroke-width="2"/>"##,
                lx + 18.0
            );
            let _ = write!(
                svg,
                r##"<text x="{:.1}" y="{:.1}" dominant-baseline="middle">{}</text>"##,
                lx + 24.0,
                ly,
                xml(&series.name)
            );
        }
        svg.push_str("</svg>");
        svg
    }
}

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 100_000.0 {
        format!(
            "{:.1}e{}",
            v / 10f64.powi(v.abs().log10().floor() as i32),
            v.abs().log10().floor()
        )
    } else if v.abs() >= 10.0 || (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.2}")
    }
}

fn xml(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_chart(scale: Scale) -> Chart {
        Chart {
            title: "demo".into(),
            x_label: "k".into(),
            y_label: "error".into(),
            y_scale: scale,
            series: vec![
                Series::new("optimal", vec![(2.0, 100.0), (4.0, 40.0), (8.0, 10.0)]),
                Series::new("greedy", vec![(2.0, 120.0), (4.0, 70.0), (8.0, 30.0)]),
            ],
        }
    }

    #[test]
    fn renders_linear_chart() {
        let svg = demo_chart(Scale::Linear).to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 6);
        assert!(svg.contains(">optimal</text>"));
        assert!(svg.contains(">greedy</text>"));
    }

    #[test]
    fn renders_log_chart() {
        let svg = demo_chart(Scale::Log10).to_svg();
        assert!(svg.contains("<polyline"));
    }

    #[test]
    #[should_panic(expected = "log axis requires positive values")]
    fn log_rejects_zero() {
        let chart = Chart {
            title: "bad".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            y_scale: Scale::Log10,
            series: vec![Series::new("s", vec![(1.0, 0.0)])],
        };
        let _ = chart.to_svg();
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_chart_rejected() {
        let chart = Chart {
            title: "empty".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            y_scale: Scale::Linear,
            series: vec![],
        };
        let _ = chart.to_svg();
    }

    #[test]
    fn degenerate_ranges_handled() {
        let chart = Chart {
            title: "flat".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            y_scale: Scale::Linear,
            series: vec![Series::new("s", vec![(3.0, 5.0), (3.0, 5.0)])],
        };
        let svg = chart.to_svg();
        assert!(svg.contains("<polyline"));
    }

    #[test]
    fn xml_escaping() {
        assert_eq!(xml("a<b&c>d"), "a&lt;b&amp;c&gt;d");
    }
}
