//! Content-addressed memoization for sub-floorplan results.
//!
//! The paper's whole pitch is avoiding recomputation of sub-floorplan
//! implementation lists; this crate provides the two pieces a persistent
//! session layer needs to make that literal across *runs*:
//!
//! * [`Fingerprinter`] — a dependency-free 128-bit content hash (two
//!   independently seeded FNV-1a lanes, each finished with a SplitMix64
//!   avalanche) for building canonical subtree fingerprints. Not
//!   cryptographic; collisions across 128 bits are negligible for the
//!   non-adversarial content-addressing done here.
//! * [`MemoCache`] — a byte-budgeted LRU map from fingerprints to cached
//!   values, with hit/miss/eviction/rejection counters. The cache is
//!   value-generic: the optimizer stores committed block lists, the
//!   `fpcompress` CLI stores per-module selection results.
//!
//! The crate is deliberately free of workspace dependencies so that any
//! layer (tree, optimizer, session, CLIs) can use it without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod persist;

use std::collections::{HashMap, VecDeque};
use std::sync::{Mutex, MutexGuard, PoisonError};

pub use persist::{
    crc32, scan_store, Codec, IoFaultPlan, PersistError, PersistOptions, PersistStats,
    PersistentCache, RecoveryReport, SegmentHealth, SegmentScan, StoreScan, HEADER_BYTES,
    RECORD_FRAME_BYTES, SEGMENT_MAGIC, SEGMENT_VERSION,
};

/// Acquires `mutex`, recovering the guard from a poisoned lock.
///
/// Poisoning only means *some* thread panicked while holding the lock;
/// every [`MemoCache`] method leaves the cache structurally consistent
/// between calls (byte accounting, map/queue agreement), so the data is
/// safe to keep using. Recovering — rather than treating the shard as
/// lost — preserves hits and exact counters after a panicking tenant.
fn lock_recovering<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A 128-bit content fingerprint.
pub type Fingerprint = u128;

/// FNV-1a offset basis (lane A) and prime.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Lane-B offset basis: an arbitrary odd constant far from lane A's.
const FNV_OFFSET_B: u64 = 0x9e37_79b9_7f4a_7c15;

/// SplitMix64 finalizer: a fast avalanche that decorrelates the two FNV
/// lanes and spreads low-entropy inputs (small integers) over all bits.
#[inline]
fn avalanche(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// An incremental 128-bit content hasher.
///
/// ```
/// use fp_memo::Fingerprinter;
///
/// let mut h = Fingerprinter::new();
/// h.write_u64(42);
/// h.write_str("wheel");
/// let a = h.finish();
/// assert_ne!(a, Fingerprinter::new().finish());
/// ```
#[derive(Debug, Clone)]
pub struct Fingerprinter {
    a: u64,
    b: u64,
}

impl Default for Fingerprinter {
    fn default() -> Self {
        Fingerprinter::new()
    }
}

impl Fingerprinter {
    /// A fresh hasher.
    #[must_use]
    pub fn new() -> Self {
        Fingerprinter {
            a: FNV_OFFSET,
            b: FNV_OFFSET_B,
        }
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `u128` (little-endian) — e.g. a child [`Fingerprint`].
    pub fn write_u128(&mut self, v: u128) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `usize` portably (as `u64`).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs a string, length-prefixed so concatenations cannot collide.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The 128-bit fingerprint of everything absorbed so far.
    #[must_use]
    pub fn finish(&self) -> Fingerprint {
        (u128::from(avalanche(self.a)) << 64) | u128::from(avalanche(self.b))
    }
}

/// Byte cost of a cached value, used against the cache budget.
pub trait Weigh {
    /// Approximate heap + inline size of the value, in bytes.
    fn weight_bytes(&self) -> usize;
}

/// Per-entry bookkeeping overhead charged on top of the value's own
/// weight (map slot, recency queue slot, key).
pub const ENTRY_OVERHEAD_BYTES: usize = 64;

/// Cache observability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to make room under the byte budget.
    pub evictions: u64,
    /// Values stored (including re-stores over an existing key).
    pub insertions: u64,
    /// Values rejected because they alone exceed the whole budget.
    pub rejected: u64,
}

impl CacheStats {
    /// Adds `other`'s counters into `self` (used to merge shard stats).
    pub fn absorb(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.insertions += other.insertions;
        self.rejected += other.rejected;
    }
}

struct Entry<V> {
    value: V,
    weight: usize,
    /// Recency stamp; matches at most one live queue slot.
    stamp: u64,
}

/// A content-addressed LRU cache under a byte budget.
///
/// Recency is maintained lazily: every touch pushes a fresh
/// `(key, stamp)` pair onto a queue and bumps the entry's stamp; eviction
/// pops from the front, skipping pairs whose stamp is stale. Stale pairs
/// are also compacted away once they outnumber live entries, so the
/// queue stays O(live entries) even on hit-only workloads that never
/// evict. Amortized O(1) per operation, no unsafe, no intrusive lists.
///
/// ```
/// use fp_memo::{MemoCache, Weigh};
///
/// struct Blob(usize);
/// impl Weigh for Blob {
///     fn weight_bytes(&self) -> usize {
///         self.0
///     }
/// }
///
/// let mut cache: MemoCache<Blob> = MemoCache::new(1 << 20);
/// cache.insert(1, Blob(100));
/// assert!(cache.get(&1).is_some());
/// assert!(cache.get(&2).is_none());
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// ```
pub struct MemoCache<V> {
    budget: usize,
    bytes: usize,
    clock: u64,
    map: HashMap<Fingerprint, Entry<V>>,
    recency: VecDeque<(Fingerprint, u64)>,
    stats: CacheStats,
}

impl<V: Weigh> MemoCache<V> {
    /// An empty cache that will hold at most `budget_bytes` of weighed
    /// content (plus [`ENTRY_OVERHEAD_BYTES`] per entry).
    #[must_use]
    pub fn new(budget_bytes: usize) -> Self {
        MemoCache {
            budget: budget_bytes,
            bytes: 0,
            clock: 0,
            map: HashMap::new(),
            recency: VecDeque::new(),
            stats: CacheStats::default(),
        }
    }

    /// The configured byte budget.
    #[must_use]
    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    /// Bytes currently accounted against the budget.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Whether `key` is live, without touching recency or counters.
    #[must_use]
    pub fn contains(&self, key: &Fingerprint) -> bool {
        self.map.contains_key(key)
    }

    /// Looks up `key`, bumping its recency on a hit.
    pub fn get(&mut self, key: &Fingerprint) -> Option<&V> {
        self.clock += 1;
        let clock = self.clock;
        if let Some(entry) = self.map.get_mut(key) {
            entry.stamp = clock;
        } else {
            self.stats.misses += 1;
            return None;
        }
        self.recency.push_back((*key, clock));
        self.maybe_compact();
        self.stats.hits += 1;
        self.map.get(key).map(|entry| &entry.value)
    }

    /// Stores `value` under `key`, evicting least-recently-used entries
    /// until the budget holds it. A value too large for the whole budget
    /// is rejected (counted in [`CacheStats::rejected`]) — the cache never
    /// empties itself for one oversized entry.
    pub fn insert(&mut self, key: Fingerprint, value: V) {
        let weight = value.weight_bytes().saturating_add(ENTRY_OVERHEAD_BYTES);
        if weight > self.budget {
            self.stats.rejected += 1;
            return;
        }
        if let Some(old) = self.map.remove(&key) {
            self.bytes -= old.weight;
        }
        while self.bytes + weight > self.budget {
            if !self.evict_one() {
                break;
            }
        }
        self.clock += 1;
        self.bytes += weight;
        self.map.insert(
            key,
            Entry {
                value,
                weight,
                stamp: self.clock,
            },
        );
        self.recency.push_back((key, self.clock));
        self.maybe_compact();
        self.stats.insertions += 1;
    }

    /// Drops every entry (counters survive).
    pub fn clear(&mut self) {
        self.map.clear();
        self.recency.clear();
        self.bytes = 0;
    }

    /// Drops stale recency pairs once they outnumber live entries 2:1.
    ///
    /// Lazy LRU leaves one stale pair behind per touch, and a cache
    /// under budget never evicts — so without compaction a
    /// high-hit-rate workload (a long-running server) grows the queue
    /// without bound. The sweep is O(queue) but runs only after O(live)
    /// pushes, so touches stay amortized O(1); afterwards exactly one
    /// pair per live entry remains, in recency order.
    fn maybe_compact(&mut self) {
        if self.recency.len() > 2 * self.map.len() + 16 {
            let map = &self.map;
            self.recency
                .retain(|(key, stamp)| map.get(key).is_some_and(|e| e.stamp == *stamp));
        }
    }

    /// Evicts the least-recently-used entry; `false` when empty.
    fn evict_one(&mut self) -> bool {
        while let Some((key, stamp)) = self.recency.pop_front() {
            let live = self.map.get(&key).is_some_and(|e| e.stamp == stamp);
            if live {
                if let Some(entry) = self.map.remove(&key) {
                    self.bytes -= entry.weight;
                    self.stats.evictions += 1;
                    return true;
                }
            }
        }
        false
    }
}

/// Default shard count for [`ShardedMemoCache`]: enough to keep a
/// handful of worker threads from serializing on one lock, small enough
/// that per-shard budgets stay meaningful.
pub const DEFAULT_SHARDS: usize = 16;

/// A thread-safe [`MemoCache`] sharded behind per-shard locks.
///
/// The byte budget is split evenly across shards; a fingerprint is
/// routed to a shard by its (already avalanched) upper bits, so the
/// low bits remain free for the shard's internal hash map. Counters
/// are kept per shard and merged on read, so totals are exact even
/// under concurrent hammering — each lookup/insert bumps exactly one
/// shard's counters under that shard's lock.
///
/// A poisoned shard lock (a panicking thread mid-operation) is
/// *recovered*, not abandoned: every [`MemoCache`] method leaves the
/// shard structurally consistent between calls, so after a tenant
/// panics — e.g. inside a [`ShardedMemoCache::get_or_insert_with`]
/// closure — subsequent hits, inserts, and counter reads all keep
/// working with exact totals. The cache is an accelerator, never a
/// correctness dependency, and it must not shrink because a caller
/// panicked.
///
/// ```
/// use fp_memo::{ShardedMemoCache, Weigh};
///
/// struct Blob(usize);
/// impl Weigh for Blob {
///     fn weight_bytes(&self) -> usize {
///         self.0
///     }
/// }
///
/// let cache: ShardedMemoCache<Blob> = ShardedMemoCache::new(1 << 20, 4);
/// cache.insert(1, Blob(100));
/// assert!(cache.contains(&1));
/// assert_eq!(cache.stats().insertions, 1);
/// ```
pub struct ShardedMemoCache<V> {
    shards: Vec<Mutex<MemoCache<V>>>,
    mask: u64,
}

impl<V: Weigh> ShardedMemoCache<V> {
    /// A cache of `budget_bytes` total, split over `shards` (rounded up
    /// to a power of two, minimum 1) independently locked shards.
    #[must_use]
    pub fn new(budget_bytes: usize, shards: usize) -> Self {
        let count = shards.max(1).next_power_of_two();
        let per_shard = budget_bytes / count;
        let shards = (0..count)
            .map(|_| Mutex::new(MemoCache::new(per_shard)))
            .collect();
        ShardedMemoCache {
            shards,
            mask: (count - 1) as u64,
        }
    }

    /// A cache with the [`DEFAULT_SHARDS`] shard count.
    #[must_use]
    pub fn with_default_shards(budget_bytes: usize) -> Self {
        ShardedMemoCache::new(budget_bytes, DEFAULT_SHARDS)
    }

    /// Number of shards (always a power of two).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: &Fingerprint) -> &Mutex<MemoCache<V>> {
        // Route by the upper 64 bits: both lanes are avalanched, and
        // this leaves the lower bits uncorrelated with shard choice for
        // the shard's own HashMap.
        let idx = ((key >> 64) as u64) & self.mask;
        &self.shards[idx as usize]
    }

    /// Looks up `key`, cloning the value out under the shard lock and
    /// bumping its recency on a hit.
    #[must_use]
    pub fn get(&self, key: &Fingerprint) -> Option<V>
    where
        V: Clone,
    {
        lock_recovering(self.shard(key)).get(key).cloned()
    }

    /// Stores `value` under `key` in its shard, evicting that shard's
    /// least-recently-used entries to fit the per-shard budget.
    pub fn insert(&self, key: Fingerprint, value: V) {
        lock_recovering(self.shard(&key)).insert(key, value);
    }

    /// Looks up `key`; on a miss, computes the value with `build` and
    /// stores it — all under the shard lock, so concurrent callers of
    /// the same key never duplicate the computation.
    ///
    /// `build` runs *before* any cache mutation, so a panic inside it
    /// poisons the shard lock without corrupting the shard; the poison
    /// is recovered on the next acquisition and the cache keeps serving
    /// (see the type-level docs).
    pub fn get_or_insert_with<F>(&self, key: Fingerprint, build: F) -> V
    where
        V: Clone,
        F: FnOnce() -> V,
    {
        let mut shard = lock_recovering(self.shard(&key));
        if let Some(value) = shard.get(&key) {
            return value.clone();
        }
        let value = build();
        shard.insert(key, value.clone());
        value
    }

    /// Whether `key` is live, without touching recency or counters.
    #[must_use]
    pub fn contains(&self, key: &Fingerprint) -> bool {
        lock_recovering(self.shard(key)).contains(key)
    }

    /// Visits every live entry, shard by shard, holding one shard lock
    /// at a time. Recency and counters are untouched; inserts into a
    /// shard currently being visited block until that shard is done.
    /// Used by the persistence layer's compactor to snapshot the live
    /// set.
    pub fn for_each<F>(&self, mut visit: F)
    where
        F: FnMut(Fingerprint, &V),
    {
        for shard in &self.shards {
            let shard = lock_recovering(shard);
            for (key, entry) in &shard.map {
                visit(*key, &entry.value);
            }
        }
    }

    /// Merged counter snapshot across all shards.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            total.absorb(lock_recovering(shard).stats());
        }
        total
    }

    /// Total live entries across shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_recovering(s).len()).sum()
    }

    /// `true` when no shard holds an entry.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently accounted across shards.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(|s| lock_recovering(s).bytes()).sum()
    }

    /// The summed per-shard byte budgets (≤ the requested budget due to
    /// integer division).
    #[must_use]
    pub fn budget_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_recovering(s).budget_bytes())
            .sum()
    }

    /// Drops every entry in every shard (counters survive).
    pub fn clear(&self) {
        for shard in &self.shards {
            lock_recovering(shard).clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Blob(usize);
    impl Weigh for Blob {
        fn weight_bytes(&self) -> usize {
            self.0
        }
    }

    /// An entry's total budget footprint.
    fn w(payload: usize) -> usize {
        payload + ENTRY_OVERHEAD_BYTES
    }

    #[test]
    fn fingerprints_are_deterministic_and_input_sensitive() {
        let fp = |f: &dyn Fn(&mut Fingerprinter)| {
            let mut h = Fingerprinter::new();
            f(&mut h);
            h.finish()
        };
        assert_eq!(fp(&|h| h.write_u64(7)), fp(&|h| h.write_u64(7)));
        assert_ne!(fp(&|h| h.write_u64(7)), fp(&|h| h.write_u64(8)));
        assert_ne!(fp(&|h| h.write_str("ab")), fp(&|h| h.write_str("ba")));
        // Length prefixing: ("a","bc") never collides with ("ab","c").
        assert_ne!(
            fp(&|h| {
                h.write_str("a");
                h.write_str("bc");
            }),
            fp(&|h| {
                h.write_str("ab");
                h.write_str("c");
            })
        );
        // Order sensitivity of child fingerprints.
        assert_ne!(
            fp(&|h| {
                h.write_u128(1);
                h.write_u128(2);
            }),
            fp(&|h| {
                h.write_u128(2);
                h.write_u128(1);
            })
        );
    }

    #[test]
    fn hit_miss_counters() {
        let mut c: MemoCache<Blob> = MemoCache::new(w(10) * 4);
        c.insert(1, Blob(10));
        assert_eq!(c.get(&1), Some(&Blob(10)));
        assert_eq!(c.get(&2), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
    }

    #[test]
    fn lru_eviction_order_is_least_recent_first() {
        // Room for exactly three entries.
        let mut c: MemoCache<Blob> = MemoCache::new(3 * w(10));
        c.insert(1, Blob(10));
        c.insert(2, Blob(10));
        c.insert(3, Blob(10));
        // Touch 1 so 2 becomes the least recently used.
        assert!(c.get(&1).is_some());
        c.insert(4, Blob(10));
        assert!(!c.contains(&2), "LRU entry 2 must be evicted first");
        assert!(c.contains(&1) && c.contains(&3) && c.contains(&4));
        c.insert(5, Blob(10));
        assert!(!c.contains(&3), "then 3, the next least recent");
        assert_eq!(c.stats().evictions, 2);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn byte_accounting_tracks_insert_replace_evict() {
        let mut c: MemoCache<Blob> = MemoCache::new(10 * w(10));
        c.insert(1, Blob(10));
        assert_eq!(c.bytes(), w(10));
        c.insert(1, Blob(20)); // replace: old weight released
        assert_eq!(c.bytes(), w(20));
        assert_eq!(c.len(), 1);
        c.clear();
        assert_eq!(c.bytes(), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn oversized_values_are_rejected_not_thrashing() {
        let mut c: MemoCache<Blob> = MemoCache::new(w(10));
        c.insert(1, Blob(10));
        c.insert(2, Blob(1_000_000));
        assert!(c.contains(&1), "oversized insert must not purge the cache");
        assert!(!c.contains(&2));
        assert_eq!(c.stats().rejected, 1);
    }

    #[test]
    fn recency_queue_stays_bounded_on_hit_only_workloads() {
        // A cache under budget never evicts, so only compaction keeps
        // the lazy-LRU queue from growing per lookup.
        let mut c: MemoCache<Blob> = MemoCache::new(4 * w(10));
        for k in 0..3 {
            c.insert(k, Blob(10));
        }
        for i in 0..10_000u64 {
            assert!(c.get(&(u128::from(i) % 3)).is_some());
        }
        assert!(
            c.recency.len() <= 2 * c.len() + 16,
            "queue grew to {} pairs for {} entries",
            c.recency.len(),
            c.len()
        );
        // Compaction must preserve LRU order: make 0 the coldest key,
        // then force an eviction.
        assert!(c.get(&1).is_some());
        assert!(c.get(&2).is_some());
        c.insert(3, Blob(10));
        c.insert(4, Blob(10)); // budget forces one eviction
        assert!(!c.contains(&0), "0, least recently touched, is evicted");
        assert!(c.contains(&1) && c.contains(&2) && c.contains(&3) && c.contains(&4));
    }

    #[test]
    fn sharded_cache_routes_and_merges() {
        #[derive(Clone)]
        struct Small;
        impl Weigh for Small {
            fn weight_bytes(&self) -> usize {
                8
            }
        }
        let cache: ShardedMemoCache<Small> = ShardedMemoCache::new(1 << 20, 4);
        assert_eq!(cache.shard_count(), 4);
        for k in 0..64u128 {
            cache.insert(k << 64, Small); // distinct upper bits → all shards
        }
        assert_eq!(cache.len(), 64);
        for k in 0..64u128 {
            assert!(cache.get(&(k << 64)).is_some());
        }
        assert!(cache.get(&(999u128 << 64)).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (64, 1, 64));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn sharded_shard_count_rounds_to_power_of_two() {
        #[derive(Clone)]
        struct Small;
        impl Weigh for Small {
            fn weight_bytes(&self) -> usize {
                8
            }
        }
        let cache: ShardedMemoCache<Small> = ShardedMemoCache::new(1 << 20, 5);
        assert_eq!(cache.shard_count(), 8);
        let one: ShardedMemoCache<Small> = ShardedMemoCache::new(1 << 20, 0);
        assert_eq!(one.shard_count(), 1);
    }

    #[test]
    fn eviction_respects_budget_for_larger_values() {
        let mut c: MemoCache<Blob> = MemoCache::new(4 * w(10));
        for k in 0..4 {
            c.insert(k, Blob(10));
        }
        // A value weighing as much as three small ones evicts 0, 1, 2.
        c.insert(9, Blob(3 * w(10) - ENTRY_OVERHEAD_BYTES));
        assert!(c.contains(&9) && c.contains(&3));
        assert!(!c.contains(&0) && !c.contains(&1) && !c.contains(&2));
        assert!(c.bytes() <= c.budget_bytes());
    }
}
