//! Crash-consistent on-disk persistence for memo caches.
//!
//! A [`PersistentCache`] is a [`ShardedMemoCache`] whose insertions are
//! additionally appended — by a background write-behind flusher — to an
//! append-only, checksummed **segment log** on disk, so a process
//! restart (clean or not) warm-starts from everything that reached the
//! log. The design goal is *crash consistency*, not durability of the
//! last write: after a crash at any byte, reopening the store yields a
//! **verified prefix** of what was appended — every recovered entry is
//! byte-identical to what was stored, and nothing torn, bit-flipped, or
//! half-written is ever served (it is truncated away instead).
//!
//! # Store layout
//!
//! A store is a directory:
//!
//! ```text
//! store/
//!   seg-0000000001.fpm   sealed, immutable segment (atomic-renamed)
//!   seg-0000000002.fpm
//!   wal.fpm              active append segment
//! ```
//!
//! Every file starts with a fixed 40-byte header —
//!
//! ```text
//! magic    8 bytes  b"FPMEMOS1"
//! version  u32 LE   SEGMENT_VERSION (currently 1)
//! flags    u32 LE   reserved, 0
//! salt     u128 LE  the opener's store salt (e.g. a policy fingerprint)
//! crc      u32 LE   CRC-32 (IEEE) of the 32 bytes above
//! pad      u32 LE   reserved, 0
//! ```
//!
//! — followed by length-and-CRC framed records:
//!
//! ```text
//! len      u32 LE   payload length (16 + value bytes)
//! crc      u32 LE   CRC-32 (IEEE) of the payload
//! payload           key u128 LE, then the Codec-encoded value
//! ```
//!
//! # Recovery invariants
//!
//! * A file with a bad magic, bad header CRC, or short header
//!   contributes nothing (cold start for that file); it never aborts
//!   recovery of the others.
//! * A file whose `version` is newer than [`SEGMENT_VERSION`] is left
//!   untouched on disk (a newer process may own it) and contributes
//!   nothing.
//! * A file whose `salt` differs from the opener's contributes nothing
//!   and is deleted at the next compaction — its entries were built
//!   under a different policy and must never be served.
//! * Records are replayed in log order (sealed segments ascending, then
//!   the wal); replay stops at the first record whose length or CRC
//!   does not verify. The wal is truncated to that verified prefix
//!   before any new record is appended, so garbage can never be
//!   interleaved with live data.
//!
//! # Rotation and compaction
//!
//! The wal is sealed once it exceeds the configured segment size:
//! synced, then atomically renamed to the next `seg-N.fpm` name, then a
//! fresh wal is started. When sealed segments outgrow the byte budget,
//! the flusher compacts: the live in-memory entries are rewritten into
//! one fresh segment (via a temporary file and an atomic rename) and
//! the dead segments are deleted. A crash between the rename and the
//! deletes only leaves duplicate records, which replay deduplicates.
//!
//! # Fault injection
//!
//! [`IoFaultPlan`] wires the workspace's deterministic fault-injection
//! philosophy ([`crate`'s governor-level `FaultPlan` counterpart in the
//! optimizer) into the byte stream itself: short writes, bit flips,
//! ENOSPC, and kill-at-offset fire when the writer's cumulative output
//! crosses a configured offset. The crash-recovery suites drive every
//! recovery path through these hooks on any host, deterministically.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

use crate::{CacheStats, Fingerprint, ShardedMemoCache, Weigh, DEFAULT_SHARDS};

/// The segment file magic.
pub const SEGMENT_MAGIC: &[u8; 8] = b"FPMEMOS1";
/// The segment format version this build writes and replays.
pub const SEGMENT_VERSION: u32 = 1;
/// Size of the fixed segment header, in bytes.
pub const HEADER_BYTES: usize = 40;
/// Size of a record's framing (length + CRC), in bytes.
pub const RECORD_FRAME_BYTES: usize = 8;
/// Sanity cap on a single record's payload; anything larger is treated
/// as corruption (the framing length is attacker/corruption-controlled).
pub const MAX_RECORD_BYTES: usize = 1 << 30;

/// Default sealed-segment size before rotation.
pub const DEFAULT_SEGMENT_BYTES: u64 = 8 << 20;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven, const-built
// ---------------------------------------------------------------------------

const fn build_crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = build_crc32_table();

/// CRC-32 (IEEE) of `bytes` — the checksum used for segment headers and
/// record payloads.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

/// Byte serialization for persisted cache values.
///
/// `decode` is the trust boundary for bytes read back from disk: it must
/// return `None` (never panic) on any input it cannot round-trip, even
/// though record CRCs already reject accidental corruption.
pub trait Codec: Sized {
    /// Appends the value's canonical encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Rebuilds a value from its canonical encoding, or `None` if the
    /// bytes are not one.
    fn decode(bytes: &[u8]) -> Option<Self>;
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a persistent store could not be opened or flushed.
#[derive(Debug)]
pub enum PersistError {
    /// An I/O error on the store directory or a segment file.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        error: std::io::Error,
    },
    /// The store path exists but is not a directory.
    NotADirectory(PathBuf),
    /// The write-behind flusher is no longer running (it wedged on an
    /// earlier unrecoverable I/O error); in-memory service continues.
    FlusherGone,
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io { path, error } => {
                write!(f, "cache store {}: {error}", path.display())
            }
            PersistError::NotADirectory(path) => {
                write!(f, "cache store {} is not a directory", path.display())
            }
            PersistError::FlusherGone => write!(f, "cache store writer has stopped"),
        }
    }
}

impl std::error::Error for PersistError {}

fn io_err(path: &Path, error: std::io::Error) -> PersistError {
    PersistError::Io {
        path: path.to_path_buf(),
        error,
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// Deterministic I/O fault injection for the segment writer, mirroring
/// the optimizer governor's allocation-ordinal `FaultPlan` at the byte
/// level: each fault fires when the writer's cumulative appended record
/// bytes cross the configured offset (segment headers are written
/// outside the fault path, so offsets count record framing + payloads
/// only and stay stable across rotations).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoFaultPlan {
    /// Truncate the write crossing this offset and silently drop
    /// everything after it (a torn final write, as a crash leaves it).
    pub short_write_at: Option<u64>,
    /// Flip one bit of the byte written at this offset.
    pub bit_flip_at: Option<u64>,
    /// Fail the write crossing this offset with an ENOSPC-like error
    /// (the prefix up to the offset still reaches the file).
    pub enospc_at: Option<u64>,
    /// Abort the whole process (`std::process::abort`) once the write
    /// crossing this offset has written its partial prefix — the
    /// kill-mid-flush probe the crash-recovery suite drives.
    pub kill_at: Option<u64>,
}

impl IoFaultPlan {
    /// A plan with no faults.
    #[must_use]
    pub fn none() -> Self {
        IoFaultPlan::default()
    }

    /// `true` when no fault is armed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self == &IoFaultPlan::default()
    }

    /// Reads a plan from the `FP_MEMO_SHORT_WRITE_AT`,
    /// `FP_MEMO_BIT_FLIP_AT`, `FP_MEMO_ENOSPC_AT`, and `FP_MEMO_KILL_AT`
    /// environment variables (byte offsets). This is how the chaos
    /// harness arms faults inside spawned writer processes.
    #[must_use]
    pub fn from_env() -> Self {
        let var = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
        };
        IoFaultPlan {
            short_write_at: var("FP_MEMO_SHORT_WRITE_AT"),
            bit_flip_at: var("FP_MEMO_BIT_FLIP_AT"),
            enospc_at: var("FP_MEMO_ENOSPC_AT"),
            kill_at: var("FP_MEMO_KILL_AT"),
        }
    }
}

/// The append side of one store: owns the wal file and applies the
/// fault plan to every byte that passes through.
struct FaultWriter {
    file: File,
    plan: IoFaultPlan,
    /// Cumulative bytes this writer has appended (across rotations).
    written: u64,
    /// A short write fired: all further appends are silently dropped,
    /// as they would be after the crash the short write models.
    wedged: bool,
}

impl FaultWriter {
    fn new(file: File, plan: IoFaultPlan, start_offset: u64) -> Self {
        FaultWriter {
            file,
            plan,
            written: start_offset,
            wedged: false,
        }
    }

    /// Appends `buf`, honouring the fault plan. Returns the number of
    /// bytes that actually reached the file.
    fn append(&mut self, buf: &[u8]) -> std::io::Result<()> {
        if self.wedged {
            return Ok(());
        }
        let start = self.written;
        let end = start + buf.len() as u64;
        // Work out where this write must stop, and why.
        let crossing =
            |point: Option<u64>| -> Option<u64> { point.filter(|&p| p >= start && p < end) };
        let mut out: Vec<u8>;
        let mut payload: &[u8] = buf;
        if let Some(flip) = crossing(self.plan.bit_flip_at) {
            out = buf.to_vec();
            out[(flip - start) as usize] ^= 0x10;
            payload = &out[..];
        }
        if let Some(kill) = crossing(self.plan.kill_at) {
            // Write the torn prefix, push it to the OS, and die the way
            // a power cut would: no unwinding, no destructors.
            let torn = (kill - start) as usize;
            let _ = self.file.write_all(&payload[..torn]);
            let _ = self.file.sync_all();
            std::process::abort();
        }
        if let Some(short) = crossing(self.plan.short_write_at) {
            let torn = (short - start) as usize;
            self.file.write_all(&payload[..torn])?;
            let _ = self.file.flush();
            self.wedged = true;
            self.written = short;
            return Ok(());
        }
        if let Some(full) = crossing(self.plan.enospc_at) {
            let torn = (full - start) as usize;
            self.file.write_all(&payload[..torn])?;
            let _ = self.file.flush();
            self.written = full;
            return Err(std::io::Error::other("injected ENOSPC: device full"));
        }
        self.file.write_all(payload)?;
        self.written = end;
        Ok(())
    }

    fn sync(&mut self) -> std::io::Result<()> {
        if self.wedged {
            return Ok(());
        }
        self.file.sync_all()
    }
}

// ---------------------------------------------------------------------------
// Segment scanning (recovery + forensics)
// ---------------------------------------------------------------------------

/// Why a scanned segment file contributed no (or only some) records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentHealth {
    /// Header and every record verified.
    Clean,
    /// A torn or corrupt record tail was truncated away; the records
    /// before it verified.
    TruncatedTail,
    /// The header's magic or CRC did not verify: nothing was recovered.
    CorruptHeader,
    /// The header names a format version newer than this build.
    FutureVersion,
    /// The header's salt is not the opener's.
    ForeignSalt,
}

/// One scanned segment file: its verified records and how far they go.
#[derive(Debug)]
pub struct SegmentScan {
    /// The file scanned.
    pub path: PathBuf,
    /// Outcome classification.
    pub health: SegmentHealth,
    /// Verified `(key, value bytes)` records, in file order.
    pub records: Vec<(Fingerprint, Vec<u8>)>,
    /// Byte offset of the end of the verified prefix (header included);
    /// everything after it is torn or foreign.
    pub verified_bytes: u64,
    /// Total file size on disk.
    pub file_bytes: u64,
}

/// A whole-store scan: every segment file, in replay order.
#[derive(Debug)]
pub struct StoreScan {
    /// Per-file scans: sealed segments ascending, then the wal.
    pub segments: Vec<SegmentScan>,
}

impl StoreScan {
    /// All verified records in replay order (later segments win on
    /// duplicate keys — fold accordingly).
    #[must_use]
    pub fn records(&self) -> Vec<(Fingerprint, &[u8])> {
        self.segments
            .iter()
            .flat_map(|s| s.records.iter().map(|(k, v)| (*k, v.as_slice())))
            .collect()
    }
}

fn header_bytes(salt: u128) -> [u8; HEADER_BYTES] {
    let mut h = [0u8; HEADER_BYTES];
    h[0..8].copy_from_slice(SEGMENT_MAGIC);
    h[8..12].copy_from_slice(&SEGMENT_VERSION.to_le_bytes());
    // flags at 12..16 stay zero.
    h[16..32].copy_from_slice(&salt.to_le_bytes());
    let crc = crc32(&h[0..32]);
    h[32..36].copy_from_slice(&crc.to_le_bytes());
    // pad at 36..40 stays zero.
    h
}

/// Scans one segment file against the opener's `salt`, verifying the
/// header and every record frame. Never panics; any malformed byte
/// sequence ends the verified prefix.
fn scan_segment(path: &Path, salt: u128) -> Result<SegmentScan, PersistError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| io_err(path, e))?;
    let file_bytes = bytes.len() as u64;
    let mut scan = SegmentScan {
        path: path.to_path_buf(),
        health: SegmentHealth::Clean,
        records: Vec::new(),
        verified_bytes: 0,
        file_bytes,
    };
    if bytes.len() < HEADER_BYTES
        || &bytes[0..8] != SEGMENT_MAGIC
        || crc32(&bytes[0..32]) != u32::from_le_bytes([bytes[32], bytes[33], bytes[34], bytes[35]])
    {
        scan.health = SegmentHealth::CorruptHeader;
        return Ok(scan);
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version > SEGMENT_VERSION {
        scan.health = SegmentHealth::FutureVersion;
        return Ok(scan);
    }
    let mut salt_bytes = [0u8; 16];
    salt_bytes.copy_from_slice(&bytes[16..32]);
    if u128::from_le_bytes(salt_bytes) != salt {
        scan.health = SegmentHealth::ForeignSalt;
        return Ok(scan);
    }
    let mut pos = HEADER_BYTES;
    scan.verified_bytes = pos as u64;
    while pos + RECORD_FRAME_BYTES <= bytes.len() {
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let crc = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        let body = pos + RECORD_FRAME_BYTES;
        if !(16..=MAX_RECORD_BYTES).contains(&len) || body + len > bytes.len() {
            scan.health = SegmentHealth::TruncatedTail;
            return Ok(scan);
        }
        let payload = &bytes[body..body + len];
        if crc32(payload) != crc {
            scan.health = SegmentHealth::TruncatedTail;
            return Ok(scan);
        }
        let mut key_bytes = [0u8; 16];
        key_bytes.copy_from_slice(&payload[0..16]);
        scan.records
            .push((u128::from_le_bytes(key_bytes), payload[16..].to_vec()));
        pos = body + len;
        scan.verified_bytes = pos as u64;
    }
    if pos != bytes.len() {
        // A dangling partial frame after the last whole record.
        scan.health = SegmentHealth::TruncatedTail;
    }
    Ok(scan)
}

fn wal_path(dir: &Path) -> PathBuf {
    dir.join("wal.fpm")
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("seg-{index:010}.fpm"))
}

/// Sealed segment files in the store, as `(index, path)` ascending.
fn sealed_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, PersistError> {
    let mut out = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| io_err(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(index) = name
            .strip_prefix("seg-")
            .and_then(|s| s.strip_suffix(".fpm"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((index, entry.path()));
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// Scans every segment file of the store at `dir` (sealed segments in
/// replay order, then the wal) against `salt`, without opening the store
/// for writing. The forensic entry point the corruption and
/// crash-recovery suites verify prefixes with.
///
/// # Errors
///
/// [`PersistError::Io`] only for real I/O failures (unreadable
/// directory); corrupt *content* is classified, never an error.
pub fn scan_store(dir: &Path, salt: u128) -> Result<StoreScan, PersistError> {
    let mut segments = Vec::new();
    if !dir.exists() {
        return Ok(StoreScan { segments });
    }
    for (_, path) in sealed_segments(dir)? {
        segments.push(scan_segment(&path, salt)?);
    }
    let wal = wal_path(dir);
    if wal.exists() {
        segments.push(scan_segment(&wal, salt)?);
    }
    Ok(StoreScan { segments })
}

// ---------------------------------------------------------------------------
// Recovery report
// ---------------------------------------------------------------------------

/// What [`PersistentCache::open`] found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Distinct entries replayed into the in-memory cache.
    pub recovered_entries: usize,
    /// Verified record payload bytes replayed (before LRU eviction).
    pub recovered_bytes: u64,
    /// Segment files whose torn/corrupt tail was truncated away.
    pub truncated_segments: usize,
    /// Segment files skipped for a foreign (non-matching) salt.
    pub foreign_salt_segments: usize,
    /// Segment files skipped for a future format version.
    pub future_version_segments: usize,
    /// Segment files skipped for a corrupt or missing header.
    pub corrupt_header_segments: usize,
}

impl RecoveryReport {
    /// `true` when nothing usable was found (a cold start).
    #[must_use]
    pub fn is_cold(&self) -> bool {
        self.recovered_entries == 0
    }
}

// ---------------------------------------------------------------------------
// Flusher counters
// ---------------------------------------------------------------------------

/// Lifetime counters of the write-behind flusher, readable at any time.
#[derive(Debug, Default)]
struct PersistCounters {
    appended_records: AtomicU64,
    appended_bytes: AtomicU64,
    rotations: AtomicU64,
    compactions: AtomicU64,
    io_errors: AtomicU64,
    dropped_records: AtomicU64,
    wedged: AtomicBool,
}

/// A snapshot of the flusher's lifetime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Records appended to the log.
    pub appended_records: u64,
    /// Bytes appended to the log (framing included).
    pub appended_bytes: u64,
    /// Wal rotations (sealed segments produced).
    pub rotations: u64,
    /// Compaction passes run.
    pub compactions: u64,
    /// I/O errors observed (the first one wedges the writer).
    pub io_errors: u64,
    /// Records dropped because the writer was wedged or the queue gone.
    pub dropped_records: u64,
    /// `true` once the writer has permanently stopped appending; the
    /// in-memory cache keeps serving.
    pub wedged: bool,
}

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

/// Tunables for [`PersistentCache::open`].
#[derive(Debug, Clone)]
pub struct PersistOptions {
    /// Wal size that triggers sealing + rotation.
    pub segment_bytes: u64,
    /// Sealed-segment bytes beyond which the flusher compacts (dead
    /// records rewritten away). Defaults to `0`, meaning twice the
    /// cache's byte budget.
    pub compact_above_bytes: u64,
    /// Fault plan applied to every byte the writer appends.
    pub faults: IoFaultPlan,
    /// Shard count for the in-memory cache.
    pub shards: usize,
}

impl Default for PersistOptions {
    fn default() -> Self {
        PersistOptions {
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            compact_above_bytes: 0,
            faults: IoFaultPlan::none(),
            shards: DEFAULT_SHARDS,
        }
    }
}

// ---------------------------------------------------------------------------
// PersistentCache
// ---------------------------------------------------------------------------

enum FlushMsg {
    Record { key: Fingerprint, buf: Vec<u8> },
    Sync(SyncSender<bool>),
}

struct PersistHandle {
    tx: Sender<FlushMsg>,
    buf_pool: Arc<Mutex<Vec<Vec<u8>>>>,
    counters: Arc<PersistCounters>,
    join: Option<JoinHandle<()>>,
    dir: PathBuf,
}

/// A sharded, byte-budgeted, content-addressed cache with optional
/// crash-consistent persistence (see the [module docs](self)).
///
/// All reads and writes are served by the in-memory
/// [`ShardedMemoCache`]; when the cache was opened with
/// [`PersistentCache::open`], a background flusher additionally appends
/// every insertion to the segment log. Persistence is strictly an
/// accelerator: any disk-layer failure degrades to in-memory service,
/// never to an error on the cache path.
pub struct PersistentCache<V> {
    mem: Arc<ShardedMemoCache<V>>,
    persist: Option<PersistHandle>,
    recovery: RecoveryReport,
}

impl<V: Weigh> PersistentCache<V> {
    /// A purely in-memory cache (no disk), byte-budgeted and sharded.
    #[must_use]
    pub fn in_memory(budget_bytes: usize, shards: usize) -> Self {
        PersistentCache {
            mem: Arc::new(ShardedMemoCache::new(budget_bytes, shards)),
            persist: None,
            recovery: RecoveryReport::default(),
        }
    }

    /// The in-memory cache behind this handle.
    #[must_use]
    pub fn memory(&self) -> &ShardedMemoCache<V> {
        &self.mem
    }

    /// What recovery found on disk at open (all zeros for in-memory
    /// caches).
    #[must_use]
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// Whether this cache persists to disk.
    #[must_use]
    pub fn is_persistent(&self) -> bool {
        self.persist.is_some()
    }

    /// The store directory, when persistent.
    #[must_use]
    pub fn store_dir(&self) -> Option<&Path> {
        self.persist.as_ref().map(|p| p.dir.as_path())
    }

    /// Flusher counters, when persistent.
    #[must_use]
    pub fn persist_stats(&self) -> Option<PersistStats> {
        self.persist.as_ref().map(|p| PersistStats {
            appended_records: p.counters.appended_records.load(Ordering::Relaxed),
            appended_bytes: p.counters.appended_bytes.load(Ordering::Relaxed),
            rotations: p.counters.rotations.load(Ordering::Relaxed),
            compactions: p.counters.compactions.load(Ordering::Relaxed),
            io_errors: p.counters.io_errors.load(Ordering::Relaxed),
            dropped_records: p.counters.dropped_records.load(Ordering::Relaxed),
            wedged: p.counters.wedged.load(Ordering::Relaxed),
        })
    }

    /// Merged in-memory counter snapshot.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.mem.stats()
    }

    /// Live entries in memory.
    #[must_use]
    pub fn len(&self) -> usize {
        self.mem.len()
    }

    /// `true` when the in-memory cache holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.mem.is_empty()
    }

    /// Bytes charged against the in-memory budget.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.mem.bytes()
    }

    /// The in-memory byte budget.
    #[must_use]
    pub fn budget_bytes(&self) -> usize {
        self.mem.budget_bytes()
    }

    /// Shard count of the in-memory cache.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.mem.shard_count()
    }

    /// Whether `key` is live in memory.
    #[must_use]
    pub fn contains(&self, key: &Fingerprint) -> bool {
        self.mem.contains(key)
    }

    /// Drops every in-memory entry (the log is untouched; already
    /// persisted records replay at the next open).
    pub fn clear(&self) {
        self.mem.clear();
    }
}

impl<V: Weigh + Clone> PersistentCache<V> {
    /// Looks up `key` in memory, bumping its recency on a hit.
    #[must_use]
    pub fn get(&self, key: &Fingerprint) -> Option<V> {
        self.mem.get(key)
    }
}

impl<V: Weigh + Codec + Clone + Send + Sync + 'static> PersistentCache<V> {
    /// Opens (creating if absent) the persistent store at `dir`,
    /// replaying every verified record whose segment salt matches
    /// `salt` into a fresh in-memory cache of `budget_bytes`.
    ///
    /// The wal is truncated to its verified prefix before the store
    /// accepts new appends, and a write-behind flusher thread is
    /// started; [`PersistentCache::insert`] stays non-blocking.
    ///
    /// # Errors
    ///
    /// [`PersistError`] when the directory cannot be created or read,
    /// or the wal cannot be opened for appending. Corrupt *content*
    /// never errors — it cold-starts (see [`RecoveryReport`]).
    pub fn open(
        dir: &Path,
        budget_bytes: usize,
        salt: u128,
        options: PersistOptions,
    ) -> Result<Self, PersistError> {
        if dir.exists() && !dir.is_dir() {
            return Err(PersistError::NotADirectory(dir.to_path_buf()));
        }
        fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;

        let mem = Arc::new(ShardedMemoCache::new(budget_bytes, options.shards));
        let mut report = RecoveryReport::default();
        let mut recovered: HashMap<Fingerprint, ()> = HashMap::new();

        let sealed = sealed_segments(dir)?;
        let mut next_segment_index = sealed.iter().map(|(i, _)| *i).max().unwrap_or(0) + 1;
        let mut sealed_live_bytes = 0u64;
        let mut dead_files: Vec<PathBuf> = Vec::new();

        let mut replay = |scan: &SegmentScan, report: &mut RecoveryReport| {
            match scan.health {
                SegmentHealth::Clean => {}
                SegmentHealth::TruncatedTail => report.truncated_segments += 1,
                SegmentHealth::ForeignSalt => report.foreign_salt_segments += 1,
                SegmentHealth::FutureVersion => report.future_version_segments += 1,
                SegmentHealth::CorruptHeader => report.corrupt_header_segments += 1,
            }
            for (key, bytes) in &scan.records {
                if let Some(value) = V::decode(bytes) {
                    report.recovered_bytes += bytes.len() as u64;
                    if recovered.insert(*key, ()).is_none() {
                        report.recovered_entries += 1;
                    }
                    mem.insert(*key, value);
                }
            }
        };

        for (_, path) in &sealed {
            let scan = scan_segment(path, salt)?;
            match scan.health {
                SegmentHealth::ForeignSalt | SegmentHealth::CorruptHeader => {
                    // Dead weight from another policy or a wreck: safe
                    // to drop at compaction (this is a cache — derived
                    // data). Future-version files are NOT ours to drop.
                    dead_files.push(path.clone());
                }
                SegmentHealth::FutureVersion => {}
                _ => sealed_live_bytes += scan.verified_bytes,
            }
            replay(&scan, &mut report);
        }

        // The wal: replay its verified prefix, then truncate to it so
        // appends continue from a clean edge. A foreign or corrupt wal
        // is sealed away (renamed) so its bytes are never mixed with
        // fresh records, and a fresh wal is started.
        let wal = wal_path(dir);
        let mut wal_offset = HEADER_BYTES as u64;
        let mut start_fresh_wal = true;
        if wal.exists() {
            let scan = scan_segment(&wal, salt)?;
            match scan.health {
                SegmentHealth::Clean | SegmentHealth::TruncatedTail => {
                    replay(&scan, &mut report);
                    wal_offset = scan.verified_bytes;
                    start_fresh_wal = false;
                }
                SegmentHealth::FutureVersion => {
                    // Park it under a sealed name; never truncate a
                    // newer format we don't understand.
                    let parked = segment_path(dir, next_segment_index);
                    fs::rename(&wal, &parked).map_err(|e| io_err(&wal, e))?;
                    next_segment_index += 1;
                    replay(&scan, &mut report);
                }
                SegmentHealth::ForeignSalt | SegmentHealth::CorruptHeader => {
                    let parked = segment_path(dir, next_segment_index);
                    fs::rename(&wal, &parked).map_err(|e| io_err(&wal, e))?;
                    dead_files.push(parked);
                    next_segment_index += 1;
                    replay(&scan, &mut report);
                }
            }
        }

        let file = if start_fresh_wal {
            let mut f = File::create(&wal).map_err(|e| io_err(&wal, e))?;
            f.write_all(&header_bytes(salt))
                .map_err(|e| io_err(&wal, e))?;
            f
        } else {
            let f = OpenOptions::new()
                .read(true)
                .write(true)
                .open(&wal)
                .map_err(|e| io_err(&wal, e))?;
            f.set_len(wal_offset).map_err(|e| io_err(&wal, e))?;
            let mut f = f;
            f.seek(SeekFrom::End(0)).map_err(|e| io_err(&wal, e))?;
            f
        };

        let counters = Arc::new(PersistCounters::default());
        let (tx, rx) = mpsc::channel::<FlushMsg>();
        let buf_pool: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));
        let compact_above = if options.compact_above_bytes == 0 {
            (budget_bytes as u64).saturating_mul(2).max(1)
        } else {
            options.compact_above_bytes
        };
        let flusher = Flusher {
            dir: dir.to_path_buf(),
            salt,
            writer: FaultWriter::new(file, options.faults, 0),
            wal_bytes: wal_offset,
            segment_bytes: options.segment_bytes.max(HEADER_BYTES as u64 + 1),
            compact_above,
            next_segment_index,
            sealed_bytes: sealed_live_bytes,
            mem: Arc::clone(&mem),
            counters: Arc::clone(&counters),
            buf_pool: Arc::clone(&buf_pool),
            dead_files,
        };
        let join = std::thread::Builder::new()
            .name("fp-memo-flusher".to_owned())
            .spawn(move || flusher.run(&rx))
            .map_err(|e| io_err(dir, e))?;

        Ok(PersistentCache {
            mem,
            persist: Some(PersistHandle {
                tx,
                buf_pool,
                counters,
                join: Some(join),
                dir: dir.to_path_buf(),
            }),
            recovery: report,
        })
    }

    /// Stores `value` under `key`: immediately visible in memory, and
    /// (when persistent) enqueued for the write-behind flusher. The
    /// encoding buffer is recycled through a pool, so the steady-state
    /// hot path performs no allocation beyond the value's own clone.
    pub fn insert(&self, key: Fingerprint, value: V) {
        if let Some(persist) = &self.persist {
            if !persist.counters.wedged.load(Ordering::Relaxed) {
                let mut buf = crate::lock_recovering(&persist.buf_pool)
                    .pop()
                    .unwrap_or_default();
                buf.clear();
                value.encode(&mut buf);
                if persist.tx.send(FlushMsg::Record { key, buf }).is_err() {
                    persist
                        .counters
                        .dropped_records
                        .fetch_add(1, Ordering::Relaxed);
                }
            } else {
                persist
                    .counters
                    .dropped_records
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        self.mem.insert(key, value);
    }

    /// Blocks until every record enqueued so far is appended and synced
    /// to disk. No-op for in-memory caches.
    ///
    /// # Errors
    ///
    /// [`PersistError::FlusherGone`] when the flusher has stopped (it
    /// wedged on an unrecoverable I/O fault); the in-memory cache is
    /// unaffected.
    pub fn flush(&self) -> Result<(), PersistError> {
        let Some(persist) = &self.persist else {
            return Ok(());
        };
        let (ack_tx, ack_rx) = mpsc::sync_channel(1);
        if persist.tx.send(FlushMsg::Sync(ack_tx)).is_err() {
            return Err(PersistError::FlusherGone);
        }
        match ack_rx.recv() {
            Ok(true) => Ok(()),
            Ok(false) | Err(_) => Err(PersistError::FlusherGone),
        }
    }
}

impl<V> Drop for PersistentCache<V> {
    fn drop(&mut self) {
        if let Some(mut persist) = self.persist.take() {
            // Closing the channel is the shutdown signal; the flusher
            // drains the queue, syncs, and exits.
            let join = persist.join.take();
            drop(persist);
            if let Some(join) = join {
                let _ = join.join();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Flusher
// ---------------------------------------------------------------------------

struct Flusher<V> {
    dir: PathBuf,
    salt: u128,
    writer: FaultWriter,
    wal_bytes: u64,
    segment_bytes: u64,
    compact_above: u64,
    next_segment_index: u64,
    sealed_bytes: u64,
    mem: Arc<ShardedMemoCache<V>>,
    counters: Arc<PersistCounters>,
    buf_pool: Arc<Mutex<Vec<Vec<u8>>>>,
    /// Foreign/corrupt segments queued for deletion at compaction.
    dead_files: Vec<PathBuf>,
}

impl<V: Weigh + Codec + Clone> Flusher<V> {
    fn run(mut self, rx: &Receiver<FlushMsg>) {
        let mut frame = Vec::with_capacity(64);
        loop {
            // Block for the next message; batch everything already
            // queued behind it before syncing.
            let msg = match rx.recv() {
                Ok(msg) => msg,
                Err(_) => break, // cache dropped: final sync below
            };
            let mut pending_acks: Vec<SyncSender<bool>> = Vec::new();
            let mut next = Some(msg);
            loop {
                match next {
                    Some(FlushMsg::Record { key, buf }) => {
                        self.append_record(key, &buf, &mut frame);
                        // Recycle the encode buffer; a full pool just
                        // lets it deallocate.
                        let mut pool = crate::lock_recovering(&self.buf_pool);
                        if pool.len() < 64 {
                            pool.push(buf);
                        }
                    }
                    Some(FlushMsg::Sync(ack)) => pending_acks.push(ack),
                    None => break,
                }
                next = rx.try_recv().ok();
            }
            if !pending_acks.is_empty() {
                let ok = !self.wedged() && self.sync();
                for ack in pending_acks {
                    let _ = ack.try_send(ok);
                }
            }
        }
        // Shutdown: nothing left in the queue; make the log durable.
        if !self.wedged() {
            let _ = self.writer.sync();
        }
    }

    fn wedged(&self) -> bool {
        self.counters.wedged.load(Ordering::Relaxed)
    }

    fn wedge(&mut self) {
        self.counters.wedged.store(true, Ordering::Relaxed);
        self.counters.io_errors.fetch_add(1, Ordering::Relaxed);
    }

    fn sync(&mut self) -> bool {
        match self.writer.sync() {
            Ok(()) => true,
            Err(_) => {
                self.wedge();
                false
            }
        }
    }

    fn append_record(&mut self, key: Fingerprint, value_bytes: &[u8], frame: &mut Vec<u8>) {
        if self.wedged() {
            self.counters
                .dropped_records
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
        let payload_len = 16 + value_bytes.len();
        if payload_len > MAX_RECORD_BYTES {
            self.counters
                .dropped_records
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
        frame.clear();
        frame.extend_from_slice(&(payload_len as u32).to_le_bytes());
        // CRC over the payload: key then value. Computed incrementally
        // over the two slices to avoid copying the value.
        let key_bytes = key.to_le_bytes();
        let mut crc = !0u32;
        for &b in key_bytes.iter().chain(value_bytes.iter()) {
            crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        frame.extend_from_slice(&(!crc).to_le_bytes());
        frame.extend_from_slice(&key_bytes);
        let head = frame.len();
        let total = head + value_bytes.len();
        // One contiguous append per record so a fault offset lands in a
        // single write: copy the value behind the frame.
        frame.extend_from_slice(value_bytes);
        match self.writer.append(frame) {
            Ok(()) => {
                self.counters
                    .appended_records
                    .fetch_add(1, Ordering::Relaxed);
                self.counters
                    .appended_bytes
                    .fetch_add(total as u64, Ordering::Relaxed);
                self.wal_bytes += total as u64;
                if self.writer.wedged {
                    // A short write fired: the log now ends in a torn
                    // record by design; stop appending.
                    self.counters.wedged.store(true, Ordering::Relaxed);
                    return;
                }
                if self.wal_bytes >= self.segment_bytes {
                    self.rotate();
                }
            }
            Err(_) => self.wedge(),
        }
    }

    /// Seals the wal under the next segment name (atomic rename) and
    /// starts a fresh wal. On any failure the writer wedges.
    fn rotate(&mut self) {
        if self.writer.sync().is_err() {
            self.wedge();
            return;
        }
        let wal = wal_path(&self.dir);
        let sealed = segment_path(&self.dir, self.next_segment_index);
        if fs::rename(&wal, &sealed).is_err() {
            self.wedge();
            return;
        }
        self.next_segment_index += 1;
        self.sealed_bytes += self.wal_bytes;
        self.counters.rotations.fetch_add(1, Ordering::Relaxed);
        let mut file = match File::create(&wal) {
            Ok(f) => f,
            Err(_) => {
                self.wedge();
                return;
            }
        };
        if file.write_all(&header_bytes(self.salt)).is_err() {
            self.wedge();
            return;
        }
        self.wal_bytes = HEADER_BYTES as u64;
        let written = self.writer.written;
        self.writer = FaultWriter {
            file,
            plan: std::mem::take(&mut self.writer.plan),
            written,
            wedged: false,
        };
        if self.sealed_bytes > self.compact_above || !self.dead_files.is_empty() {
            self.compact();
        }
    }

    /// Rewrites the live in-memory entries into one fresh sealed
    /// segment, then deletes the segments it supersedes (and any dead
    /// foreign-salt files). Crash-safe: the new segment is written to a
    /// temporary name and atomically renamed before anything is
    /// deleted; a crash in between only leaves duplicates for replay to
    /// deduplicate.
    fn compact(&mut self) {
        let old: Vec<PathBuf> = match sealed_segments(&self.dir) {
            Ok(segments) => segments.into_iter().map(|(_, p)| p).collect(),
            Err(_) => return,
        };
        let tmp = self.dir.join("compact.tmp");
        let target = segment_path(&self.dir, self.next_segment_index);
        let write_all = || -> std::io::Result<()> {
            let mut file = File::create(&tmp)?;
            file.write_all(&header_bytes(self.salt))?;
            let mut frame = Vec::new();
            let mut value_buf = Vec::new();
            let mut result: std::io::Result<()> = Ok(());
            self.mem.for_each(|key, value| {
                if result.is_err() {
                    return;
                }
                value_buf.clear();
                value.encode(&mut value_buf);
                frame.clear();
                frame.extend_from_slice(&((16 + value_buf.len()) as u32).to_le_bytes());
                let key_bytes = key.to_le_bytes();
                let mut crc = !0u32;
                for &b in key_bytes.iter().chain(value_buf.iter()) {
                    crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
                }
                frame.extend_from_slice(&(!crc).to_le_bytes());
                frame.extend_from_slice(&key_bytes);
                frame.extend_from_slice(&value_buf);
                if let Err(e) = file.write_all(&frame) {
                    result = Err(e);
                }
            });
            result?;
            file.sync_all()?;
            Ok(())
        };
        if write_all().is_err() {
            let _ = fs::remove_file(&tmp);
            self.counters.io_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if fs::rename(&tmp, &target).is_err() {
            let _ = fs::remove_file(&tmp);
            self.counters.io_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.next_segment_index += 1;
        for path in old.iter().chain(self.dead_files.iter()) {
            if *path == target {
                continue;
            }
            let _ = fs::remove_file(path);
        }
        self.dead_files.clear();
        self.sealed_bytes = fs::metadata(&target).map(|m| m.len()).unwrap_or(0);
        self.counters.compactions.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn header_round_trips_through_scan_constants() {
        let h = header_bytes(0xDEAD_BEEF);
        assert_eq!(&h[0..8], SEGMENT_MAGIC);
        assert_eq!(
            u32::from_le_bytes([h[8], h[9], h[10], h[11]]),
            SEGMENT_VERSION
        );
        let crc = u32::from_le_bytes([h[32], h[33], h[34], h[35]]);
        assert_eq!(crc, crc32(&h[0..32]));
    }

    #[test]
    fn fault_plan_env_round_trip() {
        // Only checks the parsing contract on unset vars (set/remove of
        // process env is racy under the parallel test harness).
        let plan = IoFaultPlan::from_env();
        let _ = plan.is_empty();
        assert!(IoFaultPlan::none().is_empty());
    }
}
