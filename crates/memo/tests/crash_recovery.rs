//! Crash-recovery harness: a *separate writer process* is killed
//! mid-flush (`IoFaultPlan::kill_at` → `std::process::abort`, the
//! closest std-only stand-in for a power cut) and the parent asserts
//! the reopened store is a **verified prefix** — every recovered entry
//! byte-identical to the deterministic value the writer computed, no
//! entry past the kill point ever served, and the store fully writable
//! afterwards.
//!
//! The child is this same test binary re-executed with
//! `FP_MEMO_CRASH_CHILD` set, filtered to the `crash_child_writer`
//! "test", which performs the doomed writes. Without the env var that
//! test is a no-op, so normal runs are unaffected.

use std::path::{Path, PathBuf};
use std::process::Command;

use fp_memo::{
    scan_store, Codec, Fingerprint, PersistOptions, PersistentCache, Weigh, HEADER_BYTES,
    RECORD_FRAME_BYTES,
};

#[derive(Debug, Clone, PartialEq, Eq)]
struct Blob(Vec<u8>);

impl Weigh for Blob {
    fn weight_bytes(&self) -> usize {
        self.0.len()
    }
}

impl Codec for Blob {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0);
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        Some(Blob(bytes.to_vec()))
    }
}

const SALT: u128 = 0x000C_4A54_C0DE;
const ENTRIES: u64 = 12;
const VALUE_LEN: usize = 32;
const RECORD_LEN: usize = RECORD_FRAME_BYTES + 16 + VALUE_LEN;

/// The deterministic workload both processes agree on: what a "fresh
/// optimize" of entry `i` produces.
fn entry(i: u64) -> (Fingerprint, Blob) {
    let key = (u128::from(i ^ 0xA5) << 64) | u128::from(i.wrapping_mul(0x2545_F491));
    let value = (0..VALUE_LEN)
        .map(|j| {
            (i as u8)
                .wrapping_mul(67)
                .wrapping_add((j as u8).wrapping_mul(13))
        })
        .collect();
    (key, Blob(value))
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fp-memo-crash-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The doomed writer, run in a child process. Inserts the deterministic
/// workload and flushes; the armed `kill_at` aborts the process while
/// the flusher is mid-append.
#[test]
fn crash_child_writer() {
    let Ok(dir) = std::env::var("FP_MEMO_CRASH_CHILD") else {
        return; // normal test run: nothing to do
    };
    let options = PersistOptions {
        faults: fp_memo::IoFaultPlan::from_env(),
        ..PersistOptions::default()
    };
    let cache: PersistentCache<Blob> =
        PersistentCache::open(Path::new(&dir), 1 << 20, SALT, options).expect("child open");
    for i in 0..ENTRIES {
        let (k, v) = entry(i);
        cache.insert(k, v);
    }
    // The abort fires inside the flusher during this drain.
    let _ = cache.flush();
    // Only reached if the kill offset lies beyond the written bytes.
    std::process::exit(42);
}

/// Spawns the doomed writer against `dir` with `kill_at` armed and
/// asserts it died by abort (not a clean exit).
fn run_killed_writer(dir: &Path, kill_at: u64) {
    let exe = std::env::current_exe().expect("test binary path");
    let status = Command::new(exe)
        .args([
            "crash_child_writer",
            "--exact",
            "--test-threads=1",
            "--nocapture",
        ])
        .env("FP_MEMO_CRASH_CHILD", dir.as_os_str())
        .env("FP_MEMO_KILL_AT", kill_at.to_string())
        .status()
        .expect("spawn crash child");
    assert!(
        !status.success(),
        "the writer must die mid-flush (kill_at={kill_at}), got {status:?}"
    );
}

/// After the crash, the reopened store must hold exactly the whole
/// records before `kill_at`, each byte-identical to the deterministic
/// workload — the verified-prefix property.
fn assert_verified_prefix(dir: &Path, kill_at: u64) {
    let expect_prefix = (kill_at / RECORD_LEN as u64).min(ENTRIES);

    // Forensic layer first: the on-disk verified prefix is exactly the
    // expected encodings.
    let scan = scan_store(dir, SALT).expect("scan");
    let records = scan.records();
    assert_eq!(
        records.len() as u64,
        expect_prefix,
        "kill at byte {kill_at}: whole records before the tear survive"
    );
    for (i, (key, bytes)) in records.iter().enumerate() {
        let (k, v) = entry(i as u64);
        assert_eq!(*key, k, "record {i} key");
        assert_eq!(
            *bytes,
            v.0.as_slice(),
            "record {i} bytes identical to a fresh compute"
        );
    }

    // Cache layer: recovery serves that prefix and nothing else.
    let cache: PersistentCache<Blob> =
        PersistentCache::open(dir, 1 << 20, SALT, PersistOptions::default()).expect("reopen");
    assert_eq!(cache.recovery().recovered_entries as u64, expect_prefix);
    for i in 0..expect_prefix {
        let (k, v) = entry(i);
        assert_eq!(cache.get(&k), Some(v), "prefix entry {i}");
    }
    for i in expect_prefix..ENTRIES {
        let (k, _) = entry(i);
        assert!(
            cache.get(&k).is_none(),
            "entry {i} was torn away and must never be served"
        );
    }

    // The recovered store accepts and persists new work cleanly.
    let (k, v) = entry(900 + kill_at);
    cache.insert(k, v.clone());
    cache.flush().expect("post-crash flush");
    drop(cache);
    let rescan = scan_store(dir, SALT).expect("rescan");
    assert!(
        rescan
            .segments
            .iter()
            .all(|s| s.health == fp_memo::SegmentHealth::Clean),
        "after recovery + append the log verifies end to end"
    );
}

#[test]
fn kill_mid_record_recovers_the_verified_prefix() {
    // Kill points: inside the first record's frame, mid-payload of
    // record 3, one byte before record 8 completes, and on a record
    // boundary.
    for (tag, kill_at) in [
        ("frame", 3u64),
        ("mid", 3 * RECORD_LEN as u64 + 20),
        ("almost", 8 * RECORD_LEN as u64 - 1),
        ("boundary", 5 * RECORD_LEN as u64),
    ] {
        let dir = scratch(&format!("kill-{tag}"));
        run_killed_writer(&dir, kill_at);
        assert_verified_prefix(&dir, kill_at);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn kill_beyond_the_log_loses_nothing() {
    let dir = scratch("kill-beyond");
    let exe = std::env::current_exe().expect("test binary path");
    let status = Command::new(exe)
        .args([
            "crash_child_writer",
            "--exact",
            "--test-threads=1",
            "--nocapture",
        ])
        .env("FP_MEMO_CRASH_CHILD", dir.as_os_str())
        .env(
            "FP_MEMO_KILL_AT",
            (ENTRIES * RECORD_LEN as u64 + 1000).to_string(),
        )
        .status()
        .expect("spawn child");
    // The child flushes everything and exits via its sentinel code.
    assert_eq!(status.code(), Some(42), "un-triggered kill: clean run");
    let cache: PersistentCache<Blob> =
        PersistentCache::open(&dir, 1 << 20, SALT, PersistOptions::default()).expect("reopen");
    assert_eq!(cache.recovery().recovered_entries as u64, ENTRIES);
    for i in 0..ENTRIES {
        let (k, v) = entry(i);
        assert_eq!(cache.get(&k), Some(v));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sanity check on the header/record constants the offset math uses; if
/// the format evolves, this fails before the offset-dependent tests
/// mislead anyone.
#[test]
fn fixture_offsets_track_the_format() {
    let dir = scratch("layout");
    let cache: PersistentCache<Blob> =
        PersistentCache::open(&dir, 1 << 20, SALT, PersistOptions::default()).expect("open");
    let (k, v) = entry(0);
    cache.insert(k, v);
    cache.flush().expect("flush");
    drop(cache);
    let wal = std::fs::read(dir.join("wal.fpm")).expect("read wal");
    assert_eq!(wal.len(), HEADER_BYTES + RECORD_LEN);
    let _ = std::fs::remove_dir_all(&dir);
}
