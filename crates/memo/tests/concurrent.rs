//! Concurrency tests for the sharded cache: many threads hammering the
//! same keys (including keys that collide onto one shard) must leave
//! the merged counters exactly consistent — every lookup accounted as a
//! hit or a miss, every store as an insertion — and the byte accounting
//! within budget.

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

use fp_memo::{CacheStats, Fingerprint, ShardedMemoCache, Weigh, ENTRY_OVERHEAD_BYTES};

#[derive(Clone)]
struct Blob(Vec<u8>);

impl Weigh for Blob {
    fn weight_bytes(&self) -> usize {
        self.0.len()
    }
}

const THREADS: usize = 8;
const OPS_PER_THREAD: usize = 4_000;

/// Hammers a generously-budgeted cache from many threads with a small
/// key universe and checks the merged counters add up exactly: with no
/// evictions possible, hits + misses == lookups and insertions == stores.
#[test]
fn shard_hammering_keeps_exact_counter_totals() {
    let blob = || Blob(vec![7u8; 32]);
    let weight = blob().weight_bytes() + ENTRY_OVERHEAD_BYTES;
    // 64 keys, room for all of them in every shard: nothing ever evicts.
    let keys: Vec<Fingerprint> = (0..64u128).map(|k| k.wrapping_mul(0x9e37)).collect();
    let cache = ShardedMemoCache::new(64 * weight * 16, 16);
    let lookups = AtomicU64::new(0);
    let stores = AtomicU64::new(0);

    thread::scope(|scope| {
        for t in 0..THREADS {
            let cache = &cache;
            let keys = &keys;
            let lookups = &lookups;
            let stores = &stores;
            scope.spawn(move || {
                // Deterministic per-thread op mix, no shared RNG needed.
                let mut state = (t as u64).wrapping_mul(0x2545_f491_4f6c_dd1d) | 1;
                for _ in 0..OPS_PER_THREAD {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let key = keys[(state >> 33) as usize % keys.len()];
                    if state & 3 == 0 {
                        cache.insert(key, blob());
                        stores.fetch_add(1, Ordering::Relaxed);
                    } else {
                        let _ = cache.get(&key);
                        lookups.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    let stats: CacheStats = cache.stats();
    assert_eq!(
        stats.hits + stats.misses,
        lookups.load(Ordering::Relaxed),
        "every lookup is exactly one hit or one miss"
    );
    assert_eq!(
        stats.insertions,
        stores.load(Ordering::Relaxed),
        "every store is exactly one insertion"
    );
    assert_eq!(stats.evictions, 0, "budget never forces an eviction");
    assert!(cache.len() <= keys.len());
    assert!(cache.bytes() <= cache.budget_bytes());
}

/// Forces every key onto a single shard (shards = 1) under a tiny
/// budget: the LRU churns constantly but the counters and the byte
/// accounting stay exact.
#[test]
fn single_shard_churn_stays_consistent() {
    let blob = || Blob(vec![3u8; 64]);
    let weight = blob().weight_bytes() + ENTRY_OVERHEAD_BYTES;
    // Room for only 4 of the 64 keys: heavy eviction traffic.
    let cache = ShardedMemoCache::new(4 * weight, 1);
    let stores = AtomicU64::new(0);

    thread::scope(|scope| {
        for t in 0..THREADS {
            let cache = &cache;
            let stores = &stores;
            scope.spawn(move || {
                for i in 0..OPS_PER_THREAD {
                    let key = ((t * OPS_PER_THREAD + i) % 64) as Fingerprint;
                    if i % 2 == 0 {
                        cache.insert(key, blob());
                        stores.fetch_add(1, Ordering::Relaxed);
                    } else {
                        let _ = cache.get(&key);
                    }
                }
            });
        }
    });

    let stats = cache.stats();
    assert_eq!(stats.insertions, stores.load(Ordering::Relaxed));
    assert!(
        stats.evictions <= stats.insertions,
        "cannot evict more than was ever inserted"
    );
    assert!(cache.bytes() <= cache.budget_bytes(), "budget respected");
    assert!(
        cache.len() <= 4,
        "never more resident than the budget holds"
    );
}

/// A panic inside a `get_or_insert_with` closure poisons the shard
/// lock mid-operation; the cache must recover — subsequent hits,
/// inserts, and stats on that same shard keep working with exact
/// counters, and entries present before the panic stay readable.
#[test]
fn poisoned_shard_recovers_with_stats_intact() {
    let cache: ShardedMemoCache<Blob> = ShardedMemoCache::new(1 << 20, 4);
    // Key 0 and key 1<<64... route to different shards only if upper
    // bits differ; use the same upper bits to hit ONE shard for both
    // the pre-poison entry and the panicking call.
    let survivor: Fingerprint = 5; // upper 64 bits zero → shard 0
    let victim: Fingerprint = 9; // shard 0 as well
    cache.insert(survivor, Blob(vec![1u8; 16]));
    let before = cache.stats();
    assert_eq!(before.insertions, 1);

    // Panic while holding the shard lock (inside the build closure).
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        cache.get_or_insert_with(victim, || panic!("tenant panicked mid-build"))
    }));
    assert!(panicked.is_err(), "the panic must propagate to the caller");

    // The shard keeps serving: the pre-panic entry is still a hit...
    assert!(
        cache.get(&survivor).is_some(),
        "pre-panic entry must survive a poisoned shard"
    );
    // ...new inserts land...
    cache.insert(victim, Blob(vec![2u8; 16]));
    assert!(cache.get(&victim).is_some());
    // ...and counters stay exact, not zeroed-out for the shard. The
    // panicking get_or_insert_with accounted its lookup as a miss
    // before the closure ran.
    let after = cache.stats();
    assert_eq!(after.insertions, 2, "both successful inserts counted");
    assert_eq!(after.hits, before.hits + 2);
    assert_eq!(after.misses, before.misses + 1);
    assert!(cache.bytes() <= cache.budget_bytes());

    // get_or_insert_with itself still works on the recovered shard.
    let built = cache.get_or_insert_with(77, || Blob(vec![3u8; 8]));
    assert_eq!(built.0, vec![3u8; 8]);
    assert!(cache.contains(&77));
}

/// Readers observe whole values, never torn ones: concurrent writers
/// store self-describing blobs and every read must round-trip.
#[test]
fn concurrent_reads_always_see_whole_values() {
    let cache: ShardedMemoCache<Blob> = ShardedMemoCache::new(1 << 20, 8);
    thread::scope(|scope| {
        for t in 0..THREADS {
            let cache = &cache;
            scope.spawn(move || {
                for i in 0..OPS_PER_THREAD {
                    let key = (i % 16) as Fingerprint;
                    // Each value is a run of one byte: a torn read would
                    // show a mix.
                    let fill = ((t * 31 + i) % 251) as u8;
                    cache.insert(key, Blob(vec![fill; 48]));
                    if let Some(got) = cache.get(&key) {
                        let first = got.0.first().copied().unwrap_or(0);
                        assert!(
                            got.0.iter().all(|&b| b == first),
                            "torn value observed at key {key}"
                        );
                    }
                }
            });
        }
    });
}
