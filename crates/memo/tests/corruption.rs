//! Corruption corpus: every byte-level mutilation of a segment file the
//! recovery path must survive — truncated tails at *every* byte
//! boundary, flipped CRC bytes, flipped payload bytes, wrong policy
//! salts, corrupt headers, and future format versions. The contract
//! under test: recovery degrades to a cold start (wrong salt/version,
//! wrecked header) or a verified prefix (torn/corrupt tail); it never
//! panics and never serves bytes that differ from what was logged.

use std::path::{Path, PathBuf};

use fp_memo::{
    crc32, scan_store, Codec, Fingerprint, PersistOptions, PersistentCache, SegmentHealth, Weigh,
    HEADER_BYTES, RECORD_FRAME_BYTES,
};

#[derive(Debug, Clone, PartialEq, Eq)]
struct Blob(Vec<u8>);

impl Weigh for Blob {
    fn weight_bytes(&self) -> usize {
        self.0.len()
    }
}

impl Codec for Blob {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0);
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        Some(Blob(bytes.to_vec()))
    }
}

const SALT: u128 = 0xFEED_F00D;
const ENTRIES: u64 = 6;
const VALUE_LEN: usize = 24;
const RECORD_LEN: usize = RECORD_FRAME_BYTES + 16 + VALUE_LEN;

fn entry(i: u64) -> (Fingerprint, Blob) {
    let key = (u128::from(i) << 64) | u128::from(i.wrapping_mul(0x51_7CC1));
    let value = (0..VALUE_LEN).map(|j| (i as u8) ^ (j as u8)).collect();
    (key, Blob(value))
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fp-memo-corrupt-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Builds a clean single-wal store with [`ENTRIES`] fixed-size records
/// and returns the wal's bytes.
fn build_store(dir: &Path) -> Vec<u8> {
    let cache: PersistentCache<Blob> =
        PersistentCache::open(dir, 1 << 20, SALT, PersistOptions::default()).expect("open");
    for i in 0..ENTRIES {
        let (k, v) = entry(i);
        cache.insert(k, v);
    }
    cache.flush().expect("flush");
    drop(cache);
    let bytes = std::fs::read(dir.join("wal.fpm")).expect("read wal");
    assert_eq!(
        bytes.len(),
        HEADER_BYTES + ENTRIES as usize * RECORD_LEN,
        "fixture layout drifted; update the corpus offsets"
    );
    bytes
}

/// Reopens the mutilated store and checks the verified-prefix contract:
/// exactly the first `expect_prefix` entries are served, byte-identical;
/// later entries miss; the cache accepts new work afterwards.
fn assert_recovers_prefix(dir: &Path, expect_prefix: u64) {
    let cache: PersistentCache<Blob> =
        PersistentCache::open(dir, 1 << 20, SALT, PersistOptions::default()).expect("open");
    let report = cache.recovery();
    assert_eq!(
        report.recovered_entries as u64, expect_prefix,
        "recovered exactly the verified prefix"
    );
    for i in 0..expect_prefix {
        let (k, v) = entry(i);
        assert_eq!(cache.get(&k), Some(v), "prefix entry {i} byte-identical");
    }
    for i in expect_prefix..ENTRIES {
        let (k, _) = entry(i);
        assert!(
            cache.get(&k).is_none(),
            "entry {i} past the tear never hits"
        );
    }
    // The recovered store must stay writable.
    let (k, v) = entry(1000 + expect_prefix);
    cache.insert(k, v.clone());
    cache.flush().expect("post-recovery flush");
    assert_eq!(cache.get(&k), Some(v));
}

#[test]
fn truncation_at_every_byte_boundary_yields_a_verified_prefix() {
    let dir = scratch("truncate");
    let clean = build_store(&dir);
    let wal = dir.join("wal.fpm");
    for cut in 0..clean.len() {
        std::fs::write(&wal, &clean[..cut]).expect("write truncated wal");
        // Scanning classifies without panicking at any cut point.
        let scan = scan_store(&dir, SALT).expect("scan");
        let expect = if cut < HEADER_BYTES {
            assert_eq!(scan.segments[0].health, SegmentHealth::CorruptHeader);
            0
        } else {
            let whole = ((cut - HEADER_BYTES) / RECORD_LEN) as u64;
            if cut > HEADER_BYTES + whole as usize * RECORD_LEN {
                assert_eq!(scan.segments[0].health, SegmentHealth::TruncatedTail);
            }
            whole
        };
        assert_eq!(scan.segments[0].records.len() as u64, expect);
        // Fold in a full open/recover cycle at record granularity (every
        // byte would re-run the store 400+ times for little extra signal).
        if cut % RECORD_LEN == 7 {
            assert_recovers_prefix(&dir, expect);
            std::fs::remove_file(&wal).ok();
            // Reset: assert_recovers_prefix appended to the store.
            for f in std::fs::read_dir(&dir).expect("read dir").flatten() {
                std::fs::remove_file(f.path()).ok();
            }
            std::fs::write(&wal, &clean[..cut]).expect("rewrite");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn each_flipped_crc_byte_cuts_the_log_at_that_record() {
    let dir = scratch("crc-flip");
    let clean = build_store(&dir);
    let wal = dir.join("wal.fpm");
    for record in 0..ENTRIES as usize {
        let crc_at = HEADER_BYTES + record * RECORD_LEN + 4;
        for byte in 0..4 {
            let mut bytes = clean.clone();
            bytes[crc_at + byte] ^= 0x40;
            std::fs::write(&wal, &bytes).expect("write corrupted wal");
            let scan = scan_store(&dir, SALT).expect("scan");
            assert_eq!(scan.segments[0].health, SegmentHealth::TruncatedTail);
            assert_eq!(
                scan.segments[0].records.len(),
                record,
                "a flipped CRC byte ends the verified prefix at record {record}"
            );
        }
    }
    // Full recovery cycle on one representative flip.
    let mut bytes = clean.clone();
    bytes[HEADER_BYTES + 2 * RECORD_LEN + 5] ^= 0x01;
    for f in std::fs::read_dir(&dir).expect("read dir").flatten() {
        std::fs::remove_file(f.path()).ok();
    }
    std::fs::write(&wal, &bytes).expect("write");
    assert_recovers_prefix(&dir, 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flipped_payload_bits_are_never_served() {
    let dir = scratch("payload-flip");
    let clean = build_store(&dir);
    let wal = dir.join("wal.fpm");
    // Flip one bit in each record's *value* region: the CRC mismatch
    // must cut the log there — corrupted bytes are never returned.
    for record in 0..ENTRIES as usize {
        let flip_at = HEADER_BYTES + record * RECORD_LEN + RECORD_FRAME_BYTES + 16 + 3;
        let mut bytes = clean.clone();
        bytes[flip_at] ^= 0x80;
        std::fs::write(&wal, &bytes).expect("write");
        let scan = scan_store(&dir, SALT).expect("scan");
        assert_eq!(scan.segments[0].records.len(), record);
        for (i, (key, value)) in scan.segments[0].records.iter().enumerate() {
            let (k, v) = entry(i as u64);
            assert_eq!((*key, value.as_slice()), (k, v.0.as_slice()));
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wrong_salt_and_future_version_cold_start_without_panic() {
    let dir = scratch("salt-version");
    let clean = build_store(&dir);
    let wal = dir.join("wal.fpm");

    // Rewrite the salt (re-sealing the header CRC so only the salt
    // check can reject it): cold start, no stale entries.
    let mut foreign = clean.clone();
    foreign[16..32].copy_from_slice(&(SALT ^ 0xDEAD).to_le_bytes());
    let crc = crc32(&foreign[0..32]);
    foreign[32..36].copy_from_slice(&crc.to_le_bytes());
    std::fs::write(&wal, &foreign).expect("write foreign wal");
    {
        let cache: PersistentCache<Blob> =
            PersistentCache::open(&dir, 1 << 20, SALT, PersistOptions::default()).expect("open");
        assert_eq!(cache.recovery().recovered_entries, 0);
        assert!(cache.recovery().foreign_salt_segments > 0);
        for i in 0..ENTRIES {
            assert!(cache.get(&entry(i).0).is_none());
        }
    }
    for f in std::fs::read_dir(&dir).expect("read dir").flatten() {
        std::fs::remove_file(f.path()).ok();
    }

    // Bump the version (CRC re-sealed): cold start, file preserved.
    let mut future = clean.clone();
    let version = u32::from_le_bytes([future[8], future[9], future[10], future[11]]) + 7;
    future[8..12].copy_from_slice(&version.to_le_bytes());
    let crc = crc32(&future[0..32]);
    future[32..36].copy_from_slice(&crc.to_le_bytes());
    std::fs::write(&wal, &future).expect("write future wal");
    {
        let cache: PersistentCache<Blob> =
            PersistentCache::open(&dir, 1 << 20, SALT, PersistOptions::default()).expect("open");
        assert_eq!(cache.recovery().recovered_entries, 0);
        assert_eq!(cache.recovery().future_version_segments, 1);
        for i in 0..ENTRIES {
            assert!(cache.get(&entry(i).0).is_none());
        }
        cache.insert(entry(7).0, entry(7).1);
        cache
            .flush()
            .expect("flush next to a parked future segment");
    }
    // The future-format file was parked under a sealed name, unmodified.
    let parked: Vec<_> = std::fs::read_dir(&dir)
        .expect("read dir")
        .flatten()
        .filter(|e| {
            e.file_name().to_string_lossy().starts_with("seg-")
                && std::fs::read(e.path()).is_ok_and(|b| b == future)
        })
        .collect();
    assert_eq!(parked.len(), 1, "future-version bytes preserved untouched");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_and_empty_files_never_panic_recovery() {
    let corpora: &[&[u8]] = &[
        b"",
        b"F",
        b"FPMEMOS1",
        b"not a segment file at all, just prose",
        &[0xFF; 64],
        &[0x00; 39], // one byte short of a header
    ];
    for (i, garbage) in corpora.iter().enumerate() {
        let dir = scratch(&format!("garbage-{i}"));
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("wal.fpm"), garbage).expect("write garbage wal");
        std::fs::write(dir.join("seg-0000000001.fpm"), garbage).expect("write garbage seg");
        let cache: PersistentCache<Blob> =
            PersistentCache::open(&dir, 1 << 20, SALT, PersistOptions::default()).expect("open");
        assert!(cache.recovery().is_cold());
        assert!(cache.recovery().corrupt_header_segments > 0);
        // And it works as a fresh store.
        let (k, v) = entry(3);
        cache.insert(k, v.clone());
        cache.flush().expect("flush");
        assert_eq!(cache.get(&k), Some(v));
        drop(cache);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
