//! Persistent-store behaviour under normal and degraded conditions:
//! warm restarts, rotation, compaction, salt/version cold starts, and
//! ENOSPC degradation to in-memory service.

use std::path::PathBuf;

use fp_memo::{
    scan_store, Codec, Fingerprint, IoFaultPlan, PersistOptions, PersistentCache, SegmentHealth,
    Weigh,
};

#[derive(Debug, Clone, PartialEq, Eq)]
struct Blob(Vec<u8>);

impl Weigh for Blob {
    fn weight_bytes(&self) -> usize {
        self.0.len()
    }
}

impl Codec for Blob {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0);
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        Some(Blob(bytes.to_vec()))
    }
}

/// A fresh scratch directory under the system temp dir, unique per
/// test, wiped on creation so reruns start clean.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fp-memo-persist-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic test entries: key `i` maps to a value whose bytes are
/// derived from `i`, so both sides of a restart can recompute them.
fn entry(i: u64) -> (Fingerprint, Blob) {
    let key = (u128::from(i) << 64) | u128::from(i.wrapping_mul(0x9E37_79B9));
    let len = 16 + (i as usize % 48);
    let value = (0..len)
        .map(|j| (i as u8).wrapping_mul(31).wrapping_add(j as u8))
        .collect();
    (key, Blob(value))
}

const SALT: u128 = 0x00C0_FFEE;

#[test]
fn warm_restart_replays_everything_flushed() {
    let dir = scratch("warm-restart");
    {
        let cache: PersistentCache<Blob> =
            PersistentCache::open(&dir, 1 << 20, SALT, PersistOptions::default()).expect("open");
        assert!(cache.recovery().is_cold());
        for i in 0..32 {
            let (k, v) = entry(i);
            cache.insert(k, v);
        }
        cache.flush().expect("flush");
    }
    let cache: PersistentCache<Blob> =
        PersistentCache::open(&dir, 1 << 20, SALT, PersistOptions::default()).expect("reopen");
    let report = cache.recovery();
    assert_eq!(report.recovered_entries, 32);
    assert_eq!(report.truncated_segments, 0);
    for i in 0..32 {
        let (k, v) = entry(i);
        assert_eq!(cache.get(&k), Some(v), "entry {i} must survive restart");
    }
    // Hits above, plus replay insertions, are all accounted.
    assert_eq!(cache.stats().hits, 32);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn in_memory_mode_unifies_the_api() {
    let cache: PersistentCache<Blob> = PersistentCache::in_memory(1 << 20, 4);
    assert!(!cache.is_persistent());
    assert!(cache.store_dir().is_none());
    assert!(cache.persist_stats().is_none());
    let (k, v) = entry(1);
    cache.insert(k, v.clone());
    assert_eq!(cache.get(&k), Some(v));
    cache.flush().expect("flush is a no-op in memory");
    assert!(cache.recovery().is_cold());
}

#[test]
fn rotation_seals_segments_and_preserves_content() {
    let dir = scratch("rotation");
    let options = PersistOptions {
        segment_bytes: 256,           // force several rotations
        compact_above_bytes: 1 << 30, // keep compaction out of this test
        ..PersistOptions::default()
    };
    {
        let cache: PersistentCache<Blob> =
            PersistentCache::open(&dir, 1 << 20, SALT, options.clone()).expect("open");
        for i in 0..64 {
            let (k, v) = entry(i);
            cache.insert(k, v);
        }
        cache.flush().expect("flush");
        let stats = cache.persist_stats().expect("persistent");
        assert!(stats.rotations > 0, "tiny segments must rotate");
        assert_eq!(stats.appended_records, 64);
        assert!(!stats.wedged);
    }
    let sealed = std::fs::read_dir(&dir)
        .expect("read store dir")
        .filter_map(Result::ok)
        .filter(|e| e.file_name().to_string_lossy().starts_with("seg-"))
        .count();
    assert!(sealed > 0, "rotation leaves sealed segment files behind");
    let cache: PersistentCache<Blob> =
        PersistentCache::open(&dir, 1 << 20, SALT, options).expect("reopen");
    assert_eq!(cache.recovery().recovered_entries, 64);
    for i in 0..64 {
        let (k, v) = entry(i);
        assert_eq!(cache.get(&k), Some(v));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_bounds_disk_and_keeps_live_entries() {
    let dir = scratch("compaction");
    let options = PersistOptions {
        segment_bytes: 512,
        compact_above_bytes: 2048,
        ..PersistOptions::default()
    };
    {
        let cache: PersistentCache<Blob> =
            PersistentCache::open(&dir, 1 << 20, SALT, options.clone()).expect("open");
        // Rewrite the same keys many times: most records become dead.
        for round in 0..16 {
            for i in 0..8 {
                let (k, _) = entry(i);
                cache.insert(k, Blob(vec![round as u8; 40]));
            }
        }
        cache.flush().expect("flush");
        let stats = cache.persist_stats().expect("persistent");
        assert!(stats.compactions > 0, "dead segments must be compacted");
    }
    // Disk holds the compacted live set, not 128 records' worth.
    let disk: u64 = std::fs::read_dir(&dir)
        .expect("read store dir")
        .filter_map(Result::ok)
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum();
    assert!(
        disk < 16 * 8 * 64,
        "compaction must bound disk usage, found {disk} bytes"
    );
    let cache: PersistentCache<Blob> =
        PersistentCache::open(&dir, 1 << 20, SALT, options).expect("reopen");
    for i in 0..8 {
        let (k, _) = entry(i);
        let got = cache.get(&k).expect("live key survives compaction");
        assert_eq!(got.0, vec![15u8; 40], "latest write wins");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wrong_salt_is_a_cold_start_never_stale_bytes() {
    let dir = scratch("salt");
    {
        let cache: PersistentCache<Blob> =
            PersistentCache::open(&dir, 1 << 20, SALT, PersistOptions::default()).expect("open");
        for i in 0..8 {
            let (k, v) = entry(i);
            cache.insert(k, v);
        }
        cache.flush().expect("flush");
    }
    // A different policy salt: nothing from the old store may be served.
    let other_salt = SALT ^ 1;
    {
        let cache: PersistentCache<Blob> =
            PersistentCache::open(&dir, 1 << 20, other_salt, PersistOptions::default())
                .expect("reopen with other salt");
        let report = cache.recovery();
        assert_eq!(report.recovered_entries, 0, "foreign salt = cold start");
        assert!(report.foreign_salt_segments > 0);
        for i in 0..8 {
            let (k, _) = entry(i);
            assert!(cache.get(&k).is_none(), "stale policy bytes must not hit");
        }
        // The store is fully usable under the new salt.
        let (k, v) = entry(100);
        cache.insert(k, v);
        cache.flush().expect("flush under new salt");
    }
    // And switching back to the original salt now ignores the new
    // store's segments in turn.
    let cache: PersistentCache<Blob> =
        PersistentCache::open(&dir, 1 << 20, SALT, PersistOptions::default()).expect("reopen");
    let (k100, _) = entry(100);
    assert!(cache.get(&k100).is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn future_version_segments_are_preserved_not_replayed() {
    let dir = scratch("future-version");
    std::fs::create_dir_all(&dir).expect("mkdir");
    // Hand-craft a sealed segment from "the future": bump the version
    // and re-seal the header CRC so only the version check rejects it.
    let mut header = Vec::new();
    header.extend_from_slice(b"FPMEMOS1");
    header.extend_from_slice(&(fp_memo::persist::SEGMENT_VERSION + 1).to_le_bytes());
    header.extend_from_slice(&0u32.to_le_bytes());
    header.extend_from_slice(&SALT.to_le_bytes());
    let crc = fp_memo::crc32(&header);
    header.extend_from_slice(&crc.to_le_bytes());
    header.extend_from_slice(&0u32.to_le_bytes());
    header.extend_from_slice(b"opaque future records");
    let future = dir.join("seg-0000000001.fpm");
    std::fs::write(&future, &header).expect("write future segment");

    {
        let cache: PersistentCache<Blob> =
            PersistentCache::open(&dir, 1 << 20, SALT, PersistOptions::default()).expect("open");
        let report = cache.recovery();
        assert_eq!(report.future_version_segments, 1);
        assert_eq!(report.recovered_entries, 0);
        let (k, v) = entry(0);
        cache.insert(k, v);
        cache.flush().expect("flush");
    }
    assert!(
        future.exists(),
        "a future-format segment is never ours to delete"
    );
    let scan = scan_store(&dir, SALT).expect("scan");
    assert!(scan
        .segments
        .iter()
        .any(|s| s.health == SegmentHealth::FutureVersion));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn enospc_wedges_the_writer_but_memory_keeps_serving() {
    let dir = scratch("enospc");
    let options = PersistOptions {
        faults: IoFaultPlan {
            enospc_at: Some(200),
            ..IoFaultPlan::none()
        },
        ..PersistOptions::default()
    };
    let cache: PersistentCache<Blob> =
        PersistentCache::open(&dir, 1 << 20, SALT, options).expect("open");
    for i in 0..16 {
        let (k, v) = entry(i);
        cache.insert(k, v);
    }
    // The flush fails: the device "filled up" mid-log.
    assert!(
        cache.flush().is_err(),
        "flush must report the wedged writer"
    );
    let stats = cache.persist_stats().expect("persistent");
    assert!(stats.wedged);
    assert!(stats.io_errors > 0);
    // In-memory service is unaffected — the cache is an accelerator.
    for i in 0..16 {
        let (k, v) = entry(i);
        assert_eq!(cache.get(&k), Some(v));
    }
    let (k, v) = entry(99);
    cache.insert(k, v.clone());
    assert_eq!(cache.get(&k), Some(v));
    assert!(
        cache.persist_stats().expect("persistent").dropped_records > 0,
        "post-wedge inserts are counted as dropped, not lost silently"
    );
    drop(cache);
    // Whatever reached disk before the fault is still a verified prefix.
    let reopened: PersistentCache<Blob> =
        PersistentCache::open(&dir, 1 << 20, SALT, PersistOptions::default()).expect("reopen");
    for (key, value) in scan_store(&dir, SALT)
        .expect("scan")
        .records()
        .iter()
        .map(|(k, v)| (*k, v.to_vec()))
    {
        assert_eq!(
            reopened.get(&key).expect("scanned record is served").0,
            value,
            "recovered bytes identical to what was logged"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn short_write_leaves_a_recoverable_verified_prefix() {
    let dir = scratch("short-write");
    // Record size: 8 frame + 16 key + 16 value = 40 bytes. Place the
    // tear mid-record (inside the 4th record's payload).
    let options = PersistOptions {
        faults: IoFaultPlan {
            short_write_at: Some(3 * 40 + 13),
            ..IoFaultPlan::none()
        },
        ..PersistOptions::default()
    };
    {
        let cache: PersistentCache<Blob> =
            PersistentCache::open(&dir, 1 << 20, SALT, options).expect("open");
        for i in 0..8 {
            cache.insert(entry(i).0, Blob(vec![i as u8; 16])); // 40-byte records
        }
        let _ = cache.flush(); // wedged — error is expected and fine
    }
    let cache: PersistentCache<Blob> =
        PersistentCache::open(&dir, 1 << 20, SALT, PersistOptions::default()).expect("reopen");
    let report = cache.recovery();
    assert!(
        report.truncated_segments > 0,
        "the torn tail must be detected"
    );
    // The verified prefix: complete records before the tear, nothing after.
    assert!(report.recovered_entries < 8);
    for i in 0..report.recovered_entries as u64 {
        assert_eq!(
            cache.get(&entry(i).0),
            Some(Blob(vec![i as u8; 16])),
            "prefix entry {i} byte-identical"
        );
    }
    for i in report.recovered_entries as u64..8 {
        assert!(
            cache.get(&entry(i).0).is_none(),
            "torn entries never served"
        );
    }
    // The wal was truncated to the verified prefix: appending new
    // records after recovery keeps the log clean end to end.
    cache.insert(entry(50).0, Blob(vec![50; 16]));
    cache.flush().expect("clean flush after recovery");
    drop(cache);
    let scan = scan_store(&dir, SALT).expect("scan");
    assert!(
        scan.segments
            .iter()
            .all(|s| s.health == SegmentHealth::Clean),
        "post-recovery log is fully verified again"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
