//! Deterministic, dependency-free pseudo-random number generation.
//!
//! The workspace builds in fully offline environments, so it cannot pull
//! the `rand` crate from a registry. This crate supplies the small slice
//! of functionality the generators and the annealer actually need:
//! a seeded 64-bit generator with uniform integer/float ranges and a
//! Bernoulli sampler. Streams are fixed by the seed forever — benchmark
//! instances and test fixtures derived from a seed must never drift
//! between releases, so treat any change to the output sequence as a
//! breaking change.
//!
//! The core generator is xoshiro256\*\* (Blackman–Vigna), seeded through
//! SplitMix64 exactly as its reference implementation recommends.
//!
//! # Example
//!
//! ```
//! use fp_prng::StdRng;
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let a = rng.gen_range(0..100u64);
//! let b = rng.gen_range(0.0..1.0f64);
//! assert!(a < 100 && (0.0..1.0).contains(&b));
//! // Identical seed, identical stream.
//! let mut again = StdRng::seed_from_u64(42);
//! assert_eq!(again.gen_range(0..100u64), a);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The SplitMix64 generator: a tiny, fast mixer mainly used to expand a
/// 64-bit seed into the larger state of [`Xoshiro256`], and handy on its
/// own for deriving independent sub-seeds from one master seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator starting from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The xoshiro256\*\* generator: 256 bits of state, full 64-bit output,
/// excellent statistical quality for simulation workloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

/// The workspace's standard generator (named for drop-in familiarity with
/// the `rand` API surface it replaces).
pub type StdRng = Xoshiro256;

impl Xoshiro256 {
    /// Seeds the full 256-bit state from a 64-bit seed via [`SplitMix64`],
    /// per the reference implementation's recommendation.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        let s = [
            mix.next_u64(),
            mix.next_u64(),
            mix.next_u64(),
            mix.next_u64(),
        ];
        Xoshiro256 { s }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 128 pseudo-random bits.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        // Standard conversion: take the top 53 bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.next_f64() < p
    }

    /// A uniform sample from `range` (half-open or inclusive integer
    /// ranges, half-open float ranges).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

/// Ranges [`Xoshiro256::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from(self, rng: &mut Xoshiro256) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut Xoshiro256) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut Xoshiro256) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// The 128-bit types need wrapping arithmetic instead of widening, so they
// get their own impls. The offset trick maps i128 onto u128 order.
macro_rules! impl_wide_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut Xoshiro256) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = rng.next_u128() % span;
                (self.start as u128).wrapping_add(v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut Xoshiro256) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                // A zero span means the range covers the whole type.
                let v = if span == 0 {
                    rng.next_u128()
                } else {
                    rng.next_u128() % span
                };
                (lo as u128).wrapping_add(v) as $t
            }
        }
    )*};
}

impl_wide_int_range!(u128, i128);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut Xoshiro256) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = rng.next_f64() as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 0 from the published SplitMix64 code.
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(g.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(g.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let a = rng.gen_range(3..17u64);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(2..=4usize);
            assert!((2..=4).contains(&b));
            let c = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&c));
            let d = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&d));
            let e = rng.gen_range(1..=3u8);
            assert!((1..=3).contains(&e));
        }
    }

    #[test]
    fn ranges_cover_their_support() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0..3usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
    }
}
